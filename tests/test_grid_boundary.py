"""Tests for region boundaries and intricacy — the complexity model's base."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid.regions import (
    Band,
    Disc,
    FullGrid,
    Polygon,
    Rect,
    Triangle,
    horizontal_stripe,
)


class TestBoundaryMask:
    def test_full_grid_has_no_boundary(self):
        """Paper edges don't count: a full sheet has no outline to trace."""
        assert not FullGrid().boundary_mask(6, 8).any()

    def test_stripe_boundary_is_inner_edges_only(self):
        stripe = horizontal_stripe(1, 4)  # rows 2-3 of an 8-row grid
        b = stripe.boundary_mask(8, 12)
        m = stripe.mask(8, 12)
        # Both stripe rows touch a non-member row, so all cells are
        # boundary here; the point is boundary stays within the mask.
        assert (b <= m).all()
        assert b.any()

    def test_thick_rect_has_interior(self):
        r = Rect(0.1, 0.1, 0.9, 0.9)
        m = r.mask(10, 10)
        b = r.boundary_mask(10, 10)
        interior = m & ~b
        assert interior.any()
        # Interior cells have all 4 neighbors inside the region.
        rs, cs = np.nonzero(interior)
        for i, j in zip(rs.tolist(), cs.tolist()):
            for di, dj in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                ni, nj = i + di, j + dj
                if 0 <= ni < 10 and 0 <= nj < 10:
                    assert m[ni, nj]

    def test_disc_boundary_ring(self):
        d = Disc(0.5, 0.5, 0.35)
        m = d.mask(16, 16)
        b = d.boundary_mask(16, 16)
        assert b.any()
        assert (b <= m).all()
        # The center is interior, not boundary.
        assert m[8, 8] and not b[8, 8]

    def test_single_cell_region_is_all_boundary(self):
        d = Disc(0.5, 0.5, 0.05)
        m = d.mask(5, 5)
        assert m.sum() == 1
        assert np.array_equal(d.boundary_mask(5, 5), m)

    @given(
        y0=st.floats(0.0, 0.4), x0=st.floats(0.0, 0.4),
        rows=st.integers(3, 15), cols=st.integers(3, 15),
    )
    @settings(max_examples=40, deadline=None)
    def test_boundary_subset_of_mask(self, y0, x0, rows, cols):
        r = Rect(y0, x0, y0 + 0.5, x0 + 0.5)
        assert (r.boundary_mask(rows, cols) <= r.mask(rows, cols)).all()

    @given(rows=st.integers(4, 16), cols=st.integers(4, 16))
    @settings(max_examples=30, deadline=None)
    def test_interior_plus_boundary_is_mask(self, rows, cols):
        d = Disc(0.5, 0.5, 0.4)
        m = d.mask(rows, cols)
        b = d.boundary_mask(rows, cols)
        interior = m & ~b
        assert np.array_equal(interior | b, m)
        assert not (interior & b).any()


class TestIntricacy:
    def test_simple_shapes_are_trivial(self):
        assert Rect(0, 0, 1, 1).intricacy() == 1.0
        assert FullGrid().intricacy() == 1.0
        assert horizontal_stripe(0, 4).intricacy() == 1.0

    def test_curvy_shapes_cost_more(self):
        assert Disc(0.5, 0.5, 0.3).intricacy() > 1.0
        assert Band(1, 1, 1, 0.2).intricacy() > 1.0
        assert Triangle((0, 0), (1, 0), (0.5, 1)).intricacy() > 1.0
        assert Polygon(((0, 0), (0, 1), (1, 0.5))).intricacy() > 1.0

    def test_polygon_is_the_most_intricate(self):
        """The maple leaf (polygon) outranks discs and bands — the
        Webster 'intricate maple leaf' calibration."""
        assert (Polygon(((0, 0), (0, 1), (1, 0.5))).intricacy()
                > Disc(0.5, 0.5, 0.3).intricacy()
                > Band(1, 1, 1, 0.2).intricacy())

    def test_combinators_take_the_max(self):
        rect = Rect(0, 0, 0.5, 0.5)
        disc = Disc(0.5, 0.5, 0.3)
        assert (rect | disc).intricacy() == disc.intricacy()
        assert (rect & disc).intricacy() == disc.intricacy()
        assert (disc - rect).intricacy() == disc.intricacy()
        assert (~disc).intricacy() == disc.intricacy()

    def test_compiled_complexity_uses_boundary_and_intricacy(self):
        """End to end: canada's leaf ops carry complexity equal to the
        polygon's intricacy exactly on boundary cells."""
        from repro.flags import canada, compile_flag

        spec = canada()
        prog = compile_flag(spec)
        leaf = spec.layer("maple_leaf")
        boundary = leaf.region.boundary_mask(prog.rows, prog.cols)
        for op in prog.ops_for_layer("maple_leaf"):
            want = leaf.region.intricacy() if boundary[op.cell] else 1.0
            assert op.complexity == want
