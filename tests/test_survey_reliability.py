"""Tests for repro.survey.reliability."""

import numpy as np
import pytest

from repro.metrics.speedup import MetricError
from repro.survey import Aspect, ResponseSet
from repro.survey.reliability import (
    cronbach_alpha,
    inter_institution_spread,
    item_total_correlations,
)
from repro.survey.respond import synthesize_all, synthesize_institution


def consistent_population(n=30, seed=0):
    """Respondents with a latent 'engagement' trait driving all items —
    high internal consistency by construction."""
    rng = np.random.default_rng(seed)
    rs = ResponseSet("TestU")
    traits = rng.normal(4.0, 0.8, size=n)
    for item_id in ("had_fun", "focused", "worked_hard", "my_contribution"):
        noise = rng.normal(0, 0.3, size=n)
        answers = np.clip(np.rint(traits + noise), 1, 5).astype(int)
        rs.add_many(item_id, answers.tolist())
    return rs


def noisy_population(n=30, seed=0):
    """Items answered independently at random — near-zero consistency."""
    rng = np.random.default_rng(seed)
    rs = ResponseSet("TestU")
    for item_id in ("had_fun", "focused", "worked_hard", "my_contribution"):
        rs.add_many(item_id, rng.integers(1, 6, size=n).tolist())
    return rs


class TestCronbachAlpha:
    def test_high_for_trait_driven_population(self):
        alpha = cronbach_alpha(consistent_population(),
                               aspect=Aspect.ENGAGEMENT)
        assert alpha > 0.8

    def test_low_for_random_population(self):
        alpha = cronbach_alpha(noisy_population(), aspect=Aspect.ENGAGEMENT)
        assert alpha < 0.4

    def test_needs_two_items(self):
        rs = ResponseSet("TestU")
        rs.add_many("had_fun", [3, 4, 5])
        with pytest.raises(MetricError, match="two items"):
            cronbach_alpha(rs, aspect=Aspect.ENGAGEMENT)

    def test_misaligned_items_rejected(self):
        rs = ResponseSet("TestU")
        rs.add_many("had_fun", [3, 4, 5])
        rs.add_many("focused", [3, 4])
        with pytest.raises(MetricError, match="responses"):
            cronbach_alpha(rs, aspect=Aspect.ENGAGEMENT)

    def test_on_synthetic_institution(self, rng):
        """The calibrated populations are analyzable end to end."""
        rs = synthesize_institution("USI", rng)
        alpha = cronbach_alpha(rs, aspect=Aspect.INSTRUCTOR)
        assert -1.0 <= alpha <= 1.0


class TestItemTotal:
    def test_trait_items_discriminate(self):
        corrs = item_total_correlations(consistent_population(),
                                        aspect=Aspect.ENGAGEMENT)
        assert all(c > 0.5 for c in corrs.values())

    def test_random_items_do_not(self):
        corrs = item_total_correlations(noisy_population(seed=3),
                                        aspect=Aspect.ENGAGEMENT)
        assert all(abs(c) < 0.5 for c in corrs.values())

    def test_zero_variance_item_gets_zero(self):
        rs = ResponseSet("TestU")
        rs.add_many("had_fun", [5, 5, 5, 5])
        rs.add_many("focused", [1, 2, 3, 4])
        rs.add_many("worked_hard", [4, 3, 2, 1])
        corrs = item_total_correlations(rs, aspect=Aspect.ENGAGEMENT)
        assert corrs["had_fun"] == 0.0


class TestInterInstitutionSpread:
    def test_spread_on_published_populations(self):
        sets_ = synthesize_all(seed=4)
        spread = inter_institution_spread(sets_)
        # Instructor preparedness: everyone 5.0 except Knox 4.0 -> 1.0.
        assert spread["instructor_prepared"] == pytest.approx(1.0)
        # Understanding of loops ranges 3.0 .. 5.0 -> 2.0 (the widest gap
        # the tables show).
        assert spread["increased_loops_understanding"] == pytest.approx(2.0)
        # Spread never exceeds the scale width.
        assert all(0.0 <= v <= 4.0 for v in spread.values())
