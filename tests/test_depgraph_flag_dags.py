"""Tests for repro.depgraph.flag_dags — flag-derived dependency graphs."""

import pytest

from repro.depgraph.flag_dags import (
    flag_dag,
    great_britain_reference_dag,
    jordan_linear_chain_dag,
    jordan_merged_stripes_dag,
    jordan_reference_dag,
    jordan_reference_dag_with_white,
    jordan_split_triangle_dag,
)
from repro.flags.catalog import france, great_britain, jordan, mauritius


class TestFlagDag:
    def test_flat_flag_has_no_edges(self):
        g = flag_dag(mauritius())
        assert g.n_edges == 0
        assert g.n_tasks == 4
        assert g.max_parallelism() == 4

    def test_france_without_optional_white(self):
        g = flag_dag(france())
        assert g.n_tasks == 2  # white stripe omitted
        g_full = flag_dag(france(), include_optional=True)
        assert g_full.n_tasks == 3

    def test_weights_are_cell_counts(self):
        spec = mauritius()
        g = flag_dag(spec)
        assert g.weight("red_stripe") == 24.0

    def test_layered_flag_produces_edges(self):
        g = flag_dag(great_britain())
        assert g.n_edges > 0


class TestJordanReference:
    """The Figure 9 graph."""

    def test_structure(self):
        g = jordan_reference_dag()
        assert set(g.tasks) == {
            "black_stripe", "green_stripe", "red_triangle", "white_star",
        }
        assert set(g.edges) == {
            ("black_stripe", "red_triangle"),
            ("green_stripe", "red_triangle"),
            ("red_triangle", "white_star"),
        }

    def test_three_levels(self):
        g = jordan_reference_dag()
        assert g.parallelism_profile() == [2, 1, 1]

    def test_with_white_adds_stripe(self):
        g = jordan_reference_dag_with_white()
        assert "white_stripe" in g
        assert ("white_stripe", "red_triangle") in g.edges
        assert g.parallelism_profile() == [3, 1, 1]

    def test_critical_path_runs_through_triangle_and_star(self):
        _, path = jordan_reference_dag().critical_path()
        assert path[-2:] == ["red_triangle", "white_star"]


class TestGreatBritainReference:
    """The worked example: a pure chain of layers."""

    def test_linear_chain(self):
        g = great_britain_reference_dag()
        assert g.is_linear_chain()
        assert g.n_tasks == 5

    def test_chain_order_matches_layers(self):
        g = great_britain_reference_dag()
        order = g.topological_order()
        assert order[0] == "blue_background"
        assert order[-1] == "red_cross"

    def test_no_parallelism(self):
        assert great_britain_reference_dag().max_parallelism() == 1


class TestStudentVariants:
    def test_split_triangle_as_drawn(self):
        g = jordan_split_triangle_dag(correct_edges=False)
        # Both halves depend on both stripes (what students actually drew).
        assert ("black_stripe", "red_triangle_bottom") in g.edges
        assert ("green_stripe", "red_triangle_top") in g.edges

    def test_split_triangle_truly_correct(self):
        g = jordan_split_triangle_dag(correct_edges=True)
        # Top half independent of green, bottom independent of black.
        assert ("green_stripe", "red_triangle_top") not in g.edges
        assert ("black_stripe", "red_triangle_bottom") not in g.edges

    def test_variants_differ(self):
        drawn = jordan_split_triangle_dag(correct_edges=False)
        true = jordan_split_triangle_dag(correct_edges=True)
        assert not drawn.same_structure(true)

    def test_merged_stripes_is_chain(self):
        assert jordan_merged_stripes_dag().is_linear_chain()

    def test_linear_chain_variant(self):
        g = jordan_linear_chain_dag()
        assert g.is_linear_chain()
        assert g.n_tasks == 4
        g_w = jordan_linear_chain_dag(include_white=True)
        assert g_w.n_tasks == 5
        assert g_w.is_linear_chain()

    def test_linear_chain_differs_from_reference(self):
        assert not jordan_linear_chain_dag().same_structure(
            jordan_reference_dag()
        )
