"""Tests for repro.classroom.institution."""

import pytest

from repro.classroom.institution import (
    INSTITUTIONS,
    all_institutions,
    get_institution,
)


class TestProfiles:
    def test_six_institutions(self):
        assert len(INSTITUTIONS) == 6
        assert set(INSTITUTIONS) == {
            "HPU", "USI", "Knox", "TNTech", "Webster", "Montclair",
        }

    def test_table_column_order(self):
        names = [p.name for p in all_institutions()]
        assert names == ["HPU", "Knox", "Montclair", "TNTech", "USI",
                         "Webster"]

    def test_get_institution(self):
        assert get_institution("Knox").full_name == "Knox College"
        with pytest.raises(KeyError, match="valid"):
            get_institution("MIT")

    def test_knox_matches_paper(self):
        knox = get_institution("Knox")
        assert knox.class_size == 65     # Section V-C
        assert knox.knox_followup
        assert not knox.ran_prepost_quiz  # "not given the pre/post test"

    def test_webster_runs_variation(self):
        assert get_institution("Webster").webster_variation

    def test_quiz_sites_match_fig8(self):
        quiz_sites = {p.name for p in all_institutions()
                      if p.ran_prepost_quiz}
        assert quiz_sites == {"USI", "TNTech", "HPU"}

    def test_exactly_one_crayon_site(self):
        """'The institution that used crayons got many complaints.'"""
        crayon_sites = [
            p.name for p in all_institutions()
            if any(m.name == "crayon" for m in p.implements)
        ]
        assert len(crayon_sites) == 1

    def test_implement_cycle(self):
        usi = get_institution("USI")
        kinds = {usi.implement_for_team(i).name for i in range(6)}
        assert len(kinds) == len(usi.implements)

    def test_n_teams_positive(self):
        for p in all_institutions():
            assert p.n_teams >= 1
