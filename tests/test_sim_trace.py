"""Tests for repro.sim.trace."""

import pytest

from repro.sim.engine import Acquire, Release, Simulator, Timeout
from repro.sim.events import Event, EventKind
from repro.sim.trace import Trace, TraceError


def make_events(*tuples):
    """(time, kind, agent, data) tuples -> Event list with sequence order."""
    return [
        Event(time=t, seq=i, kind=k, agent=a, data=d)
        for i, (t, k, a, d) in enumerate(tuples)
    ]


class TestStrokeIntervals:
    def test_pairs_start_end(self):
        tr = Trace(make_events(
            (0.0, EventKind.STROKE_START, "P1", {"color": "red"}),
            (2.0, EventKind.STROKE_END, "P1", {"color": "red"}),
        ))
        ivs = tr.stroke_intervals()
        assert len(ivs) == 1
        assert ivs[0].duration == 2.0
        assert ivs[0].label == "red"

    def test_interleaved_agents(self):
        tr = Trace(make_events(
            (0.0, EventKind.STROKE_START, "P1", {}),
            (0.5, EventKind.STROKE_START, "P2", {}),
            (1.0, EventKind.STROKE_END, "P1", {}),
            (2.0, EventKind.STROKE_END, "P2", {}),
        ))
        assert len(tr.stroke_intervals()) == 2

    def test_nested_stroke_rejected(self):
        tr = Trace(make_events(
            (0.0, EventKind.STROKE_START, "P1", {}),
            (1.0, EventKind.STROKE_START, "P1", {}),
        ))
        with pytest.raises(TraceError, match="nested"):
            tr.stroke_intervals()

    def test_end_without_start_rejected(self):
        tr = Trace(make_events((1.0, EventKind.STROKE_END, "P1", {})))
        with pytest.raises(TraceError, match="without START"):
            tr.stroke_intervals()

    def test_unclosed_stroke_rejected(self):
        tr = Trace(make_events((0.0, EventKind.STROKE_START, "P1", {})))
        with pytest.raises(TraceError, match="unclosed"):
            tr.stroke_intervals()


class TestWaitIntervals:
    def test_request_acquire_pairing(self):
        tr = Trace(make_events(
            (0.0, EventKind.RESOURCE_REQUEST, "P1", {"resource": "m"}),
            (3.0, EventKind.RESOURCE_ACQUIRE, "P1", {"resource": "m"}),
        ))
        ivs = tr.wait_intervals()
        assert len(ivs) == 1
        assert ivs[0].duration == 3.0

    def test_zero_wait_included(self):
        tr = Trace(make_events(
            (1.0, EventKind.RESOURCE_REQUEST, "P1", {"resource": "m"}),
            (1.0, EventKind.RESOURCE_ACQUIRE, "P1", {"resource": "m"}),
        ))
        assert len(tr.wait_intervals()) == 1
        assert tr.wait_intervals()[0].duration == 0.0

    def test_acquire_without_request_rejected(self):
        tr = Trace(make_events(
            (1.0, EventKind.RESOURCE_ACQUIRE, "P1", {"resource": "m"}),
        ))
        with pytest.raises(TraceError, match="without REQUEST"):
            tr.wait_intervals()


class TestAggregates:
    @pytest.fixture
    def contended_trace(self):
        """Two workers alternating on one marker, 1s per stroke."""
        sim = Simulator()
        res = sim.resource("m")

        def worker(name, n):
            for _ in range(n):
                yield Acquire(res)
                sim.log(EventKind.STROKE_START, agent=name, color="red")
                yield Timeout(1.0)
                sim.log(EventKind.STROKE_END, agent=name, color="red")
                yield Release(res)

        sim.add_process("P1", worker("P1", 2))
        sim.add_process("P2", worker("P2", 2))
        sim.run()
        return Trace(sim.events)

    def test_busy_time(self, contended_trace):
        assert contended_trace.busy_time("P1") == 2.0
        assert contended_trace.busy_time("P2") == 2.0

    def test_waiting_time_positive_under_contention(self, contended_trace):
        total_wait = (contended_trace.waiting_time("P1")
                      + contended_trace.waiting_time("P2"))
        assert total_wait > 0

    def test_summaries_account_for_makespan(self, contended_trace):
        for s in contended_trace.summaries():
            assert s.busy + s.waiting + s.idle == pytest.approx(s.finish)
            assert 0.0 <= s.utilization <= 1.0

    def test_total_wait_fraction_bounds(self, contended_trace):
        f = contended_trace.total_wait_fraction()
        assert 0.0 < f < 1.0

    def test_resource_utilization_full(self, contended_trace):
        # The marker is always in someone's hand in this schedule.
        assert contended_trace.resource_utilization("m") == pytest.approx(1.0)

    def test_holders_timeline(self, contended_trace):
        held = contended_trace.resource_holders_timeline("m")
        assert len(held) == 4
        # Intervals must not overlap for an exclusive resource.
        held.sort(key=lambda iv: iv.start)
        for a, b in zip(held, held[1:]):
            assert a.end <= b.start + 1e-9

    def test_finish_time_unknown_agent_raises(self, contended_trace):
        with pytest.raises(TraceError):
            contended_trace.finish_time("ghost")

    def test_empty_trace(self):
        tr = Trace([])
        assert tr.makespan() == 0.0
        assert tr.summaries() == []
        assert tr.total_wait_fraction() == 0.0
