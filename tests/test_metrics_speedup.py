"""Tests for repro.metrics.speedup."""

import pytest

from repro.metrics.speedup import (
    MetricError,
    ScenarioTimes,
    amdahl_speedup,
    efficiency,
    gustafson_speedup,
    is_superlinear,
    karp_flatt,
    speedup,
    whiteboard,
)


class TestSpeedup:
    def test_basic(self):
        assert speedup(100, 25) == 4.0

    def test_slowdown_below_one(self):
        assert speedup(100, 200) == 0.5

    def test_validation(self):
        with pytest.raises(MetricError):
            speedup(0, 10)
        with pytest.raises(MetricError):
            speedup(10, -1)

    def test_efficiency(self):
        assert efficiency(100, 25, 4) == pytest.approx(1.0)
        assert efficiency(100, 50, 4) == pytest.approx(0.5)
        with pytest.raises(MetricError):
            efficiency(100, 25, 0)

    def test_superlinear_detection(self):
        assert is_superlinear(100, 20, 4)
        assert not is_superlinear(100, 25, 4)
        assert not is_superlinear(100, 26, 4, tolerance=0.1)


class TestAmdahl:
    def test_fully_parallel(self):
        assert amdahl_speedup(0.0, 8) == 8.0

    def test_fully_serial(self):
        assert amdahl_speedup(1.0, 8) == 1.0

    def test_limit_is_inverse_serial_fraction(self):
        s = amdahl_speedup(0.1, 10_000)
        assert s == pytest.approx(10.0, rel=0.01)

    def test_monotone_in_p(self):
        values = [amdahl_speedup(0.2, p) for p in (1, 2, 4, 8, 16)]
        assert values == sorted(values)

    def test_validation(self):
        with pytest.raises(MetricError):
            amdahl_speedup(1.5, 4)
        with pytest.raises(MetricError):
            amdahl_speedup(0.5, 0)


class TestGustafson:
    def test_fully_parallel(self):
        assert gustafson_speedup(0.0, 8) == 8.0

    def test_fully_serial(self):
        assert gustafson_speedup(1.0, 8) == 1.0

    def test_exceeds_amdahl_for_scaled_problems(self):
        assert gustafson_speedup(0.2, 16) > amdahl_speedup(0.2, 16)

    def test_validation(self):
        with pytest.raises(MetricError):
            gustafson_speedup(-0.1, 4)


class TestKarpFlatt:
    def test_ideal_speedup_zero_serial(self):
        assert karp_flatt(100, 25, 4) == pytest.approx(0.0)

    def test_no_speedup_full_serial(self):
        assert karp_flatt(100, 100, 4) == pytest.approx(1.0)

    def test_needs_two_processors(self):
        with pytest.raises(MetricError):
            karp_flatt(100, 50, 1)

    def test_recovers_amdahl_fraction(self):
        f = 0.3
        for p in (2, 4, 8):
            t_par = 100 * (f + (1 - f) / p)
            assert karp_flatt(100, t_par, p) == pytest.approx(f)


class TestScenarioTimes:
    def test_speedup_table(self):
        row = ScenarioTimes("t1", {"scenario1": 400.0, "scenario3": 100.0})
        table = row.speedup_table()
        assert table["scenario3"] == 4.0
        assert table["scenario1"] == 1.0

    def test_missing_baseline_raises(self):
        row = ScenarioTimes("t1", {"scenario2": 100.0})
        with pytest.raises(MetricError, match="baseline"):
            row.speedup_table()

    def test_whiteboard_transposes(self):
        rows = [
            ScenarioTimes("a", {"s1": 10.0, "s2": 5.0}),
            ScenarioTimes("b", {"s1": 12.0}),
        ]
        board = whiteboard(rows)
        assert board == {"s1": [10.0, 12.0], "s2": [5.0]}
