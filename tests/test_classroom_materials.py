"""Tests for repro.classroom.materials — handouts and the dry run."""

import pytest

from repro.agents import ImplementKit
from repro.agents.implements import CRAYON, DAUBER, THICK_MARKER
from repro.classroom.materials import (
    dry_run,
    sample_cells_svg,
    scenario_slide,
)
from repro.flags import great_britain, mauritius
from repro.grid.palette import Color, MAURITIUS_STRIPES


class TestScenarioSlide:
    @pytest.mark.parametrize("scenario", [1, 2, 3, 4])
    def test_slide_renders_for_every_scenario(self, scenario):
        svg = scenario_slide(mauritius(), scenario)
        assert svg.startswith("<svg")
        assert "<text" in svg  # numbered cells
        assert "<line" in svg  # grid lines

    def test_numbers_encode_worker_and_order(self):
        svg = scenario_slide(mauritius(), 3)
        # Worker 1's first cell is numbered 1000, worker 4's 4000.
        assert ">1000<" in svg
        assert ">4000<" in svg

    def test_scenario1_single_worker_numbers(self):
        svg = scenario_slide(mauritius(), 1)
        assert ">1000<" in svg
        assert ">2000<" not in svg

    def test_invalid_scenario_raises(self):
        from repro.flags.decompose import DecompositionError
        with pytest.raises(DecompositionError):
            scenario_slide(mauritius(), 7)


class TestSampleCells:
    def test_three_styles_rendered(self):
        svg = sample_cells_svg()
        assert svg.count("<rect") == 3
        for label in ("full", "scribble", "minimal"):
            assert label in svg

    def test_hatch_density_ordering(self):
        svg = sample_cells_svg()
        # More coverage => more hatch lines; FULL should dominate.
        assert svg.count("<line") >= 3 + 7 + 2


class TestDryRun:
    def kit(self, implement=THICK_MARKER):
        return ImplementKit.uniform(MAURITIUS_STRIPES, implement)

    def test_good_plan_passes(self):
        report = dry_run(mauritius(), self.kit())
        assert report.ok
        assert report.total_minutes > 0
        assert "scenario1" in report.estimated_minutes
        assert "scenario1_repeat" in report.estimated_minutes

    def test_missing_color_is_a_problem(self):
        kit = ImplementKit.uniform([Color.RED, Color.BLUE])
        report = dry_run(mauritius(), kit)
        assert not report.ok
        assert any("missing" in p for p in report.problems)
        # No time estimates when the plan is broken.
        assert report.estimated_minutes == {}

    def test_crayons_warn(self):
        report = dry_run(mauritius(), self.kit(CRAYON))
        assert report.ok  # warning, not blocking
        assert any("fault-prone" in w for w in report.warnings)

    def test_over_long_session_warns(self):
        report = dry_run(mauritius(), self.kit(CRAYON), class_minutes=15.0)
        assert any("discussion time" in w for w in report.warnings)

    def test_huge_grid_warns(self):
        report = dry_run(mauritius(), self.kit(), rows=30, cols=30)
        assert any("coloring" in w for w in report.warnings)

    def test_no_repeat_drops_the_repeat_estimate(self):
        report = dry_run(mauritius(), self.kit(), repeat_first=False)
        assert "scenario1_repeat" not in report.estimated_minutes

    def test_warmup_makes_repeat_faster(self):
        report = dry_run(mauritius(), self.kit())
        assert (report.estimated_minutes["scenario1_repeat"]
                < report.estimated_minutes["scenario1"])

    def test_dauber_faster_than_crayon_estimates(self):
        fast = dry_run(mauritius(), self.kit(DAUBER))
        slow = dry_run(mauritius(), self.kit(CRAYON))
        assert fast.total_minutes < slow.total_minutes

    def test_layered_flag_estimates(self):
        spec = great_britain()
        kit = ImplementKit.uniform(spec.colors_used())
        report = dry_run(spec, kit, scenarios=[1])
        assert report.ok
        assert set(report.estimated_minutes) == {"scenario1",
                                                 "scenario1_repeat"}
