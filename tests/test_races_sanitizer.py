"""Tests for ``repro.races.sanitizer`` — happens-before detection.

The invariant under test is *determinism*: a finding means no recorded
edge orders the conflicting accesses, which is a property of the
program's synchronization structure, so the same racy program yields a
byte-identical report on every run while a properly locked twin stays
clean.  The tail of the file exercises the ``REPRO_SAN=1`` gate the CI
``race`` job flips, including the fabric-coordinator parity run.
"""

import threading

import pytest

from repro.fabric import FabricConfig, run_fabric_sweep
from repro.races import RaceSanitizer, enabled, maybe_sanitized
from repro.races.sanitizer import SanEvent, SanLock, SanThread
from repro.sweep import SweepSpec, run_sweep

SPEC = SweepSpec(flags=("poland",), scenarios=(3, 4), n_trials=2, seed=5)


def racy_report_json():
    """One run of the canonical racy program; returns report bytes.

    Two threads bump a registered cell while the lock guards only an
    unrelated attribute — the planted bug shape from the regression
    suite, reduced to its synchronization skeleton.
    """
    san = RaceSanitizer()
    with san.patched():
        counter = san.state("counter")
        other = san.state("other")
        lock = threading.Lock()

        def worker():
            with lock:
                other.write(1)
            counter.write((counter.read() or 0) + 1)  # outside the lock

        threads = [threading.Thread(target=worker) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    return san.report().to_json()


class TestDetection:
    def test_unordered_writes_are_flagged(self):
        san = RaceSanitizer()
        with san.patched():
            cell = san.state("n")

            def worker():
                cell.write(1)

            threads = [threading.Thread(target=worker) for _ in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        report = san.report()
        assert not report.ok
        (issue,) = report.findings
        assert issue.code == "data_race"
        assert "write/write on n between T1 and T2" in issue.message

    def test_lock_ordered_writes_are_clean(self):
        san = RaceSanitizer()
        with san.patched():
            cell = san.state("n")
            lock = threading.Lock()

            def worker():
                with lock:
                    cell.write((cell.read() or 0) + 1)

            threads = [threading.Thread(target=worker) for _ in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert san.report().ok
        assert san.state("n").value == 2

    def test_fork_and_join_edges_order_accesses(self):
        san = RaceSanitizer()
        with san.patched():
            cell = san.state("handoff")
            cell.write("before-fork")  # main

            def child():
                assert cell.read() == "before-fork"  # fork edge
                cell.write("from-child")

            t = threading.Thread(target=child)
            t.start()
            t.join()
            assert cell.read() == "from-child"  # join edge
        assert san.report().ok

    def test_deque_handoff_carries_the_edge(self):
        # No lock and no join before the read: only the deque's
        # publish/join pair orders producer writes before consumer
        # reads, so a clean report proves the hand-off edge works.
        san = RaceSanitizer()
        with san.patched():
            cell = san.state("payload")
            q = san.deque()

            def producer():
                cell.write("ready")
                q.append("token")

            t = threading.Thread(target=producer)
            t.start()
            while not q:
                pass
            assert q.popleft() == "token"
            assert cell.read() == "ready"
            t.join()
        assert san.report().ok

    def test_racy_report_is_byte_identical_across_runs(self):
        # The acceptance property: scheduling noise never changes the
        # report, because findings depend on edges, not interleavings.
        reports = {racy_report_json() for _ in range(5)}
        assert len(reports) == 1
        body = reports.pop().decode("utf-8")
        assert "write/write on counter between T1 and T2" in body


class TestAuditedClass:
    class Counter:
        def __init__(self):
            self.lock = threading.Lock()
            self.n = 0

    def hammer(self, audited, locked):
        inst = audited()
        barrier = threading.Barrier(2)

        def worker():
            barrier.wait()
            for _ in range(3):
                if locked:
                    with inst.lock:
                        inst.n += 1
                else:
                    inst.n += 1

        threads = [threading.Thread(target=worker) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        return inst

    def test_unlocked_attribute_races(self):
        san = RaceSanitizer()
        with san.patched():
            audited = san.audited_class(self.Counter, "n")
            self.hammer(audited, locked=False)
        report = san.report()
        assert not report.ok
        assert any("Counter#0.n" in i.message for i in report.findings)

    def test_locked_attribute_is_clean(self):
        san = RaceSanitizer()
        with san.patched():
            audited = san.audited_class(self.Counter, "n")
            inst = self.hammer(audited, locked=True)
            assert inst.n == 6
        assert san.report().ok


class TestPatching:
    def test_primitives_are_restored(self):
        saved = (threading.Lock, threading.RLock, threading.Condition,
                 threading.Thread, threading.Event)
        san = RaceSanitizer()
        with san.patched():
            assert isinstance(threading.Lock(), SanLock)
            assert threading.Thread is SanThread
            assert threading.Event is SanEvent
        assert (threading.Lock, threading.RLock, threading.Condition,
                threading.Thread, threading.Event) == saved

    def test_nested_sanitizers_are_rejected(self):
        san = RaceSanitizer()
        with san.patched():
            with pytest.raises(RuntimeError, match="already active"):
                with RaceSanitizer().patched():
                    pass  # pragma: no cover
        # and the failed nest did not clobber the outer restore
        assert threading.Thread is not SanThread

    def test_condition_wait_edges(self):
        san = RaceSanitizer()
        with san.patched():
            cell = san.state("cond-payload")
            cond = threading.Condition()
            done = []

            def waiter():
                with cond:
                    while not done:
                        cond.wait(timeout=5.0)
                assert cell.read() == "set"  # ordered via the cond lock

            t = threading.Thread(target=waiter)
            t.start()
            with cond:
                cell.write("set")
                done.append(True)
                cond.notify()
            t.join()
        assert san.report().ok


class TestGate:
    def test_off_by_default_yields_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_SAN", raising=False)
        assert not enabled()
        with maybe_sanitized() as san:
            assert san is None

    def test_on_yields_active_sanitizer(self, monkeypatch):
        monkeypatch.setenv("REPRO_SAN", "1")
        assert enabled()
        with maybe_sanitized() as san:
            assert isinstance(san, RaceSanitizer)
            assert isinstance(threading.Lock(), SanLock)
        assert threading.Lock is not SanLock

    def test_require_clean_raises_on_race(self, monkeypatch):
        monkeypatch.setenv("REPRO_SAN", "1")
        with pytest.raises(AssertionError, match="data_race"):
            with maybe_sanitized() as san:
                cell = san.state("n")

                def worker():
                    cell.write(1)

                threads = [threading.Thread(target=worker)
                           for _ in range(2)]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()


class TestSanitizedFabric:
    def test_coordinator_heartbeats_race_free(self):
        # The CI race job runs this with REPRO_SAN=1: the coordinator
        # loop, its worker heartbeats, and the process-pool plumbing
        # all execute on sanitizer shims, and the sweep must still be
        # byte-identical to serial.  Unsanitized (tier-1 default) it is
        # a plain parity check.
        serial = run_sweep(SPEC)
        with maybe_sanitized():
            fabric = run_fabric_sweep(SPEC, FabricConfig(workers=2))
        assert len(fabric.cells) == len(serial.cells)
        for ca, cb in zip(fabric.cells, serial.cells):
            assert ca.cell == cb.cell
            assert ca.trials == cb.trials
