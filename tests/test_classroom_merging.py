"""Tests for the merging-teams session organization."""

import numpy as np
import pytest

from repro.classroom import get_institution, run_merging_session


@pytest.fixture(scope="module")
def merged_report():
    return run_merging_session(get_institution("USI"), seed=9, n_pairs=3)


class TestMergingSession:
    def test_one_record_per_pair(self, merged_report):
        assert len(merged_report.teams) == 3
        assert all("+" in t.team_name for t in merged_report.teams)

    def test_all_scenarios_present_and_correct(self, merged_report):
        for t in merged_report.teams:
            assert set(t.results) == {
                "scenario1", "scenario1_repeat", "scenario2",
                "scenario3", "scenario4",
            }
            assert all(r.correct for r in t.results.values())

    def test_scenarios_3_4_use_four_colorers(self, merged_report):
        for t in merged_report.teams:
            assert t.results["scenario3"].n_workers == 4
            assert t.results["scenario4"].n_workers == 4
            assert t.results["scenario1"].n_workers == 1
            assert t.results["scenario2"].n_workers == 2

    def test_merged_implements_soften_contention(self):
        """Pooled kits (2 markers per color) cut scenario-4 waiting vs the
        standard single-kit organization."""
        from repro.classroom import run_session

        merged = run_merging_session(get_institution("USI"), seed=14,
                                     n_pairs=3)
        standard = run_session(get_institution("USI"), seed=14, n_teams=3)

        def med_wait(report):
            return float(np.median([
                t.results["scenario4"].trace.total_wait_fraction()
                for t in report.teams
            ]))

        assert med_wait(merged) < med_wait(standard)

    def test_times_still_fall_through_scenario3(self, merged_report):
        med = merged_report.median_times()
        assert med["scenario1"] > med["scenario2"] > med["scenario3"]

    def test_deterministic(self):
        a = run_merging_session(get_institution("HPU"), seed=5, n_pairs=1)
        b = run_merging_session(get_institution("HPU"), seed=5, n_pairs=1)
        assert a.median_times() == b.median_times()

    def test_default_pair_count_from_profile(self):
        rep = run_merging_session(get_institution("HPU"), seed=6)
        assert len(rep.teams) >= 1
