"""Tests for repro.classroom.session — whole-class orchestration."""

import numpy as np
import pytest

from repro.classroom.institution import get_institution
from repro.classroom.session import run_all_institutions, run_session


@pytest.fixture(scope="module")
def webster_session():
    return run_session(get_institution("Webster"), seed=4, n_teams=3)


class TestRunSession:
    def test_team_count(self, webster_session):
        assert len(webster_session.teams) == 3

    def test_all_flags_correct(self, webster_session):
        assert webster_session.all_correct()

    def test_whiteboard_has_all_scenarios(self, webster_session):
        board = webster_session.board
        assert set(board) == {
            "scenario1", "scenario1_repeat", "scenario2",
            "scenario3", "scenario4",
        }
        assert all(len(times) == 3 for times in board.values())

    def test_median_times_fall_through_scenario3(self, webster_session):
        med = webster_session.median_times()
        assert med["scenario1"] > med["scenario2"] > med["scenario3"]

    def test_median_speedups_baseline_one(self, webster_session):
        sp = webster_session.median_speedups()
        assert sp["scenario1"] == 1.0
        assert sp["scenario3"] > sp["scenario2"] > 1.0

    def test_missing_baseline_is_a_clear_value_error(self, webster_session):
        """An absent baseline label names the available ones instead of
        leaking a bare KeyError out of the median dict."""
        with pytest.raises(ValueError, match="scenario1_repeat"):
            webster_session.median_speedups(baseline="nope")

    def test_payload_round_trip_preserves_aggregates(self, webster_session):
        from repro.classroom.session import SessionReport, StoredRun
        loaded = SessionReport.from_payload(webster_session.to_payload())
        assert loaded.institution == webster_session.institution
        assert loaded.flag == webster_session.flag
        assert loaded.board == webster_session.board
        assert loaded.median_times() == webster_session.median_times()
        assert (loaded.median_speedups()
                == webster_session.median_speedups())
        assert loaded.all_correct() == webster_session.all_correct()
        assert (loaded.times_by_implement("scenario1")
                == webster_session.times_by_implement("scenario1"))
        run = next(iter(loaded.teams[0].results.values()))
        assert isinstance(run, StoredRun)

    def test_payload_is_json_safe(self, webster_session):
        import json
        text = json.dumps(webster_session.to_payload(), sort_keys=True)
        from repro.classroom.session import SessionReport
        loaded = SessionReport.from_payload(json.loads(text))
        assert loaded.board == webster_session.board

    def test_scenario4_slower_than_3(self, webster_session):
        med = webster_session.median_times()
        assert med["scenario4"] > med["scenario3"]

    def test_implement_grouping(self, webster_session):
        groups = webster_session.times_by_implement("scenario1")
        assert sum(len(v) for v in groups.values()) == 3
        assert set(groups) <= {"thick_marker", "dauber"}

    def test_determinism(self):
        a = run_session(get_institution("HPU"), seed=5, n_teams=2)
        b = run_session(get_institution("HPU"), seed=5, n_teams=2)
        assert a.median_times() == b.median_times()

    def test_no_repeat_profile(self):
        from dataclasses import replace
        profile = replace(get_institution("HPU"), repeat_scenario1=False)
        rep = run_session(profile, seed=6, n_teams=1)
        assert "scenario1_repeat" not in rep.board


class TestRunAllInstitutions:
    def test_all_six_run(self):
        reports = run_all_institutions(seed=1, n_teams_cap=1)
        assert set(reports) == {
            "HPU", "Knox", "Montclair", "TNTech", "USI", "Webster",
        }
        assert all(r.all_correct() for r in reports.values())
