"""Tests for repro.survey.likert — response sets."""

import pytest

from repro.survey.aspect import Aspect
from repro.survey.likert import ResponseSet, SurveyError


class TestResponseSet:
    def test_add_and_median(self):
        rs = ResponseSet("TestU")
        rs.add_many("had_fun", [4, 5, 5])
        assert rs.median("had_fun") == 5.0
        assert rs.n_respondents("had_fun") == 3

    def test_unknown_item_rejected(self):
        rs = ResponseSet("TestU")
        with pytest.raises(KeyError):
            rs.add("not_an_item", 3)

    def test_out_of_scale_rejected(self):
        rs = ResponseSet("TestU")
        with pytest.raises(SurveyError):
            rs.add("had_fun", 0)
        with pytest.raises(SurveyError):
            rs.add("had_fun", 6)

    def test_not_administered_is_none(self):
        rs = ResponseSet("TestU")
        assert rs.median("had_fun") is None
        assert not rs.administered("had_fun")
        assert rs.n_respondents("had_fun") == 0

    def test_medians_cover_all_items(self):
        rs = ResponseSet("TestU")
        rs.add_many("had_fun", [4, 4])
        meds = rs.medians()
        assert meds["had_fun"] == 4.0
        assert meds["focused"] is None
        assert len(meds) == 18

    def test_aspect_median_pools_items(self):
        rs = ResponseSet("TestU")
        rs.add_many("had_fun", [5, 5])
        rs.add_many("focused", [3, 3])
        assert rs.aspect_median(Aspect.ENGAGEMENT) == 4.0
        assert rs.aspect_median(Aspect.INSTRUCTOR) is None

    def test_half_point_median(self):
        rs = ResponseSet("TestU")
        rs.add_many("had_fun", [4, 5])
        assert rs.median("had_fun") == 4.5
