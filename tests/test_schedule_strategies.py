"""Tests for repro.schedule.strategies — dynamic self-scheduling."""

import numpy as np
import pytest

from repro.agents import make_team
from repro.flags import compile_flag, diagonal_bicolor, mauritius
from repro.grid.palette import MAURITIUS_STRIPES, Color
from repro.schedule.strategies import StrategyError, chunk_sweep, run_dynamic


def fresh_team(seed=0, n=4, colors=None):
    return make_team("t", n, np.random.default_rng(seed),
                     colors=colors or list(MAURITIUS_STRIPES))


class TestRunDynamic:
    def test_produces_correct_flag(self):
        prog = compile_flag(mauritius())
        r = run_dynamic(prog, fresh_team(), 4, np.random.default_rng(0))
        assert r.correct
        assert r.canvas.n_colored() == prog.n_ops

    def test_all_workers_participate(self):
        prog = compile_flag(mauritius())
        r = run_dynamic(prog, fresh_team(), 4, np.random.default_rng(0),
                        chunk=2)
        counts = r.canvas.agent_cell_counts()
        assert len(counts) == 4
        assert all(v > 0 for v in counts.values())

    def test_single_worker_dynamic_equals_whole_program(self):
        prog = compile_flag(mauritius())
        r = run_dynamic(prog, fresh_team(n=1), 1, np.random.default_rng(0))
        assert r.correct
        assert r.canvas.agent_cell_counts() == {"t.P1": 96}

    def test_validation(self):
        prog = compile_flag(mauritius())
        with pytest.raises(StrategyError):
            run_dynamic(prog, fresh_team(), 0, np.random.default_rng(0))
        with pytest.raises(StrategyError):
            run_dynamic(prog, fresh_team(), 2, np.random.default_rng(0),
                        chunk=0)

    def test_dynamic_balances_uneven_work(self):
        """On a diagonal flag, dynamic splits busy time more evenly than a
        vertical-slice static split does across worker speeds."""
        spec = diagonal_bicolor()
        prog = compile_flag(spec)
        colors = list(spec.colors_used())
        r = run_dynamic(prog, fresh_team(colors=colors, n=2), 2,
                        np.random.default_rng(3), chunk=1)
        assert r.correct
        busy = [s.busy for s in r.trace.summaries()]
        assert max(busy) / max(min(busy), 1e-9) < 2.0

    def test_extra_metadata(self):
        prog = compile_flag(mauritius())
        r = run_dynamic(prog, fresh_team(), 2, np.random.default_rng(0),
                        chunk=7)
        assert r.extra["chunk"] == 7
        assert r.strategy == "dynamic_chunk7"


class TestChunkSweep:
    def test_sweep_structure(self):
        prog = compile_flag(mauritius())
        out = chunk_sweep(
            prog,
            team_factory=lambda rng: make_team(
                "t", 4, rng, colors=list(MAURITIUS_STRIPES)
            ),
            n_workers=4,
            chunks=[1, 8],
            seed=5,
            trials=2,
        )
        assert set(out) == {1, 8}
        assert all(len(runs) == 2 for runs in out.values())
        assert all(r.correct for runs in out.values() for r in runs)
