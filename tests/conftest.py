"""Shared fixtures for the flagsim test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.agents import make_team
from repro.flags import compile_flag, mauritius
from repro.grid.palette import MAURITIUS_STRIPES


@pytest.fixture
def rng():
    """A fresh deterministic RNG per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def mauritius_spec():
    """The core activity's flag."""
    return mauritius()


@pytest.fixture
def mauritius_program(mauritius_spec):
    """The compiled Mauritius paint program at the default 8x12 grid."""
    return compile_flag(mauritius_spec)


@pytest.fixture
def team4(rng):
    """A standard four-colorer team with thick markers."""
    return make_team("team", 4, rng, colors=list(MAURITIUS_STRIPES))
