"""Fuzz tests for the DES kernel: random process soups.

Hypothesis generates random collections of processes doing random
sequences of sleeps, acquires and releases over a shared resource pool,
and the kernel must always either complete with consistent accounting or
deadlock *detectably* — never hang, never corrupt time, never lose a
process.
"""

from typing import List, Tuple

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import (
    Acquire,
    Release,
    SimulationError,
    Simulator,
    Timeout,
)
from repro.sim.events import EventKind


def make_worker(sim, name, script, resources):
    """A process following a (kind, arg) script.

    Scripts are sanitized: every acquire is matched with a release
    immediately after the following sleep, so well-formed scripts always
    terminate.
    """

    def gen():
        held = []
        for kind, arg in script:
            if kind == "sleep":
                yield Timeout(arg)
            elif kind == "use":
                res = resources[arg % len(resources)]
                yield Acquire(res)
                sim.log(EventKind.STROKE_START, agent=name)
                yield Timeout(0.5)
                sim.log(EventKind.STROKE_END, agent=name)
                yield Release(res)
        for res in held:  # pragma: no cover - defensive
            yield Release(res)

    return gen()


script_steps = st.lists(
    st.tuples(st.sampled_from(["sleep", "use"]),
              st.integers(min_value=0, max_value=5)),
    min_size=0, max_size=8,
).map(lambda steps: [
    ("sleep", float(arg) * 0.25) if kind == "sleep" else ("use", arg)
    for kind, arg in steps
])


class TestKernelFuzz:
    @given(
        scripts=st.lists(script_steps, min_size=1, max_size=6),
        n_resources=st.integers(min_value=1, max_value=3),
        capacity=st.integers(min_value=1, max_value=2),
    )
    @settings(max_examples=80, deadline=None)
    def test_always_terminates_consistently(self, scripts, n_resources,
                                            capacity):
        sim = Simulator()
        resources = [sim.resource(f"r{i}", capacity=capacity)
                     for i in range(n_resources)]
        for i, script in enumerate(scripts):
            sim.add_process(f"w{i}", make_worker(sim, f"w{i}", script,
                                                 resources))
        makespan = sim.run()

        # Every process finished.
        assert len(sim.finish_times) == len(scripts)
        # Time is consistent: monotone event log, non-negative makespan.
        assert makespan >= 0
        times = [e.time for e in sim.events]
        assert times == sorted(times)
        # Every resource is free again.
        for res in resources:
            assert res.holders == []
            assert res.queue == []
        # Stroke events pair up.
        starts = sum(1 for e in sim.events
                     if e.kind == EventKind.STROKE_START)
        ends = sum(1 for e in sim.events if e.kind == EventKind.STROKE_END)
        assert starts == ends

    @given(
        scripts=st.lists(script_steps, min_size=1, max_size=4),
        seed_tag=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=40, deadline=None)
    def test_determinism_under_fuzz(self, scripts, seed_tag):
        def run():
            sim = Simulator()
            resources = [sim.resource("r0"), sim.resource("r1")]
            for i, script in enumerate(scripts):
                sim.add_process(f"w{i}", make_worker(sim, f"w{i}", script,
                                                     resources))
            sim.run()
            return [(e.time, e.seq, e.kind.value, e.agent)
                    for e in sim.events]

        assert run() == run()

    def test_double_acquire_same_resource_deadlocks_detectably(self):
        """A process acquiring a capacity-1 resource twice without release
        deadlocks on itself; the kernel reports it instead of hanging."""
        sim = Simulator()
        res = sim.resource("r")

        def greedy():
            yield Acquire(res)
            yield Acquire(res)

        sim.add_process("g", greedy())
        with pytest.raises(SimulationError, match="deadlock"):
            sim.run()

    def test_circular_wait_deadlocks_detectably(self):
        sim = Simulator()
        a, b = sim.resource("a"), sim.resource("b")

        def w1():
            yield Acquire(a)
            yield Timeout(1.0)
            yield Acquire(b)

        def w2():
            yield Acquire(b)
            yield Timeout(1.0)
            yield Acquire(a)

        sim.add_process("w1", w1())
        sim.add_process("w2", w2())
        with pytest.raises(SimulationError, match="deadlock"):
            sim.run()
