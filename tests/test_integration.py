"""Integration tests: whole-stack phenomena the paper reports.

Each test runs the full pipeline (flag -> decomposition -> team -> DES ->
trace -> metric) and asserts the *classroom observation*, not an internal
detail.  These are the library-level contracts the benchmarks rely on.
"""

import numpy as np
import pytest

from repro.agents import ImplementKit, make_team
from repro.agents.implements import CRAYON, DAUBER, THICK_MARKER
from repro.classroom import debrief_session, get_institution, run_session
from repro.depgraph import (
    flag_dag,
    generate_exact_paper_cohort,
    grade_all,
    jordan_reference_dag,
)
from repro.flags import (
    canada,
    compile_flag,
    france,
    great_britain,
    jordan,
    mauritius,
    scenario_partition,
    single,
    vertical_slices,
)
from repro.grid.palette import MAURITIUS_STRIPES
from repro.metrics import (
    estimate_warmup,
    imbalance_ratio,
    speedup,
    transition_fractions,
)
from repro.schedule import (
    run_core_activity,
    run_dynamic,
    run_layered,
    run_partition,
)
from repro.survey import analyze_sheets, simulate_cohort, synthesize_all
from repro.survey.respond import table_discrepancies


def median_of(values):
    return float(np.median(values))


class TestCoreActivityPhenomena:
    """Median behavior over several teams — the whiteboard shape."""

    @pytest.fixture(scope="class")
    def batches(self):
        out = []
        for seed in range(5):
            rng = np.random.default_rng(100 + seed)
            team = make_team(f"t{seed}", 4, rng,
                             colors=list(MAURITIUS_STRIPES))
            out.append(run_core_activity(mauritius(), team, rng))
        return out

    def test_speedup_ordering_holds_in_median(self, batches):
        t1 = median_of([b["scenario1"].true_makespan for b in batches])
        t2 = median_of([b["scenario2"].true_makespan for b in batches])
        t3 = median_of([b["scenario3"].true_makespan for b in batches])
        t4 = median_of([b["scenario4"].true_makespan for b in batches])
        assert t1 > t2 > t3
        assert t4 > t3  # contention

    def test_speedup_magnitudes_plausible(self, batches):
        """2 students: ~1.5-2.5x; 4 students: ~2-4x (sublinear)."""
        t1 = median_of([b["scenario1_repeat"].true_makespan for b in batches])
        t2 = median_of([b["scenario2"].true_makespan for b in batches])
        t3 = median_of([b["scenario3"].true_makespan for b in batches])
        assert 1.3 < speedup(t1, t2) < 2.5
        assert 2.0 < speedup(t1, t3) < 4.0

    def test_warmup_across_teams(self, batches):
        ratios = []
        for b in batches:
            est = estimate_warmup([
                b["scenario1"].true_makespan,
                b["scenario1_repeat"].true_makespan,
            ])
            ratios.append(est.warmup_ratio)
        assert median_of(ratios) > 1.1


class TestWebsterVariation:
    """French vs Canadian flags, 1 vs 3 students (Section III-D).

    Students divide the sheet spatially (vertical slices), so the Canadian
    flag's middle worker inherits the maple leaf — both extra strokes and
    slower, intricate boundary cells — while the French flag splits evenly.
    """

    def run_flag(self, spec, n, seed):
        rng = np.random.default_rng(seed)
        team = make_team("t", max(n, 1), rng,
                         colors=list(spec.colors_used()), copies=n)
        prog = compile_flag(spec)
        part = single(prog) if n == 1 else vertical_slices(prog, n)
        return run_partition(part, team, rng)

    def test_france_speeds_up_more_than_canada(self):
        speeds = {}
        for name, spec in (("france", france()), ("canada", canada())):
            t1s, t3s = [], []
            for seed in range(5):
                t1s.append(self.run_flag(spec, 1, 200 + seed).true_makespan)
                t3s.append(self.run_flag(spec, 3, 300 + seed).true_makespan)
            speeds[name] = median_of(t1s) / median_of(t3s)
        # "The simpler French flag saw greater efficiency gains."
        assert speeds["france"] > speeds["canada"]
        assert speeds["france"] > 1.5

    def test_canada_leaf_causes_imbalance(self):
        r = self.run_flag(canada(), 3, 42)
        busy = [s.busy for s in r.trace.summaries()]
        assert imbalance_ratio(busy) > 1.05
        # The middle worker (owning the leaf) did the most strokes.
        counts = {a: r.trace.stroke_count(a) for a in r.trace.agents()}
        assert max(counts.values()) > min(counts.values())

    def test_leaf_cells_are_slower(self):
        """Boundary cells of the maple leaf carry complexity > 1."""
        prog = compile_flag(canada())
        leaf_ops = prog.ops_for_layer("maple_leaf")
        assert any(op.complexity > 1.0 for op in leaf_ops)
        band_ops = prog.ops_for_layer("left_band")
        assert all(op.complexity == 1.0 for op in band_ops)


class TestKnoxDependencies:
    """Layered coloring limits parallelism (Section III-D)."""

    def test_gb_speedup_ceiling_below_flat_flag(self):
        gb = flag_dag(great_britain())
        flat = flag_dag(mauritius())
        assert gb.ideal_speedup_bound() < flat.ideal_speedup_bound()

    def test_jordan_dag_bound_matches_simulation_shape(self):
        """More workers help less and less on the layered Jordan flag."""
        spec = jordan()
        times = {}
        for p in (1, 2, 6):
            rng = np.random.default_rng(55 + p)
            team = make_team("t", p, rng, colors=list(spec.colors_used()),
                             copies=p)
            times[p] = run_layered(spec, team, p, rng).true_makespan
        s2 = times[1] / times[2]
        s6 = times[1] / times[6]
        assert s2 > 1.3
        assert s6 < 6.0 * 0.8  # far below linear


class TestHardwareDifferences:
    def test_implement_ordering_in_full_runs(self):
        """Dauber teams beat thick markers beat crayons on scenario 1."""
        times = {}
        for impl in (DAUBER, THICK_MARKER, CRAYON):
            runs = []
            for seed in range(4):
                rng = np.random.default_rng(700 + seed)
                team = make_team("t", 1, rng,
                                 colors=list(MAURITIUS_STRIPES),
                                 implement=impl)
                prog = compile_flag(mauritius())
                runs.append(run_partition(single(prog), team, rng)
                            .true_makespan)
            times[impl.name] = median_of(runs)
        assert times["dauber"] < times["thick_marker"] < times["crayon"]


class TestAssessmentPipeline:
    def test_survey_tables_reproduce(self):
        sets_ = synthesize_all(seed=17)
        for tid in ("I", "II", "III"):
            assert table_discrepancies(tid, sets_) == {}

    def test_quiz_transitions_reproduce(self):
        rng = np.random.default_rng(23)
        for inst in ("USI", "TNTech", "HPU"):
            sheets = simulate_cohort(inst, rng)
            analysis = analyze_sheets(sheets)
            # Contention should show net gain everywhere (the activity's
            # most effective concept per Fig 8).
            assert (analysis["contention"]["gained"]
                    >= analysis["contention"]["lost"])

    def test_depgraph_grading_reproduces(self):
        rng = np.random.default_rng(29)
        report = grade_all(generate_exact_paper_cohort(rng))
        assert report.at_least_mostly_correct == pytest.approx(17 / 29)


class TestFullClassroom:
    def test_session_debrief_detects_all_lessons(self):
        report = run_session(get_institution("USI"), seed=31, n_teams=4)
        observations = debrief_session(report)
        detected = {o.lesson.value for o in observations if o.detected}
        assert {"speedup", "sublinear_speedup", "warmup",
                "contention", "pipelining"} <= detected

    def test_dynamic_strategy_correct_on_every_flag(self):
        from repro.flags import available_flags, get_flag
        for name in sorted(available_flags()):
            spec = get_flag(name)
            if spec.is_layered():
                continue  # dynamic is for flat flags
            prog = compile_flag(spec)
            rng = np.random.default_rng(hash(name) % 2**32)
            team = make_team("t", 3, rng, colors=list(spec.colors_used()))
            r = run_dynamic(prog, team, 3, rng)
            assert r.correct, name
