"""Remote fabric workers: leases executed over ``POST /task``.

A live ``repro serve`` instance on a background thread backs remote
workers; the coordinator must produce byte-identical results whether a
cell was computed by a local subprocess or a remote endpoint — and
must route around a remote worker that drops its link mid-sweep.
"""

import pytest

from repro.fabric import (
    ChaosPlan,
    FabricConfig,
    FabricCoordinator,
    WorkerCrash,
    run_fabric_sweep,
)
from repro.serve import BackgroundServer, ServeConfig
from repro.sweep import SweepSpec, run_sweep

SPEC = SweepSpec(flags=("poland",), scenarios=(3, 4), n_trials=2, seed=19)


def assert_identical(a, b):
    """Byte-identity: every trial's every run, traces included."""
    assert len(a.cells) == len(b.cells)
    for ca, cb in zip(a.cells, b.cells):
        assert ca.cell == cb.cell
        assert ca.trials == cb.trials  # frozen dataclasses: trace bytes


@pytest.fixture(scope="module")
def server():
    with BackgroundServer(ServeConfig(batch_window_s=0.005)) as bg:
        yield bg


class TestRemoteWorkers:
    def test_remote_only_fleet_is_byte_identical(self, server):
        config = FabricConfig(workers=0,
                              remotes=(("127.0.0.1", server.port),))
        result = run_fabric_sweep(SPEC, config)
        assert_identical(run_sweep(SPEC), result)

    def test_mixed_local_and_remote_fleet(self, server):
        registry_spec = SweepSpec(flags=("poland",), scenarios=(3, 4),
                                  team_sizes=(4, 5), n_trials=1, seed=23)
        coordinator = FabricCoordinator(
            registry_spec,
            FabricConfig(workers=1,
                         remotes=(("127.0.0.1", server.port),)))
        result = coordinator.run()
        assert_identical(run_sweep(registry_spec), result)
        # Both halves of the fleet did real work.
        assert coordinator.stats.leases >= 4

    def test_two_remotes_share_one_server(self, server):
        config = FabricConfig(
            workers=0,
            remotes=(("127.0.0.1", server.port),
                     ("127.0.0.1", server.port)))
        result = run_fabric_sweep(SPEC, config)
        assert_identical(run_sweep(SPEC), result)

    def test_crashing_remote_routed_around(self, server):
        # Chaos crash on a remote worker = it drops its coordinator
        # link; the local worker absorbs the re-lease.
        chaos = ChaosPlan.of([WorkerCrash(worker="r0", on_lease=1)])
        coordinator = FabricCoordinator(
            SPEC,
            FabricConfig(workers=1,
                         remotes=(("127.0.0.1", server.port),),
                         retry_base_s=0.01, retry_cap_s=0.05,
                         hedge_after_s=None),
            chaos=chaos)
        result = coordinator.run()
        assert_identical(run_sweep(SPEC), result)
        assert coordinator.stats.worker_deaths == 1
        assert coordinator.stats.retries == 1
