"""Tests for repro.depgraph.graph — the TaskGraph DAG, incl. properties."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.depgraph.graph import GraphError, TaskGraph


def diamond():
    """a -> {b, c} -> d."""
    g = TaskGraph()
    for t in "abcd":
        g.add_task(t)
    g.add_dependency("a", "b")
    g.add_dependency("a", "c")
    g.add_dependency("b", "d")
    g.add_dependency("c", "d")
    return g


class TestConstruction:
    def test_add_task_validation(self):
        g = TaskGraph()
        with pytest.raises(GraphError):
            g.add_task("")
        with pytest.raises(GraphError):
            g.add_task("x", weight=-1)

    def test_self_dependency_rejected(self):
        g = TaskGraph()
        with pytest.raises(GraphError, match="self"):
            g.add_dependency("a", "a")

    def test_cycle_rejected(self):
        g = TaskGraph()
        g.add_dependency("a", "b")
        g.add_dependency("b", "c")
        with pytest.raises(GraphError, match="cycle"):
            g.add_dependency("c", "a")

    def test_edges_auto_add_nodes(self):
        g = TaskGraph()
        g.add_dependency("x", "y")
        assert g.tasks == ["x", "y"]

    def test_remove_task_cleans_edges(self):
        g = diamond()
        g.remove_task("b")
        assert "b" not in g
        assert ("a", "b") not in g.edges
        assert ("b", "d") not in g.edges

    def test_remove_unknown_raises(self):
        with pytest.raises(GraphError):
            TaskGraph().remove_task("ghost")

    def test_weight_update_idempotent(self):
        g = TaskGraph()
        g.add_task("a", 2.0)
        g.add_task("a", 5.0)
        assert g.weight("a") == 5.0

    def test_weight_unknown_raises(self):
        with pytest.raises(GraphError):
            TaskGraph().weight("ghost")


class TestQueries:
    def test_sources_and_sinks(self):
        g = diamond()
        assert g.sources() == ["a"]
        assert g.sinks() == ["d"]

    def test_successors_predecessors(self):
        g = diamond()
        assert g.successors("a") == ["b", "c"]
        assert g.predecessors("d") == ["b", "c"]
        with pytest.raises(GraphError):
            g.successors("ghost")

    def test_topological_order_valid(self):
        g = diamond()
        order = g.topological_order()
        pos = {n: i for i, n in enumerate(order)}
        for u, v in g.edges:
            assert pos[u] < pos[v]

    def test_topological_order_deterministic(self):
        assert diamond().topological_order() == ["a", "b", "c", "d"]

    def test_levels_and_profile(self):
        g = diamond()
        assert g.levels() == [["a"], ["b", "c"], ["d"]]
        assert g.parallelism_profile() == [1, 2, 1]
        assert g.max_parallelism() == 2

    def test_linear_chain_detection(self):
        chain = TaskGraph.from_edges([("a", "b"), ("b", "c")])
        assert chain.is_linear_chain()
        assert not diamond().is_linear_chain()

    def test_single_node_is_chain(self):
        g = TaskGraph()
        g.add_task("only")
        assert g.is_linear_chain()

    def test_empty_graph_not_chain(self):
        assert not TaskGraph().is_linear_chain()

    def test_two_isolated_nodes_not_chain(self):
        g = TaskGraph()
        g.add_task("a")
        g.add_task("b")
        assert not g.is_linear_chain()


class TestScheduleBounds:
    def test_critical_path_weighted(self):
        g = TaskGraph()
        g.add_task("a", 10)
        g.add_task("b", 1)
        g.add_task("c", 5)
        g.add_dependency("a", "c")
        g.add_dependency("b", "c")
        length, path = g.critical_path()
        assert length == 15
        assert path == ["a", "c"]

    def test_total_work_and_speedup_bound(self):
        g = diamond()  # all weight 1; critical path a->b->d = 3
        assert g.total_work() == 4
        cp, _ = g.critical_path()
        assert cp == 3
        assert g.ideal_speedup_bound() == pytest.approx(4 / 3)

    def test_empty_graph_bounds(self):
        g = TaskGraph()
        assert g.critical_path() == (0.0, [])
        assert g.ideal_speedup_bound() == 1.0


class TestTransforms:
    def test_transitive_reduction_removes_redundant_edge(self):
        g = TaskGraph.from_edges([("a", "b"), ("b", "c"), ("a", "c")])
        reduced = g.transitive_reduction()
        assert ("a", "c") not in reduced.edges
        assert reduced.same_structure(g)

    def test_reduction_preserves_diamond(self):
        g = diamond()
        assert g.transitive_reduction().edges == g.edges

    def test_closure_edges(self):
        g = TaskGraph.from_edges([("a", "b"), ("b", "c")])
        assert g.transitive_closure_edges() == {
            ("a", "b"), ("b", "c"), ("a", "c"),
        }

    def test_copy_independent(self):
        g = diamond()
        h = g.copy()
        h.remove_task("d")
        assert "d" in g

    def test_same_structure_ignores_redundant_edges(self):
        a = TaskGraph.from_edges([("a", "b"), ("b", "c")])
        b = TaskGraph.from_edges([("a", "b"), ("b", "c"), ("a", "c")])
        assert a.same_structure(b)

    def test_same_structure_detects_direction_flip(self):
        a = TaskGraph.from_edges([("a", "b")])
        b = TaskGraph.from_edges([("b", "a")])
        assert not a.same_structure(b)

    def test_same_structure_detects_missing_node(self):
        a = TaskGraph.from_edges([("a", "b")])
        b = TaskGraph.from_edges([("a", "b")], isolated=["c"])
        assert not a.same_structure(b)


class TestNetworkxBridge:
    def test_round_trip(self):
        g = diamond()
        nxg = g.to_networkx()
        assert isinstance(nxg, nx.DiGraph)
        back = TaskGraph.from_networkx(nxg)
        assert back.same_structure(g)
        assert back.weight("a") == g.weight("a")

    def test_cyclic_networkx_rejected(self):
        nxg = nx.DiGraph([("a", "b"), ("b", "a")])
        with pytest.raises(GraphError):
            TaskGraph.from_networkx(nxg)


# ---------------------------------------------------------------------------
# Property tests: random DAGs built by only-forward edges.
# ---------------------------------------------------------------------------

@st.composite
def random_dags(draw):
    n = draw(st.integers(min_value=1, max_value=10))
    names = [f"t{i}" for i in range(n)]
    g = TaskGraph()
    for name in names:
        g.add_task(name, draw(st.floats(min_value=0.1, max_value=10.0)))
    for i in range(n):
        for j in range(i + 1, n):
            if draw(st.booleans()):
                g.add_dependency(names[i], names[j])
    return g


class TestDagProperties:
    @given(g=random_dags())
    @settings(max_examples=50, deadline=None)
    def test_topo_order_respects_all_edges(self, g):
        pos = {n: i for i, n in enumerate(g.topological_order())}
        assert all(pos[u] < pos[v] for u, v in g.edges)

    @given(g=random_dags())
    @settings(max_examples=50, deadline=None)
    def test_critical_path_bounds(self, g):
        cp, path = g.critical_path()
        assert 0 < cp <= g.total_work() + 1e-9
        # The path itself must be a chain of dependencies.
        for u, v in zip(path, path[1:]):
            assert v in g.successors(u)

    @given(g=random_dags())
    @settings(max_examples=50, deadline=None)
    def test_reduction_preserves_reachability(self, g):
        reduced = g.transitive_reduction()
        assert reduced.same_structure(g)
        assert reduced.n_edges <= g.n_edges

    @given(g=random_dags())
    @settings(max_examples=50, deadline=None)
    def test_profile_sums_to_task_count(self, g):
        assert sum(g.parallelism_profile()) == g.n_tasks

    @given(g=random_dags())
    @settings(max_examples=50, deadline=None)
    def test_speedup_bound_at_least_one(self, g):
        assert g.ideal_speedup_bound() >= 1.0 - 1e-9
