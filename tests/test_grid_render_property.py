"""Property tests for the rendering layer: round trips on random canvases."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid.palette import Color
from repro.grid.render import from_ascii, to_ascii, to_ppm, to_svg


@st.composite
def random_codes(draw):
    rows = draw(st.integers(min_value=1, max_value=12))
    cols = draw(st.integers(min_value=1, max_value=12))
    values = draw(st.lists(
        st.integers(min_value=0, max_value=len(Color) - 1),
        min_size=rows * cols, max_size=rows * cols,
    ))
    return np.array(values, dtype=np.int8).reshape(rows, cols)


class TestRenderProperties:
    @given(codes=random_codes())
    @settings(max_examples=60, deadline=None)
    def test_ascii_round_trip(self, codes):
        assert np.array_equal(from_ascii(to_ascii(codes)), codes)

    @given(codes=random_codes())
    @settings(max_examples=40, deadline=None)
    def test_ascii_shape(self, codes):
        art = to_ascii(codes)
        lines = art.splitlines()
        assert len(lines) == codes.shape[0]
        assert all(len(l) == codes.shape[1] for l in lines)

    @given(codes=random_codes(), scale=st.integers(min_value=1, max_value=4))
    @settings(max_examples=30, deadline=None)
    def test_ppm_size_and_colors(self, codes, scale):
        data = to_ppm(codes, scale=scale)
        rows, cols = codes.shape
        header = f"P6\n{cols * scale} {rows * scale}\n255\n".encode()
        assert data.startswith(header)
        body = data[len(header):]
        assert len(body) == rows * scale * cols * scale * 3
        pixels = np.frombuffer(body, dtype=np.uint8).reshape(
            rows * scale, cols * scale, 3
        )
        # Top-left block matches the first cell's color exactly.
        assert tuple(pixels[0, 0]) == Color(int(codes[0, 0])).rgb

    @given(codes=random_codes())
    @settings(max_examples=30, deadline=None)
    def test_svg_rect_per_cell(self, codes):
        svg = to_svg(codes, grid_lines=False)
        assert svg.count("<rect") == codes.size

    @given(codes=random_codes())
    @settings(max_examples=30, deadline=None)
    def test_svg_wellformed_enough(self, codes):
        svg = to_svg(codes)
        assert svg.startswith("<svg") and svg.endswith("</svg>")
        # Matching quotes: an even number of double-quote characters.
        assert svg.count('"') % 2 == 0
