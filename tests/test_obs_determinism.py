"""Observer non-perturbation: observability must never change a run.

The companion to ``test_faults_determinism.py``: that file proves the
fault machinery adds nothing when unused; this one proves the
observability layer adds nothing *even when used*.  An attached
observer is a read-only tap — the event trace, makespan and canvas are
byte-identical with and without one.
"""

import json

import numpy as np

from repro.agents import make_team
from repro.faults import RecoveryConfig, RecoveryPolicy
from repro.flags import mauritius
from repro.obs import NullObserver, RunObserver
from repro.schedule import get_scenario, run_scenario
from repro.sim import Acquire, Release, Simulator, Timeout
from repro.sim.export import export_events
from tests.test_faults_determinism import make_plan


def run(observer, seed=11, scenario=4, plan=None, recovery=None):
    spec = mauritius()
    team = make_team("team", 4, np.random.default_rng(seed),
                     colors=list(spec.colors_used()))
    rng = np.random.default_rng(seed)
    return run_scenario(get_scenario(scenario), spec, team, rng,
                        fault_plan=plan, recovery=recovery,
                        observer=observer)


def trace_bytes(result):
    return json.dumps(export_events(result.trace.events),
                      sort_keys=True).encode()


class TestObserverByteIdentity:
    def test_run_observer_leaves_trace_byte_identical(self):
        assert trace_bytes(run(None)) == trace_bytes(run(RunObserver()))

    def test_null_observer_leaves_trace_byte_identical(self):
        assert trace_bytes(run(None)) == trace_bytes(run(NullObserver()))

    def test_identity_holds_on_every_scenario(self):
        for scenario in (1, 2, 3, 4):
            bare = run(None, scenario=scenario)
            observed = run(RunObserver(), scenario=scenario)
            assert trace_bytes(bare) == trace_bytes(observed)
            assert bare.true_makespan == observed.true_makespan
            assert (bare.canvas.codes == observed.canvas.codes).all()

    def test_identity_holds_under_chaos(self):
        plan = make_plan()
        recovery = RecoveryConfig(policy=RecoveryPolicy.REDISTRIBUTE)
        bare = run(None, plan=plan, recovery=recovery)
        observed = run(RunObserver(), plan=plan, recovery=recovery)
        assert trace_bytes(bare) == trace_bytes(observed)
        assert bare.faults.summary() == observed.faults.summary()

    def test_dispatch_span_mode_is_also_inert(self):
        observed = run(RunObserver(dispatch_spans=True))
        assert trace_bytes(run(None)) == trace_bytes(observed)


class TestEngineLevelIdentity:
    """The raw Simulator with an observer attached mid-construction."""

    @staticmethod
    def _worker(sim, marker, n):
        for _ in range(n):
            yield Acquire(marker)
            yield Timeout(2.0)
            yield Release(marker)

    def _run(self, observer):
        sim = Simulator(observer=observer)
        red = sim.resource("red_marker")
        for name in ("P1", "P2"):
            sim.add_process(name, self._worker(sim, red, 3))
        makespan = sim.run()
        return makespan, export_events(sim.events)

    def test_engine_trace_unchanged_by_observer(self):
        assert self._run(None) == self._run(RunObserver())

    def test_observer_sees_every_logged_event(self):
        obs = RunObserver()
        _, exported = self._run(obs)
        assert obs.metrics.counter("events_logged_total").value() \
            == len(exported.splitlines())

    def test_host_clock_never_reaches_deterministic_products(self):
        """A pathological time_fn must not leak into spans or metrics."""
        def jumpy_clock():
            jumpy_clock.t += 1000.0
            return jumpy_clock.t
        jumpy_clock.t = 0.0

        normal = run(RunObserver())
        jumpy = run(RunObserver(time_fn=jumpy_clock))
        assert normal.obs is not None and jumpy.obs is not None
        assert normal.obs.counters == jumpy.obs.counters
        assert normal.obs.histograms == jumpy.obs.histograms
