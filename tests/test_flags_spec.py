"""Tests for repro.flags.spec."""

import numpy as np
import pytest

from repro.flags.spec import FlagSpec, FlagSpecError, Layer, PaintProgram
from repro.grid.palette import Color
from repro.grid.regions import FullGrid, Rect, horizontal_stripe


def two_layer_spec():
    """A tiny layered flag: full blue background, red top half on top."""
    return FlagSpec(
        name="test",
        layers=(
            Layer("bg", Color.BLUE, FullGrid()),
            Layer("top", Color.RED, Rect(0.0, 0.0, 0.5, 1.0)),
        ),
        default_rows=4,
        default_cols=4,
    )


class TestLayer:
    def test_rejects_blank_color(self):
        with pytest.raises(FlagSpecError, match="BLANK"):
            Layer("x", Color.BLANK, FullGrid())

    def test_rejects_empty_name(self):
        with pytest.raises(FlagSpecError, match="non-empty"):
            Layer("", Color.RED, FullGrid())


class TestFlagSpec:
    def test_rejects_no_layers(self):
        with pytest.raises(FlagSpecError, match="no layers"):
            FlagSpec(name="empty", layers=())

    def test_rejects_duplicate_layer_names(self):
        l = Layer("a", Color.RED, FullGrid())
        with pytest.raises(FlagSpecError, match="duplicate"):
            FlagSpec(name="dup", layers=(l, l))

    def test_rejects_empty_default_grid(self):
        with pytest.raises(FlagSpecError):
            FlagSpec(name="bad",
                     layers=(Layer("a", Color.RED, FullGrid()),),
                     default_rows=0)

    def test_layer_lookup(self):
        spec = two_layer_spec()
        assert spec.layer("bg").color is Color.BLUE
        with pytest.raises(KeyError):
            spec.layer("nope")

    def test_colors_used_order(self):
        assert two_layer_spec().colors_used() == (Color.BLUE, Color.RED)

    def test_is_layered_detects_overlap(self):
        assert two_layer_spec().is_layered()

    def test_flat_spec_not_layered(self):
        spec = FlagSpec(
            name="flat",
            layers=(
                Layer("a", Color.RED, horizontal_stripe(0, 2)),
                Layer("b", Color.BLUE, horizontal_stripe(1, 2)),
            ),
            default_rows=4, default_cols=4,
        )
        assert not spec.is_layered()

    def test_overlap_pairs(self):
        assert two_layer_spec().overlap_pairs() == [("bg", "top")]

    def test_final_image_painter_order(self):
        img = two_layer_spec().final_image()
        assert (img[:2] == int(Color.RED)).all()
        assert (img[2:] == int(Color.BLUE)).all()

    def test_visible_cells_excludes_overpainted(self):
        spec = two_layer_spec()
        vis = spec.visible_cells("bg")
        assert not vis[:2].any()
        assert vis[2:].all()

    def test_work_per_layer_counts_hidden_work(self):
        spec = two_layer_spec()
        work = spec.work_per_layer()
        assert work == {"bg": 16, "top": 8}
        assert spec.total_work() == 24


class TestPaintProgram:
    def test_ops_filters(self, mauritius_program):
        red_ops = mauritius_program.ops_for_color(Color.RED)
        assert len(red_ops) == 24
        layer_ops = mauritius_program.ops_for_layer("blue_stripe")
        assert len(layer_ops) == 24
        assert all(op.layer == "blue_stripe" for op in layer_ops)

    def test_n_ops(self, mauritius_program):
        assert mauritius_program.n_ops == 96

    def test_seq_is_rowmajor_within_layer(self, mauritius_program):
        ops = mauritius_program.ops_for_layer("red_stripe")
        assert [op.seq for op in ops] == list(range(24))
        cells = [op.cell for op in ops]
        assert cells == sorted(cells)
