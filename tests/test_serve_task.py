"""Tests for ``POST /task`` — the fabric's remote-worker endpoint.

Covers the cell round-trip (``cell_from_key_dict`` inverts
``key_dict()``), :class:`TaskRequest` validation, and the endpoint
itself: a served task is byte-identical to in-process
:func:`repro.sweep.executor.run_trial`, fault-plan cells work (which
``/run`` cannot express), and the usual gates (404/422/400) hold.
"""

import json

import pytest

from repro.faults import FaultPlan, StudentDropout, TransientStall
from repro.serve import BackgroundServer, ServeConfig, TaskRequest
from repro.serve.client import ServeError
from repro.serve.protocol import ProtocolError
from repro.sweep import SweepError, SweepSpec, cell_from_key_dict
from repro.sweep.executor import run_trial
from repro.sweep.spec import SweepCell

PLAN = FaultPlan.of([StudentDropout(at=8.0, worker=1),
                     TransientStall(at=4.0, worker=2, duration=3.0)])


def canon(obj):
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def a_cell(**overrides):
    spec = SweepSpec(**overrides)
    return next(iter(spec.cells()))


@pytest.fixture(scope="module")
def server():
    with BackgroundServer(ServeConfig(batch_window_s=0.01)) as bg:
        yield bg


class TestCellRoundTrip:
    def test_plain_cell_round_trips(self):
        cell = a_cell(flags=("poland",), scenarios=(3,))
        rebuilt = cell_from_key_dict(cell.key_dict())
        assert rebuilt == cell
        assert rebuilt.key() == cell.key()

    def test_fault_plan_cell_round_trips(self):
        cell = a_cell(flags=("mauritius",),
                      fault_plans=(("drop", PLAN),))
        rebuilt = cell_from_key_dict(cell.key_dict())
        assert rebuilt == cell
        assert rebuilt.fault_plan == PLAN

    def test_json_round_trip_preserves_key(self):
        cell = a_cell(flags=("mauritius",), scenarios=(0,),
                      fault_plans=(("drop", PLAN),), rows=12, cols=18)
        wire = json.loads(json.dumps(cell.key_dict()))
        assert cell_from_key_dict(wire).key() == cell.key()

    @pytest.mark.parametrize("mutate", [
        lambda d: d.pop("flag"),
        lambda d: d.update(extra_field=1),
        lambda d: d.update(policy="NO_SUCH_POLICY"),
        lambda d: d.update(style="NO_SUCH_STYLE"),
        lambda d: d.update(faults="not-a-list"),
        lambda d: d.update(faults=[{"kind": "martian_attack"}]),
        lambda d: d.update(rows=0),
        lambda d: d.update(cols=True),
        lambda d: d.update(flag=""),
        lambda d: d.update(scenario=7),
        lambda d: d.update(team_size="four"),
    ])
    def test_bad_dicts_raise_sweep_error(self, mutate):
        d = a_cell().key_dict()
        mutate(d)
        with pytest.raises(SweepError):
            cell_from_key_dict(d)


class TestTaskRequest:
    def body(self, **overrides):
        body = {"cell": a_cell(flags=("poland",)).key_dict(),
                "seed": 5, "n_trials": 3, "trial": 1}
        body.update(overrides)
        return body

    def test_valid_body_parses(self):
        request = TaskRequest.from_body(self.body())
        assert request.cell.flag == "poland"
        assert (request.seed, request.n_trials, request.trial) == (5, 3, 1)
        assert request.observe is False

    def test_task_matches_executor_layout(self):
        request = TaskRequest.from_body(self.body(observe=True))
        task = request.task()
        assert set(task) == {"cell", "cell_key", "seed", "n_trials",
                             "trial", "observe"}
        assert task["cell_key"] == request.cell.key()
        assert task["cell"] == request.cell.key_dict()
        assert task["observe"] is True

    def test_cell_is_recanonicalized_not_echoed(self):
        # Scrambled key order on the wire; identity must not change.
        scrambled = dict(reversed(list(self.body()["cell"].items())))
        request = TaskRequest.from_body(self.body(cell=scrambled))
        assert request.task()["cell_key"] == a_cell(flags=("poland",)).key()

    @pytest.mark.parametrize("overrides,fragment", [
        ({"cell": "not-a-dict"}, "cell"),
        ({"cell": {"flag": "poland"}}, "invalid"),
        ({"trial": 3}, "trial"),          # trial >= n_trials
        ({"trial": -1}, "trial"),
        ({"n_trials": 0}, "n_trials"),
        ({"seed": "zero"}, "seed"),
        ({"observe": "yes"}, "observe"),
        ({"timeout_s": -1}, "timeout_s"),
        ({"banana": 1}, "banana"),
    ])
    def test_bad_bodies_are_400(self, overrides, fragment):
        with pytest.raises(ProtocolError) as err:
            TaskRequest.from_body(self.body(**overrides))
        assert err.value.status == 400
        assert fragment in err.value.message


class TestTaskEndpoint:
    def test_served_task_byte_identical_to_run_trial(self, server):
        cell = a_cell(flags=("poland",), scenarios=(3,))
        reply = server.client().task(cell.key_dict(), seed=11,
                                     n_trials=3, trial=2)
        expected = run_trial({"cell": cell.key_dict(),
                              "cell_key": cell.key(), "seed": 11,
                              "n_trials": 3, "trial": 2,
                              "observe": False})
        assert canon(reply["trial"]) == canon(expected)
        assert reply["trial_index"] == 2

    def test_fault_plan_cell_is_servable(self, server):
        # /run cannot express fault plans; /task can.
        cell = a_cell(flags=("mauritius",),
                      fault_plans=(("drop", PLAN),))
        reply = server.client().task(cell.key_dict(), seed=3,
                                     n_trials=1, trial=0)
        expected = run_trial({"cell": cell.key_dict(),
                              "cell_key": cell.key(), "seed": 3,
                              "n_trials": 1, "trial": 0,
                              "observe": False})
        assert canon(reply["trial"]) == canon(expected)

    def test_distinct_trials_of_one_cell_differ(self, server):
        cell = a_cell(flags=("poland",))
        first = server.client().task(cell.key_dict(), seed=4,
                                     n_trials=2, trial=0)
        second = server.client().task(cell.key_dict(), seed=4,
                                      n_trials=2, trial=1)
        assert canon(first["trial"]) != canon(second["trial"])

    def test_unknown_flag_is_404(self, server):
        cell_dict = a_cell().key_dict()
        cell_dict["flag"] = "atlantis"
        with pytest.raises(ServeError) as err:
            server.client().task(cell_dict, seed=0, n_trials=1, trial=0)
        assert err.value.status == 404
        assert err.value.code == "flag_not_found"

    def test_statically_invalid_cell_is_422(self, server):
        cell = SweepCell(flag="mauritius", scenario=3, team_size=2,
                         policy=a_cell().policy, style=a_cell().style)
        with pytest.raises(ServeError) as err:
            server.client().task(cell.key_dict(), seed=0,
                                 n_trials=1, trial=0)
        assert err.value.status == 422
        assert err.value.code == "static_analysis_failed"

    def test_malformed_cell_is_400(self, server):
        with pytest.raises(ServeError) as err:
            server.client().task({"flag": "poland"}, seed=0,
                                 n_trials=1, trial=0)
        assert err.value.status == 400
        assert err.value.code == "bad_field"

    def test_deadline_is_504(self, server):
        cell = a_cell(flags=("mauritius",), scenarios=(1,), rows=24,
                      cols=36)
        with pytest.raises(ServeError) as err:
            server.client().task(cell.key_dict(), seed=9, n_trials=1,
                                 trial=0, timeout_s=0.0005)
        assert err.value.status == 504
        assert err.value.code == "deadline_exceeded"
