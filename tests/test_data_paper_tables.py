"""Tests for repro.data.paper_tables — internal consistency of constants."""

import pytest

from repro.data.paper_tables import (
    ALL_TABLES,
    DEPGRAPH_RESULTS,
    FIG8_TRANSITIONS,
    INSTITUTIONS,
    QUIZ_CONCEPTS,
    QUIZ_N,
    SURVEY_N,
    TABLE_I,
    TABLE_II,
    TABLE_III,
    validate_transitions,
)


class TestTables:
    def test_row_counts_match_paper(self):
        assert len(TABLE_I) == 5
        assert len(TABLE_II) == 6
        assert len(TABLE_III) == 4

    def test_every_cell_has_all_institutions(self):
        for table in ALL_TABLES.values():
            for row in table.values():
                assert set(row) == set(INSTITUTIONS)

    def test_values_on_half_point_likert_scale(self):
        for table in ALL_TABLES.values():
            for row in table.values():
                for v in row.values():
                    if v is not None:
                        assert 1.0 <= v <= 5.0
                        assert (v * 2) % 1 == 0

    def test_published_na_cells(self):
        assert TABLE_I[
            "The activity stimulated my interest in parallel computing"
        ]["TNTech"] is None
        webster_nas = sum(
            1 for row in TABLE_III.values() if row["Webster"] is None
        )
        assert webster_nas == 3

    def test_knox_uniform_tone(self):
        """Knox scored 4.0 on every published row."""
        for table in ALL_TABLES.values():
            for row in table.values():
                assert row["Knox"] == 4.0

    def test_half_point_medians_have_even_n(self):
        """Our assumed respondent counts make every published median
        reachable."""
        for table in ALL_TABLES.values():
            for row in table.values():
                for inst, v in row.items():
                    if v is not None and v % 1 == 0.5:
                        assert SURVEY_N[inst] % 2 == 0, (inst, v)


class TestFig8:
    def test_rows_sum_to_one(self):
        validate_transitions()

    def test_three_institutions_five_concepts(self):
        assert set(FIG8_TRANSITIONS) == set(QUIZ_N) == {"USI", "TNTech", "HPU"}
        for concepts in FIG8_TRANSITIONS.values():
            assert set(concepts) == set(QUIZ_CONCEPTS)

    def test_explicit_paper_numbers_preserved(self):
        """Spot-check every percentage the paper prints verbatim."""
        t = FIG8_TRANSITIONS
        assert t["USI"]["task_decomposition"]["retained"] == 0.769
        assert t["TNTech"]["task_decomposition"]["retained"] == 0.872
        assert t["HPU"]["task_decomposition"]["retained"] == 0.833
        assert t["HPU"]["speedup"]["retained"] == 1.0
        assert t["USI"]["speedup"]["gained"] == 0.154
        assert t["TNTech"]["speedup"]["gained"] == 0.180
        assert t["USI"]["contention"]["gained"] == 0.385
        assert t["TNTech"]["contention"]["gained"] == 0.250
        assert t["HPU"]["contention"]["gained"] == 0.167
        assert t["USI"]["scalability"]["retained"] == 0.923
        assert t["TNTech"]["scalability"]["retained"] == 0.826
        assert t["HPU"]["scalability"]["retained"] == 1.0
        assert t["TNTech"]["pipelining"]["never"] == 0.744
        assert t["USI"]["pipelining"]["lost"] == 0.231
        assert t["HPU"]["pipelining"]["lost"] == 0.5

    def test_usi_hpu_counts_are_integral(self):
        """USI (n=13) and HPU (n=6) fractions correspond to whole students."""
        for inst in ("USI", "HPU"):
            n = QUIZ_N[inst]
            for concept, row in FIG8_TRANSITIONS[inst].items():
                for state, frac in row.items():
                    count = frac * n
                    assert abs(count - round(count)) < 0.05, (
                        inst, concept, state, count
                    )


class TestDepgraphResults:
    def test_counts_consistent(self):
        d = DEPGRAPH_RESULTS
        assert d["n_perfect"] + d["n_mostly_correct"] == 17
        assert d["frac_perfect"] == pytest.approx(10 / 29, abs=0.01)
        assert d["frac_at_least_mostly"] == pytest.approx(17 / 29, abs=0.01)
        assert d["n_submissions"] / d["class_size"] == pytest.approx(
            d["response_rate"], abs=0.01
        )
