"""Tests for repro.sim.export — trace serialization."""

import io

import numpy as np
import pytest

from repro.agents import make_team
from repro.flags import compile_flag, mauritius, scenario_partition
from repro.grid.palette import MAURITIUS_STRIPES
from repro.schedule.runner import run_partition
from repro.sim.events import Event, EventKind
from repro.sim.export import (
    ExportError,
    event_from_dict,
    event_to_dict,
    export_events,
    export_trace,
    import_events,
    import_trace,
)


@pytest.fixture(scope="module")
def s4_result():
    prog = compile_flag(mauritius())
    team = make_team("t", 4, np.random.default_rng(6),
                     colors=list(MAURITIUS_STRIPES))
    return run_partition(scenario_partition(prog, 4), team,
                         np.random.default_rng(6))


class TestEventDicts:
    def test_round_trip_single(self):
        e = Event(time=1.5, seq=3, kind=EventKind.STROKE_START,
                  agent="P1", data={"cell": [2, 3], "color": "RED"})
        assert event_from_dict(event_to_dict(e)) == e
        back = event_from_dict(event_to_dict(e))
        assert back.kind == e.kind and back.data == e.data

    def test_bad_kind_rejected(self):
        with pytest.raises(ExportError):
            event_from_dict({"time": 0, "seq": 0, "kind": "teleport"})

    def test_missing_field_rejected(self):
        with pytest.raises(ExportError):
            event_from_dict({"time": 0, "kind": "note"})


class TestEventsRoundTrip:
    @staticmethod
    def _field_tuples(events):
        """Full field comparison (Event.__eq__ only uses (time, seq))."""
        def norm(d):
            return {k: (list(v) if isinstance(v, (list, tuple)) else v)
                    for k, v in d.items()}

        return [(e.time, e.seq, e.kind, e.agent, norm(e.data))
                for e in events]

    def test_full_trace_round_trip(self, s4_result):
        text = export_trace(s4_result.trace)
        back = import_trace(text)
        assert len(back.events) == len(s4_result.trace.events)
        assert (self._field_tuples(back.events)
                == self._field_tuples(s4_result.trace.events))

    def test_analyses_survive_round_trip(self, s4_result):
        back = import_trace(export_trace(s4_result.trace))
        assert back.makespan() == s4_result.trace.makespan()
        assert (back.total_wait_fraction()
                == s4_result.trace.total_wait_fraction())
        assert len(back.stroke_intervals()) \
            == len(s4_result.trace.stroke_intervals())

    def test_file_object_io(self, s4_result):
        buf = io.StringIO()
        export_trace(s4_result.trace, buf)
        buf.seek(0)
        back = import_trace(buf)
        assert (self._field_tuples(back.events)
                == self._field_tuples(s4_result.trace.events))

    def test_empty_export(self):
        assert export_events([]) == ""
        assert import_events("") == []

    def test_blank_lines_skipped(self):
        e = Event(time=0.0, seq=0, kind=EventKind.NOTE, agent="x", data={})
        text = "\n" + export_events([e]) + "\n\n"
        assert import_events(text) == [e]

    def test_invalid_json_line(self):
        with pytest.raises(ExportError, match="line 1"):
            import_events("not json at all")

    def test_cells_become_lists_but_data_preserved(self, s4_result):
        """JSON turns tuples into lists; data content is still equal for
        metric purposes (trace analysis only reads resource/color keys)."""
        back = import_trace(export_trace(s4_result.trace))
        orig = s4_result.trace.of_kind(EventKind.STROKE_START)[0]
        imported = back.of_kind(EventKind.STROKE_START)[0]
        assert imported.data["color"] == orig.data["color"]
        assert list(imported.data["cell"]) == list(orig.data["cell"])
