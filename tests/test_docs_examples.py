"""The docs stay honest: examples execute, docstrings exist, links hold.

Runs the two CI guard tools (``tools/run_doc_examples.py`` and
``tools/doclint.py``) exactly as the docs CI job does, so a local
``pytest`` catches documentation drift before CI does.
"""

import os
import pathlib
import subprocess
import sys

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent
DOCS = sorted((REPO / "docs").glob("*.md"))
DOCLINT_TARGETS = [
    "src/repro/obs",
    "src/repro/sim/engine.py",
    "src/repro/faults/injector.py",
    "src/repro/schedule/runner.py",
    "src/repro/cli.py",
    "tools",
]


def run_tool(*argv):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return subprocess.run([sys.executable, *argv], cwd=REPO, env=env,
                          capture_output=True, text=True)


class TestDocExamples:
    def test_docs_exist(self):
        names = {p.name for p in DOCS}
        assert {"api.md", "observability.md"} <= names

    @pytest.mark.parametrize("doc", DOCS, ids=lambda p: p.name)
    def test_every_code_block_executes(self, doc):
        proc = run_tool("tools/run_doc_examples.py", str(doc))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "[ok]" in proc.stdout

    def test_runner_fails_on_a_broken_block(self, tmp_path):
        bad = tmp_path / "bad.md"
        bad.write_text("```python\nraise RuntimeError('drift')\n```\n")
        proc = run_tool("tools/run_doc_examples.py", str(bad))
        assert proc.returncode == 1
        assert "FAIL" in proc.stdout

    def test_skip_marker_is_honored(self, tmp_path):
        doc = tmp_path / "skip.md"
        doc.write_text("<!-- doclint: skip-example -->\n"
                       "```python\nraise RuntimeError('never runs')\n```\n")
        proc = run_tool("tools/run_doc_examples.py", str(doc))
        assert proc.returncode == 0
        assert "1 skipped" in proc.stdout


class TestDoclint:
    def test_instrumented_modules_are_clean(self):
        proc = run_tool("tools/doclint.py", *DOCLINT_TARGETS)
        assert proc.returncode == 0, proc.stdout
        assert "clean" in proc.stdout

    def test_whole_tree_is_clean(self):
        proc = run_tool("tools/doclint.py", "src/repro")
        assert proc.returncode == 0, proc.stdout

    def test_missing_docstrings_are_reported(self, tmp_path):
        mod = tmp_path / "undocumented.py"
        mod.write_text('"""Module doc."""\n\n'
                       "def exposed(x):\n    return x\n\n"
                       "class Thing:\n"
                       '    """Doc."""\n'
                       "    def method(self):\n        return 1\n")
        proc = run_tool("tools/doclint.py", str(mod))
        assert proc.returncode == 1
        assert "D103 missing docstring: exposed" in proc.stdout
        assert "D102 missing docstring: Thing.method" in proc.stdout

    def test_private_and_dunder_names_are_exempt(self, tmp_path):
        mod = tmp_path / "private.py"
        mod.write_text('"""Module doc."""\n\n'
                       "def _helper():\n    return 1\n\n"
                       "class _Hidden:\n"
                       "    def anything(self):\n        return 1\n\n"
                       "class Shown:\n"
                       '    """Doc."""\n'
                       "    def __init__(self):\n        self.x = 1\n")
        proc = run_tool("tools/doclint.py", str(mod))
        assert proc.returncode == 0, proc.stdout


class TestReadmeLinks:
    def test_readme_links_both_docs(self):
        readme = (REPO / "README.md").read_text()
        assert "docs/api.md" in readme
        assert "docs/observability.md" in readme

    def test_readme_documents_new_subcommands(self):
        readme = (REPO / "README.md").read_text()
        assert "python -m repro chaos" in readme
        assert "python -m repro trace" in readme

    def test_doc_cross_links_resolve(self):
        api = (REPO / "docs" / "api.md").read_text()
        assert "observability.md" in api
        assert (REPO / "docs" / "observability.md").exists()
