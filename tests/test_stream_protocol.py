"""Tests for repro.stream.protocol — the versioned wire schema.

The envelope contract: stable key set, strict version check, SSE
framing that round-trips through a line decoder, and
``reassemble_feed`` rebuilding the archived event log byte for byte
(deduplicating resumes, refusing gaps).
"""

import json

import pytest

from repro.stream import (
    FRAME_KINDS,
    STREAM_PROTOCOL_VERSION,
    StreamEvent,
    StreamProtocolError,
    TERMINAL_KINDS,
    decode_sse_lines,
    dumps_frame,
    encode_sse,
    feed_makespans,
    heartbeat_comment,
    loads_frame,
    reassemble_feed,
    split_runs,
)


def frame(seq, kind="event", run="scenario3", **data):
    if kind == "event" and "line" not in data:
        data["line"] = json.dumps({"seq": seq, "time": float(seq)},
                                  sort_keys=True)
    return StreamEvent(seq=seq, time=float(seq), kind=kind, run=run,
                       data=data)


class TestEnvelope:
    def test_wire_round_trip(self):
        ev = frame(7)
        assert StreamEvent.from_wire(ev.to_wire()) == ev

    def test_wire_dict_is_versioned_with_stable_keys(self):
        wire = frame(1).to_wire()
        assert wire["v"] == STREAM_PROTOCOL_VERSION
        assert set(wire) == {"v", "seq", "time", "kind", "run", "data"}

    def test_terminal_kinds(self):
        assert TERMINAL_KINDS == {"end", "bye", "error"}
        assert frame(1, kind="end", run=None).terminal
        assert frame(1, kind="bye", run=None).terminal
        assert not frame(1).terminal
        assert not frame(1, kind="run_start").terminal

    def test_unknown_version_refused(self):
        wire = frame(1).to_wire()
        wire["v"] = STREAM_PROTOCOL_VERSION + 1
        with pytest.raises(StreamProtocolError, match="not supported"):
            StreamEvent.from_wire(wire)

    def test_unknown_kind_refused(self):
        wire = frame(1).to_wire()
        wire["kind"] = "telemetry"
        with pytest.raises(StreamProtocolError, match="unknown frame"):
            StreamEvent.from_wire(wire)
        assert "telemetry" not in FRAME_KINDS

    def test_missing_field_refused(self):
        wire = frame(1).to_wire()
        del wire["seq"]
        with pytest.raises(StreamProtocolError, match="bad stream frame"):
            StreamEvent.from_wire(wire)

    def test_loads_frame_rejects_garbage(self):
        with pytest.raises(StreamProtocolError, match="invalid frame"):
            loads_frame("{not json")
        with pytest.raises(StreamProtocolError, match="must be an object"):
            loads_frame("[1, 2]")

    def test_dumps_frame_is_canonical(self):
        text = dumps_frame(frame(3))
        assert text == json.dumps(json.loads(text), sort_keys=True,
                                  separators=(",", ":"))


class TestSseFraming:
    def test_encode_sse_carries_seq_as_id(self):
        raw = encode_sse(frame(42)).decode("utf-8")
        assert raw.startswith("id: 42\ndata: ")
        assert raw.endswith("\n\n")

    def test_heartbeat_is_a_comment(self):
        assert heartbeat_comment(3) == b": keepalive 3\n\n"

    def test_decode_round_trips_a_feed_with_heartbeats(self):
        frames = [frame(1, kind="run_start"), frame(2), frame(3),
                  frame(4, kind="end", run=None, status="ok")]
        raw = b"".join([encode_sse(frames[0]), heartbeat_comment(0),
                        encode_sse(frames[1]), encode_sse(frames[2]),
                        heartbeat_comment(1), encode_sse(frames[3])])
        lines = raw.decode("utf-8").split("\n")
        assert list(decode_sse_lines(lines)) == frames

    def test_decode_tolerates_truncated_final_frame(self):
        # A feed cut before its final blank line still yields the frame.
        raw = encode_sse(frame(1)).decode("utf-8").rstrip("\n")
        assert list(decode_sse_lines(raw.split("\n"))) == [frame(1)]


class TestReassembly:
    def feed(self):
        lines = [json.dumps({"seq": i, "time": float(i)}, sort_keys=True)
                 for i in range(3)]
        return [
            StreamEvent(1, 0.0, "run_start", "scenario3", {}),
            StreamEvent(2, 0.0, "event", "scenario3", {"line": lines[0]}),
            StreamEvent(3, 1.0, "event", "scenario3", {"line": lines[1]}),
            StreamEvent(4, 2.0, "event", "scenario3", {"line": lines[2]}),
            StreamEvent(5, 2.0, "run_end", "scenario3",
                        {"makespan": 2.0, "events": 3}),
            StreamEvent(6, 0.0, "end", None, {"status": "ok"}),
        ], lines

    def test_reassembles_the_archived_log(self):
        feed, lines = self.feed()
        assert reassemble_feed(feed) == {
            "scenario3": "\n".join(lines) + "\n"}

    def test_deduplicates_resumed_frames(self):
        feed, lines = self.feed()
        resumed = feed + feed[2:]  # a reconnect legitimately replays
        assert reassemble_feed(resumed) == reassemble_feed(feed)

    def test_gap_is_refused_with_resume_hint(self):
        feed, _ = self.feed()
        with pytest.raises(StreamProtocolError, match="resume from 2"):
            reassemble_feed([feed[0], feed[1], feed[3]])

    def test_event_without_line_is_refused(self):
        with pytest.raises(StreamProtocolError, match="no line/run"):
            reassemble_feed([StreamEvent(1, 0.0, "event", "scenario3",
                                         {})])

    def test_feed_makespans_reads_run_end_frames(self):
        feed, _ = self.feed()
        assert feed_makespans(feed) == {"scenario3": 2.0}

    def test_split_runs_groups_in_feed_order(self):
        feed, _ = self.feed()
        groups = split_runs(feed)
        assert [label for label, _ in groups] == ["scenario3"]
        assert len(groups[0][1]) == 3
