"""Tests for repro.depgraph.classify — the Section V-C rubric grader."""

import pytest

from repro.depgraph.classify import (
    Category,
    Submission,
    SubmissionKind,
    canonicalize,
    classify,
    grade_all,
)
from repro.depgraph.flag_dags import (
    jordan_linear_chain_dag,
    jordan_merged_stripes_dag,
    jordan_reference_dag,
    jordan_reference_dag_with_white,
    jordan_split_triangle_dag,
)
from repro.depgraph.graph import TaskGraph


def graph_submission(graph, **kwargs):
    return Submission(student="s", kind=SubmissionKind.GRAPH, graph=graph,
                      **kwargs)


class TestPerfect:
    def test_reference_without_white(self):
        assert classify(graph_submission(jordan_reference_dag())) \
            is Category.PERFECT

    def test_reference_with_white(self):
        assert classify(graph_submission(jordan_reference_dag_with_white())) \
            is Category.PERFECT

    def test_redundant_transitive_edge_still_perfect(self):
        g = jordan_reference_dag().copy()
        g.add_dependency("black_stripe", "white_star")
        assert classify(graph_submission(g)) is Category.PERFECT

    def test_hand_written_labels_canonicalized(self):
        g = TaskGraph.from_edges([
            ("black", "triangle"),
            ("green", "triangle"),
            ("triangle", "white dot"),
        ])
        assert classify(graph_submission(g)) is Category.PERFECT


class TestMostlyCorrect:
    def test_split_triangle_as_drawn(self):
        g = jordan_split_triangle_dag(correct_edges=False)
        assert classify(graph_submission(g)) is Category.MOSTLY_CORRECT

    def test_split_triangle_truly_correct_edges(self):
        """Nobody drew this, but the rubric still counts it mostly correct."""
        g = jordan_split_triangle_dag(correct_edges=True)
        assert classify(graph_submission(g)) is Category.MOSTLY_CORRECT

    def test_merged_stripes(self):
        g = jordan_merged_stripes_dag()
        assert classify(graph_submission(g)) is Category.MOSTLY_CORRECT

    def test_spatial_layout_without_arrows(self):
        g = jordan_reference_dag()
        sub = graph_submission(
            TaskGraph.from_edges(g.edges, isolated=g.tasks),
            has_arrows=False,
        )
        assert classify(sub) is Category.MOSTLY_CORRECT


class TestErrors:
    def test_linear_chain(self):
        assert classify(graph_submission(jordan_linear_chain_dag())) \
            is Category.LINEAR_CHAIN

    def test_linear_chain_with_white(self):
        g = jordan_linear_chain_dag(include_white=True)
        assert classify(graph_submission(g)) is Category.LINEAR_CHAIN

    def test_incomplete(self):
        g = TaskGraph.from_edges([("black_stripe", "green_stripe")])
        assert classify(graph_submission(g, complete=False)) \
            is Category.INCOMPLETE

    def test_no_learning_drawing(self):
        sub = Submission(student="s", kind=SubmissionKind.FLAG_DRAWING)
        assert classify(sub) is Category.NO_LEARNING

    def test_no_learning_code(self):
        sub = Submission(student="s", kind=SubmissionKind.CODE)
        assert classify(sub) is Category.NO_LEARNING

    def test_graph_kind_without_graph_is_no_learning(self):
        sub = Submission(student="s", kind=SubmissionKind.GRAPH, graph=None)
        assert classify(sub) is Category.NO_LEARNING

    def test_reversed_chain_still_counts_as_linear(self):
        """The chain bucket is about *shape* (thinking sequentially), so a
        backwards chain is still a linear-chain error."""
        g = TaskGraph.from_edges([
            ("white_star", "red_triangle"),
            ("red_triangle", "black_stripe"),
        ])
        assert classify(graph_submission(g)) is Category.LINEAR_CHAIN

    def test_unrecognizable_graph_is_other(self):
        g = TaskGraph.from_edges([
            ("red_triangle", "black_stripe"),   # upside-down diamond
            ("red_triangle", "green_stripe"),
            ("black_stripe", "white_star"),
            ("green_stripe", "white_star"),
        ])
        assert classify(graph_submission(g)) is Category.OTHER


class TestCanonicalize:
    def test_synonyms(self):
        g = TaskGraph.from_edges([("chevron", "star")])
        c = canonicalize(g)
        assert "red_triangle" in c and "white_star" in c

    def test_unknown_labels_pass_through(self):
        g = TaskGraph.from_edges([("My Odd Task", "another thing")])
        c = canonicalize(g)
        assert "my_odd_task" in c
        assert "another_thing" in c

    def test_preserves_weights_and_edges(self):
        g = TaskGraph()
        g.add_task("black", 7.0)
        g.add_task("triangle", 3.0)
        g.add_dependency("black", "triangle")
        c = canonicalize(g)
        assert c.weight("black_stripe") == 7.0
        assert ("black_stripe", "red_triangle") in c.edges


class TestGradeAll:
    def test_report_counts_and_fractions(self):
        subs = [
            graph_submission(jordan_reference_dag()),
            graph_submission(jordan_linear_chain_dag()),
            graph_submission(jordan_merged_stripes_dag()),
            Submission(student="x", kind=SubmissionKind.CODE),
        ]
        report = grade_all(subs)
        assert report.total == 4
        assert report.n_perfect == 1
        assert report.n_mostly == 1
        assert report.fraction(Category.LINEAR_CHAIN) == 0.25
        assert report.at_least_mostly_correct == 0.5

    def test_empty_report(self):
        report = grade_all([])
        assert report.total == 0
        assert report.at_least_mostly_correct == 0.0
        assert report.fraction(Category.PERFECT) == 0.0
