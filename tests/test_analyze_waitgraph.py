"""Tests for repro.analyze.waitgraph — static deadlock detection.

The load-bearing property: a configuration the static analyzer flags
deadlocks at runtime with the *identical* cycle list, because both
sides feed the same wait-for relation through
``repro.sim.find_wait_cycle``.
"""

import pytest

from repro.analyze import (
    AcquireStep,
    BarrierStep,
    ProcSpec,
    ReleaseStep,
    Severity,
    WaitProgram,
    WorkStep,
    analyze_wait_program,
    execute_wait_program,
    hold_pairs,
    wait_program_from_partition,
)
from repro.flags import compile_flag, get_flag, scenario_partition
from repro.schedule.pipeline import rotate_color_order
from repro.schedule.runner import AcquirePolicy
from repro.sim import DeadlockError, find_wait_cycle, format_wait_cycle


def prog(procs, capacities):
    return WaitProgram(procs=tuple(procs), capacities=capacities)


def proc(name, *steps):
    return ProcSpec(name=name, steps=tuple(steps))


class TestHoldPairs:
    def test_no_pairs_when_release_before_acquire(self):
        p = proc("w", AcquireStep("a"), WorkStep(1.0), ReleaseStep("a"),
                 AcquireStep("b"), WorkStep(1.0), ReleaseStep("b"))
        pairs, issues = hold_pairs(p)
        assert pairs == []
        assert issues == []

    def test_pair_with_ordinal(self):
        p = proc("w", AcquireStep("a"), AcquireStep("b"), ReleaseStep("a"),
                 AcquireStep("c"))
        pairs, issues = hold_pairs(p)
        assert ("w", "a", "b", 1) in pairs
        assert ("w", "b", "c", 2) in pairs
        assert issues == []

    def test_release_without_hold(self):
        _, issues = hold_pairs(proc("w", ReleaseStep("a")))
        assert [i.code for i in issues] == ["release_without_hold"]
        assert "w releases a" in issues[0].message


class TestStructuralErrors:
    def test_unsatisfiable_acquire_names_resource(self):
        issues, cycle = analyze_wait_program(
            prog([proc("w", AcquireStep("ghost_marker"))], {"a": 1}))
        codes = [i.code for i in issues]
        assert "unsatisfiable_acquire" in codes
        assert cycle == []
        msg = next(i for i in issues
                   if i.code == "unsatisfiable_acquire").message
        assert "ghost_marker" in msg

    def test_unsatisfiable_wait_names_process(self):
        issues, _ = analyze_wait_program(
            prog([proc("w", BarrierStep(("nobody",)))], {}))
        assert [i.code for i in issues] == ["unsatisfiable_wait"]
        assert "nobody" in issues[0].message

    def test_self_wait_rejected(self):
        issues, _ = analyze_wait_program(
            prog([proc("w", BarrierStep(("w",)))], {}))
        assert "unsatisfiable_wait" in [i.code for i in issues]

    def test_reacquire_single_copy_is_self_deadlock(self):
        issues, cycle = analyze_wait_program(
            prog([proc("w", AcquireStep("a"), AcquireStep("a"))], {"a": 1}))
        assert cycle == ["w", "a", "w"]
        assert "deadlock_cycle" in [i.code for i in issues]

    def test_reacquire_runtime_parity(self):
        program = prog([proc("w", AcquireStep("a"), AcquireStep("a"))],
                       {"a": 1})
        _, static_cycle = analyze_wait_program(program)
        with pytest.raises(DeadlockError) as info:
            execute_wait_program(program)
        assert info.value.cycle == static_cycle


class TestBarrierCycles:
    def test_mutual_wait_is_deadlock(self):
        program = prog(
            [proc("a", BarrierStep(("b",))),
             proc("b", BarrierStep(("a",)))], {})
        issues, cycle = analyze_wait_program(program)
        assert cycle == ["a", "<wait>", "b", "<wait>", "a"]
        assert any(i.code == "deadlock_cycle" for i in issues)

    def test_barrier_runtime_parity(self):
        program = prog(
            [proc("a", WorkStep(1.0), BarrierStep(("b",))),
             proc("b", WorkStep(2.0), BarrierStep(("a",)))], {})
        _, static_cycle = analyze_wait_program(program)
        with pytest.raises(DeadlockError) as info:
            execute_wait_program(program)
        assert info.value.cycle == static_cycle

    def test_one_way_wait_is_fine(self):
        program = prog(
            [proc("a", WorkStep(1.0)),
             proc("b", BarrierStep(("a",)), WorkStep(1.0))], {})
        issues, cycle = analyze_wait_program(program)
        assert issues == [] and cycle == []
        sim = execute_wait_program(program)
        assert sim.now == pytest.approx(2.0)


class TestHoldAndWait:
    def two_phil(self, capacities):
        # Dining philosophers, two seats: classic inverted lock order.
        return prog(
            [proc("p0", AcquireStep("fork_a"), WorkStep(1.0),
                  AcquireStep("fork_b"), ReleaseStep("fork_a"),
                  ReleaseStep("fork_b")),
             proc("p1", AcquireStep("fork_b"), WorkStep(1.0),
                  AcquireStep("fork_a"), ReleaseStep("fork_b"),
                  ReleaseStep("fork_a"))],
            capacities)

    def test_two_process_cycle(self):
        issues, cycle = analyze_wait_program(
            self.two_phil({"fork_a": 1, "fork_b": 1}))
        assert cycle == ["p0", "fork_b", "p1", "fork_a", "p0"]
        assert any(i.code == "deadlock_cycle"
                   and i.severity is Severity.ERROR for i in issues)

    def test_two_process_runtime_parity(self):
        program = self.two_phil({"fork_a": 1, "fork_b": 1})
        _, static_cycle = analyze_wait_program(program)
        with pytest.raises(DeadlockError) as info:
            execute_wait_program(program)
        assert info.value.cycle == static_cycle
        assert (format_wait_cycle(info.value.cycle)
                == format_wait_cycle(static_cycle))

    def test_duplicate_copies_downgrade_to_warning(self):
        issues, cycle = analyze_wait_program(
            self.two_phil({"fork_a": 2, "fork_b": 2}))
        assert cycle == []
        assert [i.code for i in issues] == ["lock_order_inversion"]
        assert issues[0].severity is Severity.WARNING
        # And indeed it completes at runtime with a spare of each fork.
        execute_wait_program(self.two_phil({"fork_a": 2, "fork_b": 2}))

    def test_single_witness_not_a_deadlock(self):
        # One process acquires a->b, another b->a but never concurrently
        # exists: with only one process the cycle has no distinct
        # witnesses and must not be an ERROR.
        program = prog(
            [proc("solo", AcquireStep("a"), AcquireStep("b"),
                  ReleaseStep("b"), ReleaseStep("a"),
                  AcquireStep("b"), AcquireStep("a"),
                  ReleaseStep("a"), ReleaseStep("b"))],
            {"a": 1, "b": 1})
        issues, cycle = analyze_wait_program(program)
        assert cycle == []
        assert [i.code for i in issues] == ["lock_order_inversion"]
        execute_wait_program(program)  # runs to completion

    def test_consistent_order_is_clean(self):
        program = prog(
            [proc("p0", AcquireStep("a"), AcquireStep("b"),
                  ReleaseStep("b"), ReleaseStep("a")),
             proc("p1", AcquireStep("a"), AcquireStep("b"),
                  ReleaseStep("b"), ReleaseStep("a"))],
            {"a": 1, "b": 1})
        issues, cycle = analyze_wait_program(program)
        assert issues == [] and cycle == []


class TestScenarioParity:
    """The seeded deadlock: scenario 4 + rotation + hoarding students."""

    def rotated_hoard_program(self, flag="mauritius"):
        program = compile_flag(get_flag(flag), None, None)
        partition = rotate_color_order(scenario_partition(program, 4))
        return wait_program_from_partition(partition, hoard=True)

    def test_static_flags_rotated_hoard(self):
        issues, cycle = analyze_wait_program(self.rotated_hoard_program())
        assert cycle == [
            "worker0", "blue_marker", "worker1", "yellow_marker",
            "worker2", "green_marker", "worker3", "red_marker", "worker0",
        ]
        assert any(i.code == "deadlock_cycle" for i in issues)

    def test_runtime_cycle_is_identical(self):
        program = self.rotated_hoard_program()
        _, static_cycle = analyze_wait_program(program)
        with pytest.raises(DeadlockError) as info:
            execute_wait_program(program)
        assert info.value.cycle == static_cycle

    @pytest.mark.parametrize("flag", ["mauritius", "canada", "jordan",
                                      "germany", "poland", "japan"])
    def test_parity_across_flags(self, flag):
        program = self.rotated_hoard_program(flag)
        _, static_cycle = analyze_wait_program(program)
        assert static_cycle, f"{flag} rotated-hoard should deadlock"
        with pytest.raises(DeadlockError) as info:
            execute_wait_program(program)
        assert info.value.cycle == static_cycle

    @pytest.mark.parametrize("flag", ["france", "italy"])
    def test_single_color_slices_cannot_deadlock(self, flag):
        # Vertical tricolors give each slice one color: no worker ever
        # holds one implement while wanting another, even hoarding.
        program = self.rotated_hoard_program(flag)
        issues, cycle = analyze_wait_program(program)
        assert cycle == [] and issues == []
        execute_wait_program(program)

    def test_unrotated_hoard_pipelines_fine(self):
        # Identical color orders = consistent lock order = no cycle;
        # the analyzer must not cry wolf and the engine agrees.
        program = compile_flag(get_flag("mauritius"), None, None)
        partition = scenario_partition(program, 4)
        wp = wait_program_from_partition(partition, hoard=True)
        issues, cycle = analyze_wait_program(wp)
        assert cycle == [] and issues == []
        execute_wait_program(wp)

    def test_release_per_stroke_never_deadlocks(self):
        program = compile_flag(get_flag("mauritius"), None, None)
        partition = rotate_color_order(scenario_partition(program, 4))
        wp = wait_program_from_partition(
            partition, policy=AcquirePolicy.RELEASE_PER_STROKE, hoard=True)
        issues, cycle = analyze_wait_program(wp)
        assert cycle == []
        assert not any(i.severity is Severity.ERROR for i in issues)


class TestSharedCycleFinder:
    """One source of truth: both layers call repro.sim.find_wait_cycle."""

    def test_format_round_trip(self):
        cycle = ["a", "r1", "b", "r2", "a"]
        assert format_wait_cycle(cycle) == "a -[r1]-> b -[r2]-> a"
        assert format_wait_cycle([]) == ""

    def test_find_wait_cycle_deterministic(self):
        edges = {"b": [("r", "a")], "a": [("s", "b")]}
        assert find_wait_cycle(edges) == find_wait_cycle(dict(edges))
        assert find_wait_cycle(edges) == ["a", "s", "b", "r", "a"]

    def test_acyclic_returns_empty(self):
        assert find_wait_cycle({"a": [("r", "b")]}) == []
