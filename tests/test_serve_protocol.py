"""Tests for repro.serve.protocol — schemas, codec, error mapping."""

import json

import pytest

from repro.schedule import AcquirePolicy
from repro.agents.student import FillStyle
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    RunRequest,
    SweepRequest,
    dumps,
    error_body,
    parse_body,
)
from repro.sweep import ACTIVITY, SweepSpec
from repro.sweep.executor import _make_tasks, cell_address


class TestParseBody:
    def test_valid_object(self):
        assert parse_body(b'{"flag": "poland"}') == {"flag": "poland"}

    def test_malformed_json_is_400_bad_json(self):
        with pytest.raises(ProtocolError) as err:
            parse_body(b"{nope")
        assert err.value.status == 400
        assert err.value.code == "bad_json"

    def test_non_object_top_level_rejected(self):
        with pytest.raises(ProtocolError) as err:
            parse_body(b"[1, 2]")
        assert err.value.status == 400
        assert err.value.code == "bad_request"

    def test_wrong_protocol_version_rejected(self):
        with pytest.raises(ProtocolError) as err:
            parse_body(b'{"protocol": 99}')
        assert err.value.code == "unsupported_protocol"

    def test_current_protocol_version_accepted(self):
        body = parse_body(dumps({"protocol": PROTOCOL_VERSION}))
        assert body["protocol"] == PROTOCOL_VERSION

    def test_dumps_is_canonical(self):
        assert dumps({"b": 1, "a": 2}) == b'{"a":2,"b":1}'


class TestRunRequest:
    def test_defaults_mirror_sweep_spec(self):
        req = RunRequest.from_body({"flag": "mauritius"})
        assert req.scenario == 3
        assert req.team_size == 4
        assert req.policy is AcquirePolicy.HOLD_COLOR_RUN
        assert req.style is FillStyle.SCRIBBLE
        assert (req.seed, req.copies, req.observe) == (0, 1, False)

    def test_activity_scenario_accepted_by_name(self):
        req = RunRequest.from_body({"flag": "mauritius",
                                    "scenario": "activity"})
        assert req.scenario == ACTIVITY

    @pytest.mark.parametrize("body,code", [
        ({}, "bad_field"),                                 # flag missing
        ({"flag": ""}, "bad_field"),
        ({"flag": 7}, "bad_field"),
        ({"flag": "m", "scenario": 9}, "bad_field"),
        ({"flag": "m", "scenario": 2.5}, "bad_field"),
        ({"flag": "m", "seed": "zero"}, "bad_field"),
        ({"flag": "m", "team_size": 0}, "bad_field"),
        ({"flag": "m", "copies": -1}, "bad_field"),
        ({"flag": "m", "policy": "steal"}, "bad_field"),
        ({"flag": "m", "style": "crosshatch"}, "bad_field"),
        ({"flag": "m", "rows": 0}, "bad_field"),
        ({"flag": "m", "observe": "yes"}, "bad_field"),
        ({"flag": "m", "timeout_s": -1}, "bad_field"),
        ({"flag": "m", "timeout_s": True}, "bad_field"),
        ({"flag": "m", "bogus": 1}, "unknown_field"),
    ])
    def test_invalid_bodies_are_400(self, body, code):
        with pytest.raises(ProtocolError) as err:
            RunRequest.from_body(body)
        assert err.value.status == 400
        assert err.value.code == code

    def test_task_matches_executor_layout(self):
        """/run is pinned to the sweep executor's own task dicts."""
        req = RunRequest.from_body({"flag": "poland", "scenario": 4,
                                    "seed": 9, "team_size": 3})
        spec = SweepSpec(flags=("poland",), scenarios=(4,),
                         team_sizes=(3,), n_trials=1, seed=9)
        [cell] = spec.cells()
        [task] = _make_tasks(cell, spec, False)
        assert req.task() == task

    def test_address_matches_cell_address(self):
        """/run cache entries interoperate with sweep cache entries."""
        req = RunRequest.from_body({"flag": "poland", "seed": 5,
                                    "observe": True})
        spec = SweepSpec(flags=("poland",), scenarios=(3,),
                         n_trials=1, seed=5)
        [cell] = spec.cells()
        assert req.address() == cell_address(cell, spec, observe=True)

    def test_task_is_json_safe(self):
        task = RunRequest.from_body({"flag": "mauritius"}).task()
        assert json.loads(json.dumps(task)) == task


class TestSweepRequest:
    def test_defaults(self):
        req = SweepRequest.from_body({})
        assert req.spec.flags == ("mauritius",)
        assert req.spec.scenarios == (3,)
        assert req.spec.n_trials == 1

    def test_full_grid(self):
        req = SweepRequest.from_body({
            "flags": ["poland", "mauritius"],
            "scenarios": [3, "activity"],
            "team_sizes": [2, 4],
            "policies": ["release_per_stroke"],
            "styles": ["minimal"],
            "copies": [2],
            "n_trials": 3,
            "seed": 7,
        })
        assert req.spec.n_cells == 8
        assert req.spec.scenarios == (3, ACTIVITY)
        assert req.spec.policies == (AcquirePolicy.RELEASE_PER_STROKE,)

    @pytest.mark.parametrize("body,code", [
        ({"flags": []}, "bad_field"),
        ({"flags": "mauritius"}, "bad_field"),     # list, not scalar
        ({"flags": [3]}, "bad_field"),
        ({"scenarios": [7]}, "bad_field"),
        ({"team_sizes": [0]}, "bad_field"),
        ({"n_trials": 0}, "bad_field"),
        ({"workers": 4}, "unknown_field"),         # server-side knob
    ])
    def test_invalid_bodies_are_400(self, body, code):
        with pytest.raises(ProtocolError) as err:
            SweepRequest.from_body(body)
        assert err.value.status == 400
        assert err.value.code == code


class TestErrorBody:
    def test_structured_shape(self):
        body = error_body("flag_not_found", "no such flag")
        assert body["protocol"] == PROTOCOL_VERSION
        assert body["error"]["code"] == "flag_not_found"
        assert "no such flag" in body["error"]["message"]
