"""Tests for declarative fault plans and the seeded plan sampler."""

import numpy as np
import pytest

from repro.faults import (
    FaultError,
    FaultKind,
    FaultPlan,
    ImplementFailure,
    LateArrival,
    StudentDropout,
    TransientStall,
    sample_plan,
)
from repro.grid.palette import Color


class TestFaultValidation:
    def test_negative_dropout_time_rejected(self):
        with pytest.raises(FaultError):
            StudentDropout(at=-1.0, worker=0)

    def test_negative_worker_rejected(self):
        with pytest.raises(FaultError):
            StudentDropout(at=1.0, worker=-1)

    def test_blank_implement_failure_rejected(self):
        with pytest.raises(FaultError):
            ImplementFailure(at=1.0, color=Color.BLANK)

    def test_non_color_implement_failure_rejected(self):
        with pytest.raises(FaultError):
            ImplementFailure(at=1.0, color="red")

    def test_zero_stall_duration_rejected(self):
        with pytest.raises(FaultError):
            TransientStall(at=1.0, worker=0, duration=0.0)

    def test_zero_arrival_delay_rejected(self):
        with pytest.raises(FaultError):
            LateArrival(worker=0, delay=0.0)


class TestFaultPlan:
    def test_empty_plan(self):
        plan = FaultPlan()
        assert plan.is_empty
        assert plan.describe() == "(no faults)"
        assert plan.max_worker() == -1

    def test_duplicate_dropout_rejected(self):
        with pytest.raises(FaultError, match="drops out more than once"):
            FaultPlan.of([StudentDropout(at=1.0, worker=0),
                          StudentDropout(at=2.0, worker=0)])

    def test_duplicate_late_arrival_rejected(self):
        with pytest.raises(FaultError, match="arrives late more than once"):
            FaultPlan.of([LateArrival(worker=1, delay=3.0),
                          LateArrival(worker=1, delay=5.0)])

    def test_unknown_entry_rejected(self):
        with pytest.raises(FaultError, match="unknown fault entry"):
            FaultPlan.of(["not a fault"])

    def test_counts_and_kinds(self):
        plan = FaultPlan.of([
            StudentDropout(at=10.0, worker=0),
            ImplementFailure(at=5.0, color=Color.RED),
            TransientStall(at=2.0, worker=1, duration=4.0),
            LateArrival(worker=2, delay=6.0),
        ])
        assert plan.count(FaultKind.STUDENT_DROPOUT) == 1
        assert plan.count(FaultKind.IMPLEMENT_FAILURE) == 1
        assert plan.max_worker() == 2
        assert plan.colors() == [Color.RED]
        assert len(plan.describe().splitlines()) == 4

    def test_plan_is_immutable(self):
        plan = FaultPlan.of([StudentDropout(at=1.0, worker=0)])
        with pytest.raises(AttributeError):
            plan.faults = ()


class TestSamplePlan:
    def test_same_seed_same_plan(self):
        kwargs = dict(n_workers=4, colors=[Color.RED, Color.BLUE],
                      horizon=100.0, n_dropouts=1, n_implement_failures=1,
                      n_stalls=2, n_late=1)
        a = sample_plan(np.random.default_rng(3), **kwargs)
        b = sample_plan(np.random.default_rng(3), **kwargs)
        assert a == b

    def test_dropouts_clamped_to_leave_a_survivor(self):
        plan = sample_plan(np.random.default_rng(0), n_workers=2,
                           colors=[Color.RED], horizon=50.0, n_dropouts=5)
        assert plan.count(FaultKind.STUDENT_DROPOUT) == 1

    def test_fault_times_within_horizon(self):
        plan = sample_plan(np.random.default_rng(1), n_workers=4,
                           colors=[Color.RED], horizon=200.0,
                           n_dropouts=2, n_implement_failures=2, n_stalls=3)
        for f in plan.faults:
            assert 0.0 <= f.at <= 200.0

    def test_no_workers_rejected(self):
        with pytest.raises(FaultError):
            sample_plan(np.random.default_rng(0), n_workers=0,
                        colors=[Color.RED], horizon=10.0)

    def test_implement_failure_without_colors_rejected(self):
        with pytest.raises(FaultError):
            sample_plan(np.random.default_rng(0), n_workers=2,
                        colors=[], horizon=10.0, n_implement_failures=1)

    def test_bad_horizon_rejected(self):
        with pytest.raises(FaultError):
            sample_plan(np.random.default_rng(0), n_workers=2,
                        colors=[Color.RED], horizon=0.0)
