"""Tests for tools/simlint.py — the determinism & async-safety linter.

Rule checks run directly on parsed snippets (scoping is tested through
``Rule.applies`` separately, since the path scopes reference real repo
layout).  The CLI and the repo-wide clean guarantee run as subprocesses
exactly like the CI lint job.
"""

import ast
import os
import pathlib
import subprocess
import sys

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "tools"))

import simlint  # noqa: E402


def scoped_tree(source):
    tree = ast.parse(source)
    return tree, list(simlint.iter_scoped(tree))


def run_rule(rule, source):
    tree, scoped = scoped_tree(source)
    return rule.check(pathlib.Path("snippet.py"), tree, scoped)


def run_cli(*argv):
    return subprocess.run([sys.executable, "tools/simlint.py", *argv],
                          cwd=REPO, env=dict(os.environ),
                          capture_output=True, text=True)


class TestScopedWalk:
    def test_symbols_are_dotted(self):
        _, scoped = scoped_tree(
            "class C:\n"
            "    def m(self):\n"
            "        x = 1\n")
        symbols = {s for _, s, _ in scoped}
        assert "C" in symbols and "C.m" in symbols

    def test_async_flag_stops_at_sync_helper(self):
        # A sync def nested in a coroutine runs off the await chain:
        # its body must not count as "inside async".
        _, scoped = scoped_tree(
            "async def outer():\n"
            "    def helper():\n"
            "        y = 2\n"
            "    z = 3\n")
        flags = {}
        for node, symbol, in_async in scoped:
            if isinstance(node, ast.Assign):
                flags[symbol] = in_async
        assert flags == {"outer.helper": False, "outer": True}

    def test_dotted_name(self):
        expr = ast.parse("a.b.c").body[0].value
        assert simlint.dotted_name(expr) == "a.b.c"
        call = ast.parse("f()[0]").body[0].value
        assert simlint.dotted_name(call) is None


class TestRuleScoping:
    def test_det_rules_scope_to_sim_paths(self):
        rule = simlint.WallClockRule()
        assert rule.applies("src/repro/sim/engine.py")
        assert rule.applies("src/repro/sweep/executor.py")
        assert not rule.applies("src/repro/serve/handlers.py")
        assert not rule.applies("tools/simlint.py")

    def test_det003_excludes_the_seeding_module(self):
        rule = simlint.UnseededRngRule()
        assert rule.applies("src/repro/sim/engine.py")
        assert rule.applies("src/repro/serve/handlers.py")
        assert not rule.applies("src/repro/sweep/seeding.py")

    def test_hygiene_rules_apply_everywhere(self):
        for rule in (simlint.MutableDefaultRule(),
                     simlint.BareExceptRule()):
            assert rule.applies("tools/anything.py")
            assert rule.applies("src/repro/grid/canvas.py")

    def test_lock_rules_scope_to_threaded_paths(self):
        for rule in (simlint.MixedGuardRule(),
                     simlint.ThreadLifecycleRule()):
            assert rule.applies("src/repro/stream/bus.py")
            assert rule.applies("src/repro/store/core.py")
            assert rule.applies("src/repro/fabric/coordinator.py")
            assert rule.applies("src/repro/serve/server.py")
            assert not rule.applies("src/repro/sim/engine.py")
            assert not rule.applies("tools/simlint.py")

    def test_det001_covers_benchmarks(self):
        rule = simlint.WallClockRule()
        assert rule.applies("benchmarks/test_stream_fanout.py")


class TestDeterminismRules:
    @pytest.mark.parametrize("call", ["time.time()", "time.perf_counter()",
                                      "datetime.datetime.now()",
                                      "datetime.date.today()"])
    def test_det001_flags_wall_clock(self, call):
        out = run_rule(simlint.WallClockRule(), f"t = {call}\n")
        assert [v[2] for v in out] == ["DET001"]

    def test_det001_ignores_sim_clock(self):
        assert run_rule(simlint.WallClockRule(), "t = sim.now\n") == []

    def test_det002_flags_global_streams(self):
        out = run_rule(simlint.GlobalRandomRule(),
                       "a = random.random()\n"
                       "b = np.random.shuffle(x)\n")
        assert [v[2] for v in out] == ["DET002", "DET002"]

    def test_det002_allows_generator_construction(self):
        out = run_rule(simlint.GlobalRandomRule(),
                       "rng = np.random.default_rng(7)\n"
                       "ss = np.random.SeedSequence(3)\n"
                       "x = rng.random()\n")
        assert out == []

    def test_det003_flags_unseeded_construction(self):
        out = run_rule(simlint.UnseededRngRule(),
                       "a = np.random.default_rng()\n"
                       "b = np.random.default_rng(None)\n"
                       "c = random.Random()\n")
        assert [v[2] for v in out] == ["DET003"] * 3

    def test_det003_allows_seeded_construction(self):
        out = run_rule(simlint.UnseededRngRule(),
                       "a = np.random.default_rng(42)\n"
                       "b = np.random.default_rng(seed)\n"
                       "c = random.Random(7)\n")
        assert out == []


class TestAsyncRules:
    def test_async001_flags_blocking_sleep(self):
        out = run_rule(simlint.AsyncSleepRule(),
                       "async def h():\n    time.sleep(1)\n")
        assert [v[2] for v in out] == ["ASYNC001"]
        assert "asyncio.sleep" in out[0][4]

    def test_async001_ignores_sync_and_awaited(self):
        assert run_rule(simlint.AsyncSleepRule(),
                        "def h():\n    time.sleep(1)\n") == []
        assert run_rule(simlint.AsyncSleepRule(),
                        "async def h():\n"
                        "    await asyncio.sleep(1)\n") == []

    def test_async002_flags_sync_io(self):
        out = run_rule(simlint.AsyncFileIoRule(),
                       "async def h(p):\n"
                       "    with open(p) as f:\n"
                       "        pass\n"
                       "    t = p.read_text()\n")
        assert [v[2] for v in out] == ["ASYNC002", "ASYNC002"]

    def test_async002_sync_helper_inside_coroutine_is_fine(self):
        out = run_rule(simlint.AsyncFileIoRule(),
                       "async def h(p):\n"
                       "    def load():\n"
                       "        return p.read_text()\n"
                       "    return load\n")
        assert out == []

    def test_async003_flags_awaited_queue_put(self):
        out = run_rule(simlint.AsyncQueuePutRule(),
                       "async def h(q, item):\n"
                       "    await q.put(item)\n")
        assert [v[2] for v in out] == ["ASYNC003"]
        assert "drop-oldest" in out[0][4]

    def test_async003_ignores_sync_puts_and_other_awaits(self):
        # put_nowait on a bounded deque path and unrelated awaits are
        # exactly the sanctioned alternatives.
        assert run_rule(simlint.AsyncQueuePutRule(),
                        "def h(q, item):\n"
                        "    q.put(item)\n") == []
        assert run_rule(simlint.AsyncQueuePutRule(),
                        "async def h(q, item):\n"
                        "    q.put_nowait(item)\n"
                        "    await q.get()\n") == []

    def test_async003_scopes_to_serve_and_stream(self):
        rule = simlint.AsyncQueuePutRule()
        assert rule.applies("src/repro/serve/handlers.py")
        assert rule.applies("src/repro/stream/bus.py")
        assert not rule.applies("src/repro/sim/engine.py")


class TestHygieneRules:
    def test_hyg001_flags_mutable_defaults(self):
        out = run_rule(simlint.MutableDefaultRule(),
                       "def f(a=[], b={}, c=set(), *, d=[1]):\n    pass\n")
        assert [v[2] for v in out] == ["HYG001"] * 4

    def test_hyg001_allows_none_and_tuples(self):
        assert run_rule(simlint.MutableDefaultRule(),
                        "def f(a=None, b=(), c=0):\n    pass\n") == []

    def test_hyg002_flags_bare_except(self):
        out = run_rule(simlint.BareExceptRule(),
                       "try:\n    x()\nexcept:\n    pass\n")
        assert [v[2] for v in out] == ["HYG002"]

    def test_hyg002_allows_typed_except(self):
        assert run_rule(simlint.BareExceptRule(),
                        "try:\n    x()\nexcept ValueError:\n"
                        "    pass\n") == []


class TestLockRules:
    def test_lock001_flags_mixed_guard(self):
        violations = run_rule(
            simlint.MixedGuardRule(),
            "import threading\n"
            "class C:\n"
            "    def locked_bump(self):\n"
            "        with self._lock:\n"
            "            self._n += 1\n"
            "    def bare_bump(self):\n"
            "        self._n += 1\n")
        assert [(v[2], v[3]) for v in violations] == [
            ("LOCK001", "C._n")]

    def test_lock001_exempts_init_and_locked_methods(self):
        violations = run_rule(
            simlint.MixedGuardRule(),
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._n = 0\n"
            "    def bump(self):\n"
            "        with self._lock:\n"
            "            self._n += 1\n"
            "    def _bump_locked(self):\n"
            "        self._n += 1\n")
        assert violations == []

    def test_lock001_borrowed_lock_counts_as_locked(self):
        # `with self._owner._lock:` — a borrowed lock still guards.
        violations = run_rule(
            simlint.MixedGuardRule(),
            "class C:\n"
            "    def a(self):\n"
            "        with self._owner._lock:\n"
            "            self._n = 1\n"
            "    def b(self):\n"
            "        self._n = 2\n")
        assert [v[3] for v in violations] == ["C._n"]

    def test_lock001_nested_defs_are_out_of_scope(self):
        # The linter twin skips closure bodies entirely (they run
        # later, with unknown locks); the full-depth analysis in
        # repro.races.lockset is the layer that flags this shape.
        violations = run_rule(
            simlint.MixedGuardRule(),
            "class C:\n"
            "    def a(self):\n"
            "        with self._lock:\n"
            "            self._n = 1\n"
            "    def b(self):\n"
            "        with self._lock:\n"
            "            def later():\n"
            "                self._n = 2\n"
            "            return later\n")
        assert violations == []

    def test_lock001_consistent_discipline_is_clean(self):
        violations = run_rule(
            simlint.MixedGuardRule(),
            "class C:\n"
            "    def a(self):\n"
            "        with self._lock:\n"
            "            self._n = 1\n"
            "    def b(self):\n"
            "        with self._lock:\n"
            "            self._n = 2\n"
            "    def c(self):\n"
            "        self._m = 3\n"
            "    def d(self):\n"
            "        self._m = 4\n")
        assert violations == []

    def test_lock002_flags_unmanaged_thread(self):
        violations = run_rule(
            simlint.ThreadLifecycleRule(),
            "import threading\n"
            "def spawn():\n"
            "    t = threading.Thread(target=work)\n"
            "    t.start()\n")
        assert [v[2] for v in violations] == ["LOCK002"]

    def test_lock002_daemon_or_join_is_fine(self):
        violations = run_rule(
            simlint.ThreadLifecycleRule(),
            "import threading\n"
            "def daemonized():\n"
            "    threading.Thread(target=work, daemon=True).start()\n"
            "def joined():\n"
            "    t = threading.Thread(target=work)\n"
            "    t.start()\n"
            "    t.join()\n")
        assert violations == []

    def test_lock002_join_elsewhere_in_module_counts(self):
        # The join lives in another function (start/stop pairs): the
        # handle name is what ties them together.
        violations = run_rule(
            simlint.ThreadLifecycleRule(),
            "import threading\n"
            "class Server:\n"
            "    def start(self):\n"
            "        self._thread = threading.Thread(target=self.run)\n"
            "        self._thread.start()\n"
            "    def stop(self):\n"
            "        self._thread.join()\n")
        assert violations == []


class TestAllowlist:
    def test_load_parses_entries(self, tmp_path):
        f = tmp_path / "allow.txt"
        f.write_text("# comment\n\n"
                     "DET001 src/x.py::f -- because reasons\n")
        assert simlint.load_allowlist(f) == {
            "DET001 src/x.py::f": "because reasons"}

    def test_missing_justification_is_an_error(self, tmp_path):
        f = tmp_path / "allow.txt"
        f.write_text("DET001 src/x.py::f\n")
        with pytest.raises(simlint.AllowlistError, match="justification"):
            simlint.load_allowlist(f)

    def test_apply_drops_matches_and_reports_stale(self):
        violations = [
            (pathlib.Path("src/x.py"), 3, "DET001", "f", "msg"),
            (pathlib.Path("src/y.py"), 4, "HYG002", "g", "msg"),
        ]
        allow = {"DET001 src/x.py::f": "fine",
                 "DET003 src/gone.py::h": "stale"}
        kept, unused = simlint.apply_allowlist(violations, allow)
        assert [v[2] for v in kept] == ["HYG002"]
        assert unused == ["DET003 src/gone.py::h"]


class TestCli:
    def test_repo_is_clean(self):
        # The satellite guarantee: the shipped tree (benchmarks
        # included) lints clean with the shipped allowlist and no
        # stale entries — exactly what the CI lint job runs.
        proc = run_cli("--strict-unused", "src", "tools", "benchmarks")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "clean" in proc.stdout

    def test_violation_found_and_allowlisted(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "sim" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\n\n"
                       "def tick():\n"
                       "    return time.time()\n")
        proc = subprocess.run(
            [sys.executable, str(REPO / "tools" / "simlint.py"),
             "--allowlist", str(tmp_path / "none.txt"), "src"],
            cwd=tmp_path, capture_output=True, text=True)
        assert proc.returncode == 1
        assert "DET001" in proc.stdout and "[tick]" in proc.stdout

        allow = tmp_path / "allow.txt"
        allow.write_text("DET001 src/repro/sim/bad.py::tick -- test\n")
        proc = subprocess.run(
            [sys.executable, str(REPO / "tools" / "simlint.py"),
             "--allowlist", str(allow), "src"],
            cwd=tmp_path, capture_output=True, text=True)
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_stale_allowlist_entry_warns_but_passes(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        allow = tmp_path / "allow.txt"
        allow.write_text("DET001 nowhere.py::f -- obsolete\n")
        proc = subprocess.run(
            [sys.executable, str(REPO / "tools" / "simlint.py"),
             "--allowlist", str(allow), str(clean)],
            cwd=tmp_path, capture_output=True, text=True)
        assert proc.returncode == 0
        assert "unused allowlist entry" in proc.stderr

    def test_strict_unused_makes_stale_entries_fatal(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        allow = tmp_path / "allow.txt"
        allow.write_text("DET001 nowhere.py::f -- obsolete\n")
        proc = subprocess.run(
            [sys.executable, str(REPO / "tools" / "simlint.py"),
             "--strict-unused", "--allowlist", str(allow), str(clean)],
            cwd=tmp_path, capture_output=True, text=True)
        assert proc.returncode == 1
        assert "error: unused allowlist entry" in proc.stderr

    def test_malformed_allowlist_is_usage_error(self, tmp_path):
        allow = tmp_path / "allow.txt"
        allow.write_text("DET001 x.py::f\n")
        proc = run_cli("--allowlist", str(allow), "src")
        assert proc.returncode == 2

    def test_no_paths_is_usage_error(self):
        assert run_cli().returncode == 2
