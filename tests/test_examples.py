"""Smoke tests: every example script runs clean end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script), "7"],
        capture_output=True, text=True, timeout=180,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), f"{script.name} produced no output"


def test_expected_examples_present():
    names = {p.name for p in EXAMPLES}
    assert {
        "quickstart.py",
        "classroom_session.py",
        "webster_flags.py",
        "dependency_analysis.py",
        "gpu_paintball.py",
        "assessment_pipeline.py",
        "animations_and_merging.py",
    } <= names


class TestExampleContent:
    """Each example demonstrates its promised phenomenon in its output."""

    def run(self, name):
        result = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / name), "7"],
            capture_output=True, text=True, timeout=180,
        )
        assert result.returncode == 0, result.stderr[-2000:]
        return result.stdout

    def test_quickstart_shows_whiteboard_and_speedups(self):
        out = self.run("quickstart.py")
        assert "whiteboard" in out.lower()
        assert "scenario4" in out
        assert "x" in out  # speedup values

    def test_dependency_analysis_shows_fig9(self):
        out = self.run("dependency_analysis.py")
        assert "red_triangle -> white_star" in out
        assert "at least mostly correct" in out

    def test_webster_shows_both_flags(self):
        out = self.run("webster_flags.py")
        assert "france" in out
        assert "canada" in out
        assert "speedup" in out

    def test_gpu_paintball_sweeps(self):
        out = self.run("gpu_paintball.py")
        assert "P= 96" in out or "P=96" in out

    def test_assessment_reproduces_tables(self):
        out = self.run("assessment_pipeline.py")
        assert out.count("NONE - exact") == 3
