"""Tests for engine-level interrupts, resource failure, watchdogs, and
the deadlock diagnostics."""

import pytest

from repro.sim.engine import (
    Acquire,
    DeadlockError,
    Interrupt,
    KillInterrupt,
    Release,
    ResourceFailure,
    SimulationError,
    Simulator,
    StallInterrupt,
    Timeout,
    WaitAll,
    WatchdogExceeded,
)
from repro.sim.events import EventKind


def sleeper(sim, name, delay):
    yield Timeout(delay)
    sim.log(EventKind.NOTE, agent=name, msg="woke")


def holder(sim, res, work):
    yield Acquire(res)
    yield Timeout(work)
    yield Release(res)


class TestInterrupts:
    def test_interrupt_during_timeout(self):
        sim = Simulator()
        seen = []

        def proc():
            try:
                yield Timeout(100.0)
            except StallInterrupt as s:
                seen.append((sim.now, s.duration))
                yield Timeout(s.duration)

        sim.add_process("p", proc())
        sim.schedule_interrupt(10.0, "p", StallInterrupt(5.0))
        assert sim.run() == 15.0
        assert seen == [(10.0, 5.0)]

    def test_interrupt_while_parked_in_resource_queue(self):
        sim = Simulator()
        res = sim.resource("marker")
        seen = []

        def waiter():
            try:
                yield Acquire(res)
            except Interrupt as exc:
                seen.append(exc.reason)

        sim.add_process("hog", holder(sim, res, 50.0))
        sim.add_process("w", waiter())
        sim.schedule_interrupt(10.0, "w", Interrupt("poke"))
        sim.run()
        assert seen == ["poke"]
        # The interrupted waiter left the queue: no grant happened for it.
        assert not res.held_by("w")

    def test_interrupt_while_blocked_on_waitall(self):
        sim = Simulator()
        seen = []

        def joiner():
            try:
                yield WaitAll(("slow",))
            except Interrupt:
                seen.append(sim.now)

        sim.add_process("slow", sleeper(sim, "slow", 100.0))
        sim.add_process("j", joiner())
        sim.schedule_interrupt(3.0, "j", Interrupt("go"))
        sim.run()
        assert seen == [3.0]

    def test_kill_releases_held_resources(self):
        sim = Simulator()
        res = sim.resource("marker")
        sim.add_process("hog", holder(sim, res, 100.0))
        sim.add_process("next", holder(sim, res, 1.0))
        sim.schedule_interrupt(5.0, "hog", KillInterrupt("dropout"))
        makespan = sim.run()
        assert sim.killed == {"hog": 5.0}
        # The kill released the marker; the queued process got it at t=5.
        assert makespan == 6.0
        kinds = [e.kind for e in sim.events]
        assert EventKind.PROCESS_KILLED in kinds

    def test_interrupt_finished_process_is_noop(self):
        sim = Simulator()
        sim.add_process("a", sleeper(sim, "a", 1.0))
        sim.run()
        assert sim.interrupt("a", KillInterrupt("late")) is False

    def test_interrupt_unknown_process_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError, match="unknown process"):
            sim.interrupt("ghost")

    def test_uncaught_interrupt_kills_the_process(self):
        sim = Simulator()
        sim.add_process("a", sleeper(sim, "a", 100.0))
        sim.schedule_interrupt(2.0, "a", KillInterrupt("gone"))
        sim.run()
        assert sim.is_finished("a")
        assert "a" in sim.killed

    def test_stale_wakeup_after_interrupt_is_ignored(self):
        sim = Simulator()
        log = []

        def proc():
            try:
                yield Timeout(10.0)
                log.append("original wake")
            except StallInterrupt:
                yield Timeout(1.0)
                log.append("resumed")

        sim.add_process("p", proc())
        sim.schedule_interrupt(5.0, "p", StallInterrupt(1.0))
        sim.run()
        # The pre-interrupt wakeup at t=10 must not re-enter the process.
        assert log == ["resumed"]


class TestResourceFailure:
    def test_permanent_failure_interrupts_queued_waiters(self):
        sim = Simulator()
        res = sim.resource("marker")
        outcomes = []

        def waiter(name):
            try:
                yield Acquire(res)
                outcomes.append((name, "got it"))
            except ResourceFailure as f:
                outcomes.append((name, f.resource))

        sim.add_process("hog", holder(sim, res, 50.0))
        sim.add_process("w1", waiter("w1"))
        sim.add_process("w2", waiter("w2"))
        sim.schedule_call(10.0, sim.fail_resource, res)
        sim.run()
        assert ("w1", "marker") in outcomes
        assert ("w2", "marker") in outcomes

    def test_acquire_after_permanent_failure_fails_immediately(self):
        sim = Simulator()
        res = sim.resource("marker")
        outcomes = []

        def late_waiter():
            yield Timeout(20.0)
            try:
                yield Acquire(res)
            except ResourceFailure:
                outcomes.append(sim.now)

        sim.add_process("late", late_waiter())
        sim.schedule_call(10.0, sim.fail_resource, res)
        sim.run()
        assert outcomes == [20.0]

    def test_holder_unaffected_until_release(self):
        sim = Simulator()
        res = sim.resource("marker")
        sim.add_process("hog", holder(sim, res, 50.0))
        sim.schedule_call(10.0, sim.fail_resource, res)
        assert sim.run() == 50.0

    def test_repairable_failure_keeps_waiters_queued(self):
        sim = Simulator()
        res = sim.resource("marker")
        got = []

        def waiter():
            yield Timeout(5.0)
            yield Acquire(res)
            got.append(sim.now)
            yield Release(res)

        sim.add_process("w", waiter())
        sim.schedule_call(1.0, sim.fail_resource, res, 30.0)
        sim.run()
        # The waiter queued at t=5 and was granted at repair time t=30.
        assert got == [30.0]
        kinds = [e.kind for e in sim.events]
        assert EventKind.RESOURCE_FAILED in kinds
        assert EventKind.RESOURCE_REPAIRED in kinds

    def test_double_failure_rejected(self):
        sim = Simulator()
        res = sim.resource("marker")
        res.fail()
        with pytest.raises(SimulationError):
            res.fail()


class TestWatchdog:
    def test_max_time_budget(self):
        sim = Simulator()
        sim.add_process("a", sleeper(sim, "a", 100.0))
        with pytest.raises(WatchdogExceeded) as ei:
            sim.run(max_time=10.0)
        assert ei.value.budget == "time"
        assert ei.value.limit == 10.0

    def test_max_events_budget(self):
        sim = Simulator()

        def chatty():
            for _ in range(1000):
                yield Timeout(1.0)

        sim.add_process("a", chatty())
        with pytest.raises(WatchdogExceeded) as ei:
            sim.run(max_events=50)
        assert ei.value.budget == "events"

    def test_budgets_not_hit_run_normally(self):
        sim = Simulator()
        sim.add_process("a", sleeper(sim, "a", 5.0))
        assert sim.run(max_events=1000, max_time=1000.0) == 5.0


class TestUntilHorizon:
    def test_event_past_horizon_not_dropped(self):
        sim = Simulator()
        sim.add_process("a", sleeper(sim, "a", 10.0))
        assert sim.run(until=5.0) == 5.0
        # The satellite fix: the popped-but-future wakeup is pushed back,
        # so resuming the run still delivers it.
        assert sim.run(until=None) == 10.0
        assert sim.is_finished("a")


class TestDeadlockDiagnostics:
    def test_cycle_is_named_in_the_error(self):
        sim = Simulator()
        blue = sim.resource("blue_marker")
        red = sim.resource("red_marker")

        def crossed(mine, theirs):
            yield Acquire(mine)
            yield Timeout(1.0)
            yield Acquire(theirs)

        sim.add_process("P1", crossed(blue, red))
        sim.add_process("P2", crossed(red, blue))
        with pytest.raises(DeadlockError) as ei:
            sim.run()
        msg = str(ei.value)
        assert "deadlock" in msg
        assert "wait-for cycle" in msg
        assert "P1" in msg and "P2" in msg
        assert "blue_marker" in msg or "red_marker" in msg
        # The structured cycle alternates process, resource, process, ...
        assert ei.value.cycle[0] == ei.value.cycle[-1]
        assert set(ei.value.blocked) == {"P1", "P2"}

    def test_waitall_cycle_detected(self):
        sim = Simulator()

        def wait_on(other):
            yield WaitAll((other,))

        sim.add_process("a", wait_on("b"))
        sim.add_process("b", wait_on("a"))
        with pytest.raises(DeadlockError) as ei:
            sim.run()
        assert "wait-for cycle" in str(ei.value)


class TestWaitAllValidation:
    def test_self_wait_rejected(self):
        sim = Simulator()

        def selfish():
            yield WaitAll(("me",))

        sim.add_process("me", selfish())
        with pytest.raises(SimulationError, match="cannot wait on itself"):
            sim.run()

    def test_duplicate_names_rejected(self):
        sim = Simulator()

        def doubled():
            yield WaitAll(("a", "a"))

        sim.add_process("a", sleeper(sim, "a", 1.0))
        sim.add_process("j", doubled())
        with pytest.raises(SimulationError, match="duplicate names"):
            sim.run()


class TestScheduledCalls:
    def test_call_runs_at_its_time(self):
        sim = Simulator()
        fired = []
        sim.add_process("a", sleeper(sim, "a", 10.0))
        sim.schedule_call(4.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [4.0]

    def test_past_call_rejected(self):
        sim = Simulator()
        sim.add_process("a", sleeper(sim, "a", 10.0))
        sim.schedule_interrupt(5.0, "a", StallInterrupt(1.0))

        def too_late():
            sim.schedule_call(1.0, lambda: None)

        sim.schedule_call(3.0, too_late)
        with pytest.raises(SimulationError, match="cannot schedule"):
            sim.run()
