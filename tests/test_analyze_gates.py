"""Pre-flight gates: statically-invalid work is refused before dispatch.

Two enforcement points share one analyzer: ``run_sweep`` raises
``SweepError`` before any trial executes, and the serve endpoints
answer 422 ``static_analysis_failed`` before a request takes an
admission slot.  ``POST /analyze`` reports the same findings without
refusing anything.
"""

import pytest

from repro.analyze import check_cell, cell_reports
from repro.analyze.report import Severity
from repro.faults import FaultPlan, StudentDropout
from repro.grid.palette import Color
from repro.faults.plan import ImplementFailure
from repro.serve import PROTOCOL_VERSION, BackgroundServer, ServeConfig
from repro.serve.client import ServeError
from repro.sweep import SweepError, SweepSpec, run_sweep

BAD_WORKER_PLAN = FaultPlan.of([StudentDropout(at=5.0, worker=9)])
BAD_COLOR_PLAN = FaultPlan.of([ImplementFailure(at=3.0, color=Color.BLACK)])


@pytest.fixture(scope="module")
def server():
    with BackgroundServer(ServeConfig(batch_window_s=0.01)) as bg:
        yield bg


class TestCheckCell:
    def cell(self, **overrides):
        spec = SweepSpec(**overrides)
        return next(iter(spec.cells()))

    def test_valid_cell_has_no_issues(self):
        assert check_cell(self.cell()) == []

    def test_undersized_team_flagged(self):
        issues = check_cell(self.cell(scenarios=(3,), team_sizes=(2,)))
        assert [i.code for i in issues] == ["team_too_small"]
        assert issues[0].severity is Severity.ERROR

    def test_bad_fault_plan_flagged(self):
        issues = check_cell(
            self.cell(fault_plans=(("bad", BAD_WORKER_PLAN),)))
        assert "fault_unknown_worker" in [i.code for i in issues]

    def test_unknown_flag_reported_via_failures(self):
        cell = self.cell()
        cell = type(cell)(**{**cell.__dict__, "flag": "atlantis"})
        failures = []
        reports = cell_reports(cell, failures)
        assert reports == []
        assert [i.code for i in failures] == ["unknown_flag"]
        assert "atlantis" in failures[0].message


class TestSweepGate:
    def test_undersized_team_refused_before_any_trial(self):
        spec = SweepSpec(flags=("mauritius",), scenarios=(3,),
                         team_sizes=(2,))
        with pytest.raises(SweepError) as err:
            run_sweep(spec)
        msg = str(err.value)
        assert "failed static analysis" in msg
        assert "team_too_small" in msg
        assert "needs 4 colorers, team has 2" in msg

    def test_bad_fault_target_refused(self):
        spec = SweepSpec(flags=("mauritius",), scenarios=(3,),
                         fault_plans=(("bad", BAD_WORKER_PLAN),))
        with pytest.raises(SweepError) as err:
            run_sweep(spec)
        msg = str(err.value)
        assert "fault_unknown_worker" in msg
        assert "worker 9" in msg

    def test_bad_implement_refused(self):
        spec = SweepSpec(flags=("mauritius",), scenarios=(3,),
                         fault_plans=(("bad", BAD_COLOR_PLAN),))
        with pytest.raises(SweepError) as err:
            run_sweep(spec)
        assert "fault_unknown_implement" in str(err.value)

    def test_valid_spec_still_runs(self):
        result = run_sweep(SweepSpec(flags=("poland",), scenarios=(3,),
                                     n_trials=1))
        assert result.computed_trials == 1 and result.all_correct


class TestServeGate:
    def test_invalid_run_is_422_before_dispatch(self, server):
        with pytest.raises(ServeError) as err:
            server.client().run(flag="mauritius", scenario=3,
                                team_size=2, seed=1)
        assert err.value.status == 422
        assert err.value.code == "static_analysis_failed"
        message = err.value.body["error"]["message"]
        assert "statically invalid" in message
        assert "team_too_small" in message

    def test_invalid_sweep_cell_is_422(self, server):
        with pytest.raises(ServeError) as err:
            server.client().sweep(flags=["mauritius"], scenarios=[3],
                                  team_sizes=[2], seed=1)
        assert err.value.status == 422
        assert err.value.code == "static_analysis_failed"

    def test_valid_run_passes_the_gate(self, server):
        reply = server.client().run(flag="poland", scenario=3, seed=31)
        assert "trial" in reply

    def test_rejection_consumes_no_admission_slot(self, server):
        for _ in range(5):
            with pytest.raises(ServeError):
                server.client().run(flag="mauritius", scenario=3,
                                    team_size=2, seed=1)
        assert server.client().healthz()["queue_depth"] == 0


class TestAnalyzeEndpoint:
    def post(self, server, **fields):
        fields.setdefault("protocol", PROTOCOL_VERSION)
        return server.client()._json("POST", "/analyze", fields)

    def test_valid_config_reports_ok(self, server):
        reply = self.post(server, flag="mauritius", scenario=3)
        assert reply["ok"] is True
        assert reply["failures"] == []
        [report] = reply["reports"]
        assert report["speedup_bound"] == 4.0
        assert report["deadlock_cycle"] == []

    def test_invalid_config_is_200_with_findings(self, server):
        # /analyze never refuses: analysis of a broken config succeeds.
        reply = self.post(server, flag="mauritius", scenario=3,
                          team_size=2)
        assert reply["ok"] is False
        [report] = reply["reports"]
        codes = [i["code"] for i in report["issues"]]
        assert "team_too_small" in codes

    def test_unknown_flag_is_404(self, server):
        with pytest.raises(ServeError) as err:
            self.post(server, flag="atlantis", scenario=3)
        assert err.value.status == 404
