"""Tests for repro.sweep.seeding — the seed-derivation policy."""

import numpy as np
import pytest

from repro.sweep import key_entropy, trial_rngs, trial_seed_sequences


def stream(rng, n=16):
    return rng.random(n).tolist()


class TestCrossBatchIndependence:
    def test_nearby_batches_never_share_streams(self):
        """The regression the policy exists for: with the old ``seed + t``
        derivation, batch seed=0 trial 5 and batch seed=5 trial 0 were the
        SAME generator.  Spawned streams must never collide."""
        batch0 = [stream(rng) for rng in trial_rngs(0, 6)]
        batch5 = [stream(rng) for rng in trial_rngs(5, 6)]
        for i, s0 in enumerate(batch0):
            for j, s5 in enumerate(batch5):
                assert s0 != s5, f"batch 0 trial {i} == batch 5 trial {j}"

    def test_old_derivation_did_collide(self):
        """Documents the bug: the additive scheme aliases across batches."""
        old_b0_t5 = stream(np.random.default_rng(0 + 5))
        old_b5_t0 = stream(np.random.default_rng(5 + 0))
        assert old_b0_t5 == old_b5_t0

    def test_trials_within_batch_distinct(self):
        streams = [stream(rng) for rng in trial_rngs(42, 8)]
        assert len({tuple(s) for s in streams}) == 8


class TestDeterminism:
    def test_same_seed_same_streams(self):
        a = [stream(rng) for rng in trial_rngs(7, 4)]
        b = [stream(rng) for rng in trial_rngs(7, 4)]
        assert a == b

    def test_trial_stream_independent_of_batch_size(self):
        """Trial t only depends on (seed, cell_key, t) — growing the batch
        must not reshuffle earlier trials (cache entries stay valid)."""
        small = [stream(rng) for rng in trial_rngs(7, 2)]
        large = [stream(rng) for rng in trial_rngs(7, 8)]
        assert small == large[:2]

    def test_cell_key_separates_streams(self):
        plain = [stream(rng) for rng in trial_rngs(7, 2)]
        keyed = [stream(rng) for rng in trial_rngs(7, 2, cell_key="cellA")]
        other = [stream(rng) for rng in trial_rngs(7, 2, cell_key="cellB")]
        assert plain != keyed
        assert keyed != other

    def test_key_entropy_stable_and_spread(self):
        assert key_entropy("x") == key_entropy("x")
        assert key_entropy("x") != key_entropy("y")
        assert 0 <= key_entropy("x") < 2 ** 128


class TestValidation:
    def test_negative_trials_raise(self):
        with pytest.raises(ValueError):
            trial_seed_sequences(0, -1)

    def test_zero_trials_ok(self):
        assert trial_seed_sequences(0, 0) == []
