"""Tests for repro.grid.regions, including hypothesis property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid.regions import (
    Band,
    CellSet,
    Disc,
    EmptyRegion,
    FullGrid,
    HalfPlane,
    Polygon,
    Rect,
    Triangle,
    horizontal_stripe,
    iter_cells_rowmajor,
    union_all,
    vertical_stripe,
)

GRID = (8, 12)


class TestPrimitives:
    def test_full_grid_covers_everything(self):
        assert FullGrid().count(*GRID) == 8 * 12

    def test_empty_region_covers_nothing(self):
        assert EmptyRegion().is_empty(*GRID)

    def test_cellset_membership(self):
        r = CellSet(((0, 0), (3, 5)))
        assert r.count(*GRID) == 2
        assert (3, 5) in r.cells(*GRID)

    def test_cellset_clips_out_of_range(self):
        r = CellSet(((0, 0), (100, 100)))
        assert r.count(*GRID) == 1

    def test_rect_half_open_tiling(self):
        top = Rect(0.0, 0.0, 0.5, 1.0)
        bottom = Rect(0.5, 0.0, 1.0, 1.0)
        assert top.count(*GRID) == bottom.count(*GRID) == 48
        assert (top & bottom).is_empty(*GRID)
        assert (top | bottom).count(*GRID) == 96

    def test_rect_degenerate_raises(self):
        with pytest.raises(ValueError, match="degenerate"):
            Rect(0.5, 0.0, 0.2, 1.0)

    def test_disc_centered(self):
        d = Disc(0.5, 0.5, 0.25)
        mask = d.mask(10, 10)
        assert mask[5, 5]
        assert not mask[0, 0]

    def test_disc_requires_positive_radius(self):
        with pytest.raises(ValueError):
            Disc(0.5, 0.5, 0.0)

    def test_band_requires_positive_width(self):
        with pytest.raises(ValueError):
            Band(1.0, 1.0, 1.0, 0.0)

    def test_band_degenerate_line_raises(self):
        with pytest.raises(ValueError):
            Band(0.0, 0.0, 1.0, 0.5)

    def test_band_covers_diagonal(self):
        # The main diagonal of the unit square.
        b = Band(1.0, 1.0, 1.0, 0.2)
        mask = b.mask(10, 10)
        assert mask[5, 4] or mask[4, 5]  # near the center of the diagonal
        assert not mask[0, 0]  # far corner (x+y=0.1, distance ~0.64)

    def test_halfplane_splits_grid(self):
        upper = HalfPlane(1.0, 1.0, 1.0)
        n = upper.count(10, 10)
        assert 0 < n < 100
        assert n + upper.complement().count(10, 10) == 100

    def test_polygon_square(self):
        sq = Polygon(((0.25, 0.25), (0.25, 0.75), (0.75, 0.75), (0.75, 0.25)))
        mask = sq.mask(8, 8)
        assert mask[4, 4]
        assert not mask[0, 0]

    def test_polygon_needs_three_vertices(self):
        with pytest.raises(ValueError):
            Polygon(((0, 0), (1, 1)))

    def test_triangle_matches_polygon(self):
        t = Triangle((0.0, 0.0), (1.0, 0.0), (0.5, 1.0))
        p = Polygon(((0.0, 0.0), (1.0, 0.0), (0.5, 1.0)))
        assert np.array_equal(t.mask(9, 9), p.mask(9, 9))


class TestStripes:
    def test_horizontal_stripes_tile(self):
        masks = [horizontal_stripe(i, 4).mask(*GRID) for i in range(4)]
        total = np.zeros(GRID, dtype=int)
        for m in masks:
            total += m.astype(int)
        assert (total == 1).all()

    def test_vertical_stripes_tile(self):
        masks = [vertical_stripe(i, 3).mask(9, 12) for i in range(3)]
        total = sum(m.astype(int) for m in masks)
        assert (total == 1).all()

    def test_stripe_index_validation(self):
        with pytest.raises(ValueError):
            horizontal_stripe(4, 4)
        with pytest.raises(ValueError):
            vertical_stripe(-1, 3)

    def test_equal_stripe_sizes_on_divisible_grid(self):
        counts = [horizontal_stripe(i, 4).count(8, 12) for i in range(4)]
        assert counts == [24, 24, 24, 24]


class TestAlgebra:
    def test_union_commutes(self):
        a, b = Rect(0, 0, 0.5, 0.5), Disc(0.5, 0.5, 0.3)
        assert np.array_equal((a | b).mask(*GRID), (b | a).mask(*GRID))

    def test_intersection_subset_of_parts(self):
        a, b = Rect(0, 0, 0.8, 0.8), Rect(0.2, 0.2, 1.0, 1.0)
        inter = (a & b).mask(*GRID)
        assert (inter <= a.mask(*GRID)).all()
        assert (inter <= b.mask(*GRID)).all()

    def test_difference_disjoint_from_right(self):
        a, b = FullGrid(), Rect(0, 0, 0.5, 1.0)
        diff = (a - b).mask(*GRID)
        assert not (diff & b.mask(*GRID)).any()

    def test_complement_involution(self):
        r = Disc(0.5, 0.5, 0.3)
        assert np.array_equal((~~r).mask(*GRID), r.mask(*GRID))

    def test_union_all_empty_is_empty(self):
        assert union_all([]).is_empty(*GRID)

    def test_union_all_many(self):
        stripes = [horizontal_stripe(i, 4) for i in range(4)]
        assert union_all(stripes).count(*GRID) == 96


class TestIterCells:
    def test_rowmajor_order(self):
        mask = np.zeros((3, 3), dtype=bool)
        mask[0, 2] = mask[1, 0] = mask[2, 1] = True
        assert list(iter_cells_rowmajor(mask)) == [(0, 2), (1, 0), (2, 1)]

    def test_empty_mask(self):
        assert list(iter_cells_rowmajor(np.zeros((2, 2), dtype=bool))) == []


# ---------------------------------------------------------------------------
# Property tests
# ---------------------------------------------------------------------------

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
dims = st.integers(min_value=1, max_value=20)


@st.composite
def rects(draw):
    y0, y1 = sorted((draw(unit), draw(unit)))
    x0, x1 = sorted((draw(unit), draw(unit)))
    return Rect(y0, x0, y1, x1)


class TestRegionProperties:
    @given(r=rects(), rows=dims, cols=dims)
    @settings(max_examples=60, deadline=None)
    def test_mask_shape_and_dtype(self, r, rows, cols):
        m = r.mask(rows, cols)
        assert m.shape == (rows, cols)
        assert m.dtype == bool

    @given(r=rects(), rows=dims, cols=dims)
    @settings(max_examples=60, deadline=None)
    def test_complement_partitions_grid(self, r, rows, cols):
        assert r.count(rows, cols) + (~r).count(rows, cols) == rows * cols

    @given(a=rects(), b=rects(), rows=dims, cols=dims)
    @settings(max_examples=60, deadline=None)
    def test_de_morgan(self, a, b, rows, cols):
        lhs = (~(a | b)).mask(rows, cols)
        rhs = ((~a) & (~b)).mask(rows, cols)
        assert np.array_equal(lhs, rhs)

    @given(a=rects(), b=rects(), rows=dims, cols=dims)
    @settings(max_examples=60, deadline=None)
    def test_difference_is_intersection_with_complement(self, a, b, rows, cols):
        assert np.array_equal(
            (a - b).mask(rows, cols), (a & ~b).mask(rows, cols)
        )

    @given(n=st.integers(min_value=1, max_value=8),
           rows=dims, cols=dims)
    @settings(max_examples=60, deadline=None)
    def test_stripes_always_partition(self, n, rows, cols):
        total = np.zeros((rows, cols), dtype=int)
        for i in range(n):
            total += horizontal_stripe(i, n).mask(rows, cols).astype(int)
        assert (total == 1).all()
