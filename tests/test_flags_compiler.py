"""Tests for repro.flags.compiler."""

import numpy as np
import pytest

from repro.flags.catalog import france, great_britain, jordan, mauritius
from repro.flags.compiler import (
    care_mask,
    compile_flag,
    execute,
    image_matches,
    program_stats,
    verify_program,
)
from repro.grid.canvas import Canvas, CanvasError
from repro.grid.palette import Color


class TestCompile:
    def test_flat_flag_op_count(self):
        prog = compile_flag(mauritius())
        assert prog.n_ops == 96

    def test_layered_flag_counts_hidden_work(self):
        spec = great_britain()
        prog = compile_flag(spec)
        assert prog.n_ops == spec.total_work()

    def test_custom_grid_size(self):
        prog = compile_flag(mauritius(), rows=16, cols=24)
        assert prog.rows == 16 and prog.cols == 24
        assert prog.n_ops == 16 * 24

    def test_layer_order_preserved(self):
        prog = compile_flag(jordan())
        assert prog.layer_order == jordan().layer_names

    def test_skip_optional_blank(self):
        full = compile_flag(jordan())
        skipped = compile_flag(jordan(), skip_optional_blank=True)
        assert "white_stripe" not in skipped.layer_order
        assert skipped.n_ops < full.n_ops

    def test_skip_occluded_reduces_ops(self):
        spec = great_britain()
        full = compile_flag(spec)
        lean = compile_flag(spec, skip_occluded=True)
        assert lean.n_ops < full.n_ops
        # Occlusion-eliminated program covers exactly the grid once.
        assert lean.n_ops == spec.default_rows * spec.default_cols

    def test_ops_within_bounds(self):
        prog = compile_flag(canada_like := jordan())
        for op in prog.ops:
            r, c = op.cell
            assert 0 <= r < prog.rows and 0 <= c < prog.cols


class TestExecute:
    def test_reproduces_final_image(self):
        spec = great_britain()
        prog = compile_flag(spec)
        canvas = execute(prog)
        assert np.array_equal(canvas.codes, spec.final_image())

    def test_flat_flag_on_strict_canvas(self):
        prog = compile_flag(mauritius())
        canvas = Canvas(prog.rows, prog.cols, allow_overpaint=False)
        execute(prog, canvas)
        assert canvas.n_colored() == prog.n_ops

    def test_layered_flag_needs_overpaint(self):
        prog = compile_flag(great_britain())
        strict = Canvas(prog.rows, prog.cols, allow_overpaint=False)
        with pytest.raises(CanvasError):
            execute(prog, strict)


class TestVerify:
    @pytest.mark.parametrize("factory", [mauritius, france, great_britain, jordan])
    def test_all_paper_flags_verify(self, factory):
        spec = factory()
        assert verify_program(compile_flag(spec), spec)

    def test_verify_with_optional_blank_elision(self):
        spec = jordan()
        prog = compile_flag(spec, skip_optional_blank=True)
        assert verify_program(prog, spec)

    def test_verify_with_occlusion_elimination(self):
        spec = great_britain()
        prog = compile_flag(spec, skip_occluded=True)
        assert verify_program(prog, spec)

    def test_care_mask_excludes_elided_white(self):
        spec = jordan()
        prog = compile_flag(spec, skip_optional_blank=True)
        care = care_mask(spec, prog)
        vis_white = spec.visible_cells("white_stripe")
        assert not care[vis_white].any()
        assert care[~vis_white].all()

    def test_image_matches_rejects_wrong_colors(self):
        spec = mauritius()
        prog = compile_flag(spec)
        wrong = spec.final_image().copy()
        wrong[0, 0] = int(Color.GREEN)
        assert not image_matches(wrong, spec, prog)


class TestStats:
    def test_program_stats_totals(self):
        prog = compile_flag(mauritius())
        stats = program_stats(prog)
        assert stats["total_ops"] == 96
        assert stats["ops_per_layer"]["red_stripe"] == 24
        assert stats["ops_per_color"]["red"] == 24
        assert sum(stats["ops_per_layer"].values()) == 96
