"""Tests for repro.classroom.discussion — lesson extraction."""

import numpy as np
import pytest

from repro.agents import make_team
from repro.classroom.discussion import (
    Lesson,
    debrief_session,
    debrief_team,
    observe_contention,
    observe_hardware,
    observe_pipelining,
    observe_speedup,
    observe_warmup,
)
from repro.classroom.institution import get_institution
from repro.classroom.session import run_session
from repro.flags import mauritius
from repro.grid.palette import MAURITIUS_STRIPES
from repro.schedule.scenario import run_core_activity


@pytest.fixture(scope="module")
def team_results():
    rng = np.random.default_rng(21)
    team = make_team("t", 4, rng, colors=list(MAURITIUS_STRIPES))
    return run_core_activity(mauritius(), team, rng)


@pytest.fixture(scope="module")
def session():
    return run_session(get_institution("USI"), seed=8, n_teams=3)


class TestTeamObservations:
    def test_speedup_detected(self, team_results):
        obs = observe_speedup(team_results)
        by_lesson = {o.lesson: o for o in obs}
        assert by_lesson[Lesson.SPEEDUP].detected
        assert by_lesson[Lesson.SUBLINEAR_SPEEDUP].detected
        assert 1.0 < by_lesson[Lesson.SPEEDUP].value < 4.0

    def test_warmup_detected(self, team_results):
        (obs,) = observe_warmup(team_results)
        assert obs.detected
        assert obs.value > 1.05

    def test_contention_detected(self, team_results):
        (obs,) = observe_contention(team_results)
        assert obs.detected
        assert 0.0 < obs.value < 1.0

    def test_pipelining_detected(self, team_results):
        (obs,) = observe_pipelining(team_results)
        assert obs.detected
        assert obs.value > 0

    def test_missing_scenarios_yield_no_observations(self):
        assert observe_warmup({}) == []
        assert observe_speedup({}) == []
        assert observe_contention({}) == []
        assert observe_pipelining({}) == []

    def test_debrief_team_covers_all_lessons(self, team_results):
        lessons = {o.lesson for o in debrief_team(team_results)}
        assert lessons == {
            Lesson.SPEEDUP, Lesson.SUBLINEAR_SPEEDUP, Lesson.WARMUP,
            Lesson.CONTENTION, Lesson.PIPELINING,
        }

    def test_evidence_strings_nonempty(self, team_results):
        assert all(o.evidence for o in debrief_team(team_results))


class TestSessionDebrief:
    def test_majority_detection(self, session):
        obs = debrief_session(session)
        detected = {o.lesson for o in obs if o.detected}
        assert Lesson.SPEEDUP in detected
        assert Lesson.CONTENTION in detected
        assert Lesson.WARMUP in detected

    def test_hardware_lesson_needs_variety(self, session):
        hw = observe_hardware(session)
        assert len(hw) == 1
        assert hw[0].lesson is Lesson.HARDWARE_DIFFERENCES

    def test_hardware_absent_with_uniform_implements(self):
        from dataclasses import replace
        from repro.agents.implements import THICK_MARKER
        profile = replace(get_institution("USI"),
                          implements=(THICK_MARKER,))
        rep = run_session(profile, seed=9, n_teams=3)
        assert observe_hardware(rep) == []
