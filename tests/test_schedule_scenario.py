"""Tests for repro.schedule.scenario — the four core scenarios."""

import numpy as np
import pytest

from repro.agents import make_team
from repro.flags import mauritius
from repro.grid.palette import MAURITIUS_STRIPES
from repro.schedule.scenario import (
    core_scenarios,
    get_scenario,
    run_core_activity,
    run_scenario,
)


def fresh_team(seed=0):
    return make_team("t", 4, np.random.default_rng(seed),
                     colors=list(MAURITIUS_STRIPES))


class TestScenarioDefinitions:
    def test_four_scenarios_in_order(self):
        scenarios = core_scenarios()
        assert [s.number for s in scenarios] == [1, 2, 3, 4]
        assert [s.n_colorers for s in scenarios] == [1, 2, 4, 4]

    def test_get_scenario(self):
        assert get_scenario(3).name == "four_by_stripe"
        with pytest.raises(KeyError):
            get_scenario(5)

    def test_descriptions_present(self):
        assert all(s.description for s in core_scenarios())


class TestRunScenario:
    def test_single_scenario_runs(self):
        r = run_scenario(get_scenario(2), mauritius(), fresh_team(),
                         np.random.default_rng(0))
        assert r.correct
        assert r.n_workers == 2
        assert r.extra["scenario"] == 2
        assert r.extra["flag"] == "mauritius"

    def test_custom_grid_size(self):
        r = run_scenario(get_scenario(1), mauritius(), fresh_team(),
                         np.random.default_rng(0), rows=4, cols=8)
        assert r.canvas.rows == 4 and r.canvas.cols == 8


class TestRunCoreActivity:
    @pytest.fixture(scope="class")
    def results(self):
        return run_core_activity(mauritius(), fresh_team(42),
                                 np.random.default_rng(42))

    def test_all_runs_present(self, results):
        assert list(results) == [
            "scenario1", "scenario1_repeat", "scenario2",
            "scenario3", "scenario4",
        ]

    def test_all_correct(self, results):
        assert all(r.correct for r in results.values())

    def test_times_decrease_through_scenario3(self, results):
        """The headline classroom observation (Section III-C)."""
        t1 = results["scenario1"].true_makespan
        t2 = results["scenario2"].true_makespan
        t3 = results["scenario3"].true_makespan
        assert t1 > t2 > t3

    def test_repeat_faster_than_first(self, results):
        """The warmup lesson."""
        assert (results["scenario1_repeat"].true_makespan
                < results["scenario1"].true_makespan)

    def test_scenario4_slower_than_3(self, results):
        """The contention lesson: same processors, shared implements."""
        assert (results["scenario4"].true_makespan
                > results["scenario3"].true_makespan)

    def test_speedup_sublinear(self, results):
        t1 = results["scenario1_repeat"].true_makespan
        t3 = results["scenario3"].true_makespan
        assert 1.5 < t1 / t3 < 4.0

    def test_no_repeat_option(self):
        results = run_core_activity(mauritius(), fresh_team(1),
                                    np.random.default_rng(1),
                                    repeat_first=False)
        assert "scenario1_repeat" not in results
        assert len(results) == 4
