"""Tests for repro.agents.team."""

import numpy as np
import pytest

from repro.agents.implements import CRAYON, DAUBER, THICK_MARKER
from repro.agents.student import StudentProcessor, StudentProfile, TimerStudent
from repro.agents.team import ImplementKit, Team, TeamError, make_team
from repro.grid.palette import MAURITIUS_STRIPES, Color


class TestImplementKit:
    def test_uniform_kit(self):
        kit = ImplementKit.uniform(MAURITIUS_STRIPES, THICK_MARKER)
        assert kit.colors == list(MAURITIUS_STRIPES)
        assert kit.implement_for(Color.RED) is THICK_MARKER

    def test_missing_color_raises(self):
        kit = ImplementKit.uniform([Color.RED])
        with pytest.raises(TeamError, match="no BLACK"):
            kit.implement_for(Color.BLACK)

    def test_copies_validation(self):
        with pytest.raises(TeamError):
            ImplementKit({Color.RED: THICK_MARKER}, copies=0)

    def test_mixed_kit(self):
        kit = ImplementKit({Color.RED: DAUBER, Color.BLUE: CRAYON})
        assert kit.implement_for(Color.RED) is DAUBER
        assert kit.implement_for(Color.BLUE) is CRAYON


class TestTeam:
    def make(self, n=4):
        students = [StudentProcessor(f"P{i}", StudentProfile())
                    for i in range(n)]
        return Team(
            name="t", students=students,
            timer=TimerStudent("t.timer"),
            kit=ImplementKit.uniform(MAURITIUS_STRIPES),
        )

    def test_size_excludes_timer(self):
        assert self.make(4).size == 4

    def test_empty_team_rejected(self):
        with pytest.raises(TeamError, match="no students"):
            Team(name="t", students=[], timer=TimerStudent("x"),
                 kit=ImplementKit.uniform([Color.RED]))

    def test_duplicate_names_rejected(self):
        s = StudentProcessor("P", StudentProfile())
        with pytest.raises(TeamError, match="duplicate"):
            Team(name="t", students=[s, s], timer=TimerStudent("x"),
                 kit=ImplementKit.uniform([Color.RED]))

    def test_colorers_subset(self):
        team = self.make(4)
        assert len(team.colorers(2)) == 2

    def test_colorers_too_many_raises(self):
        with pytest.raises(TeamError, match="needs"):
            self.make(2).colorers(4)

    def test_begin_scenario_resets_everyone(self, rng):
        team = self.make(3)
        for s in team.students:
            s.scenario_cells = 42
        team.begin_scenario()
        assert all(s.scenario_cells == 0 for s in team.students)


class TestMakeTeam:
    def test_builds_requested_size(self, rng):
        team = make_team("x", 5, rng, colors=list(MAURITIUS_STRIPES))
        assert team.size == 5
        assert team.timer.name == "x.timer"

    def test_unique_student_names(self, rng):
        team = make_team("x", 6, rng, colors=[Color.RED])
        names = [s.name for s in team.students]
        assert len(set(names)) == 6

    def test_zero_students_rejected(self, rng):
        with pytest.raises(TeamError):
            make_team("x", 0, rng, colors=[Color.RED])

    def test_custom_kit_wins(self, rng):
        kit = ImplementKit.uniform([Color.RED], DAUBER, copies=3)
        team = make_team("x", 2, rng, colors=[Color.BLUE], kit=kit)
        assert team.kit is kit
        assert team.kit.copies == 3

    def test_implement_applied_to_all_colors(self, rng):
        team = make_team("x", 2, rng, colors=list(MAURITIUS_STRIPES),
                         implement=CRAYON)
        for c in MAURITIUS_STRIPES:
            assert team.kit.implement_for(c) is CRAYON

    def test_deterministic_given_rng_seed(self):
        t1 = make_team("x", 3, np.random.default_rng(5),
                       colors=[Color.RED])
        t2 = make_team("x", 3, np.random.default_rng(5),
                       colors=[Color.RED])
        for a, b in zip(t1.students, t2.students):
            assert a.profile == b.profile
