"""Tests for repro.flags.decompose, including partition property tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flags.catalog import great_britain, jordan, mauritius
from repro.flags.compiler import compile_flag
from repro.flags.decompose import (
    DecompositionError,
    Partition,
    blocks,
    by_color_groups,
    by_layer,
    cyclic,
    horizontal_slices,
    scenario_partition,
    single,
    vertical_slices,
)
from repro.grid.palette import Color


@pytest.fixture(scope="module")
def prog():
    return compile_flag(mauritius())


class TestScenarios:
    """The four Figure 1 decompositions."""

    def test_scenario1_single_worker(self, prog):
        p = scenario_partition(prog, 1)
        assert p.n_workers == 1
        assert p.work_counts() == [96]

    def test_scenario2_color_pairs(self, prog):
        p = scenario_partition(prog, 2)
        assert p.n_workers == 2
        assert p.work_counts() == [48, 48]
        colors = p.colors_per_worker()
        assert set(colors[0]) == {Color.RED, Color.BLUE}
        assert set(colors[1]) == {Color.YELLOW, Color.GREEN}

    def test_scenario3_one_stripe_each(self, prog):
        p = scenario_partition(prog, 3)
        assert p.n_workers == 4
        assert p.work_counts() == [24, 24, 24, 24]
        # No implement sharing: each worker uses exactly one color.
        assert all(len(c) == 1 for c in p.colors_per_worker())

    def test_scenario4_slices_need_every_color(self, prog):
        p = scenario_partition(prog, 4)
        assert p.n_workers == 4
        assert p.work_counts() == [24, 24, 24, 24]
        # Maximal contention: every worker needs all four implements.
        assert all(len(c) == 4 for c in p.colors_per_worker())

    def test_scenario2_generalizes_to_other_flags(self):
        """Non-Mauritius flags split their colors into two near-equal
        groups (France: blue+white / red)."""
        from repro.flags.catalog import france
        fr_prog = compile_flag(france())
        p = scenario_partition(fr_prog, 2)
        assert p.n_workers == 2
        assert sum(p.work_counts()) == fr_prog.n_ops
        groups = p.colors_per_worker()
        assert len(groups[0]) == 2 and len(groups[1]) == 1

    def test_scenario2_single_color_flag_rejected(self):
        from repro.flags.spec import FlagSpec, Layer
        from repro.grid.regions import FullGrid
        mono = FlagSpec("mono", (Layer("all", Color.RED, FullGrid()),),
                        default_rows=4, default_cols=4)
        mono_prog = compile_flag(mono)
        with pytest.raises(DecompositionError, match="only"):
            scenario_partition(mono_prog, 2)

    def test_invalid_scenario_raises(self, prog):
        with pytest.raises(DecompositionError, match="1-4"):
            scenario_partition(prog, 5)

    def test_scenario4_slices_are_contiguous_columns(self, prog):
        p = scenario_partition(prog, 4)
        for ops in p.assignments:
            cols = {op.cell[1] for op in ops}
            assert cols == set(range(min(cols), max(cols) + 1))


class TestByLayer:
    def test_default_one_worker_per_layer(self, prog):
        p = by_layer(prog)
        assert p.n_workers == 4

    def test_custom_groups(self, prog):
        p = by_layer(prog, [["red_stripe", "green_stripe"],
                            ["blue_stripe", "yellow_stripe"]])
        assert p.n_workers == 2
        assert p.work_counts() == [48, 48]

    def test_groups_must_cover_exactly(self, prog):
        with pytest.raises(DecompositionError):
            by_layer(prog, [["red_stripe"]])
        with pytest.raises(DecompositionError):
            by_layer(prog, [["red_stripe", "red_stripe"],
                            ["blue_stripe", "yellow_stripe", "green_stripe"]])

    def test_group_preserves_global_layer_order(self):
        gb_prog = compile_flag(great_britain())
        p = by_layer(gb_prog, [list(gb_prog.layer_order)])
        layers_seen = [op.layer for op in p.assignments[0]]
        # The single worker's ops follow the painting order exactly.
        boundaries = [layers_seen.index(l) for l in gb_prog.layer_order]
        assert boundaries == sorted(boundaries)


class TestByColorGroups:
    def test_duplicate_color_rejected(self, prog):
        with pytest.raises(DecompositionError, match="more than one group"):
            by_color_groups(prog, [[Color.RED, Color.BLUE],
                                   [Color.RED, Color.GREEN, Color.YELLOW]])

    def test_missing_color_rejected(self, prog):
        with pytest.raises(DecompositionError):
            by_color_groups(prog, [[Color.RED], [Color.BLUE]])


class TestSlices:
    def test_vertical_slices_cover_columns(self, prog):
        p = vertical_slices(prog, 3)
        all_cols = set()
        for ops in p.assignments:
            all_cols |= {op.cell[1] for op in ops}
        assert all_cols == set(range(prog.cols))

    def test_horizontal_slices_cover_rows(self, prog):
        p = horizontal_slices(prog, 2)
        assert p.work_counts() == [48, 48]

    def test_uneven_split_near_equal(self, prog):
        p = vertical_slices(prog, 5)  # 12 cols over 5 workers
        counts = p.work_counts()
        assert max(counts) - min(counts) <= 8  # one column of 8 rows

    def test_zero_workers_rejected(self, prog):
        with pytest.raises(DecompositionError):
            vertical_slices(prog, 0)


class TestBlocksAndCyclic:
    def test_blocks_grid(self, prog):
        p = blocks(prog, 2, 2)
        assert p.n_workers == 4
        assert sum(p.work_counts()) == 96

    def test_cyclic_near_perfect_balance(self, prog):
        p = cyclic(prog, 5)
        counts = p.work_counts()
        assert max(counts) - min(counts) <= 1

    def test_cyclic_round_robin_order(self, prog):
        p = cyclic(prog, 3)
        assert p.assignments[0][0] == prog.ops[0]
        assert p.assignments[1][0] == prog.ops[1]
        assert p.assignments[2][0] == prog.ops[2]

    def test_cyclic_zero_workers_rejected(self, prog):
        with pytest.raises(DecompositionError):
            cyclic(prog, 0)


class TestPartitionInvariants:
    def test_partition_must_cover_program(self, prog):
        with pytest.raises(DecompositionError, match="covers"):
            Partition(prog, (prog.ops[:10],), strategy="bad")

    def test_partition_must_be_permutation(self, prog):
        doubled = prog.ops[:48] + prog.ops[:48]
        with pytest.raises(DecompositionError):
            Partition(prog, (doubled,), strategy="bad")

    def test_imbalance_of_perfect_split(self, prog):
        assert scenario_partition(prog, 3).imbalance() == 1.0

    def test_imbalance_of_skewed_split(self, prog):
        p = Partition(prog, (prog.ops[:90], prog.ops[90:]), strategy="skew")
        assert p.imbalance() == pytest.approx(90 / 48)

    @given(n=st.integers(min_value=1, max_value=12))
    @settings(max_examples=20, deadline=None)
    def test_every_strategy_is_a_permutation(self, n):
        # The Partition constructor enforces this; building must not raise.
        program = compile_flag(mauritius())
        for strat in (vertical_slices, horizontal_slices, cyclic):
            p = strat(program, n)
            assert sum(p.work_counts()) == program.n_ops

    @given(n=st.integers(min_value=1, max_value=8))
    @settings(max_examples=20, deadline=None)
    def test_layered_flag_slices_preserve_layer_order_per_worker(self, n):
        program = compile_flag(jordan())
        p = vertical_slices(program, n)
        layer_index = {name: i for i, name in enumerate(program.layer_order)}
        for ops in p.assignments:
            indices = [layer_index[op.layer] for op in ops]
            assert indices == sorted(indices)
