"""Tests for repro.depgraph.schedule_dag — list scheduling on DAGs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.depgraph.flag_dags import (
    great_britain_reference_dag,
    jordan_reference_dag,
)
from repro.depgraph.graph import TaskGraph
from repro.depgraph.schedule_dag import (
    DagSchedule,
    ScheduleError,
    critical_path_priority,
    fifo_priority,
    graham_bound,
    list_schedule,
    lower_bound,
    speedup_curve,
    weight_priority,
)


def chain(n=4, w=1.0):
    g = TaskGraph()
    prev = None
    for i in range(n):
        name = f"t{i}"
        g.add_task(name, w)
        if prev:
            g.add_dependency(prev, name)
        prev = name
    return g


def independent(n=6, w=1.0):
    g = TaskGraph()
    for i in range(n):
        g.add_task(f"t{i}", w)
    return g


class TestListSchedule:
    def test_independent_tasks_pack_evenly(self):
        g = independent(6)
        sched = list_schedule(g, 3)
        sched.validate(g)
        assert sched.makespan == 2.0
        assert sched.utilization() == pytest.approx(1.0)

    def test_chain_cannot_parallelize(self):
        g = chain(5)
        sched = list_schedule(g, 4)
        sched.validate(g)
        assert sched.makespan == 5.0

    def test_single_processor_is_total_work(self):
        g = jordan_reference_dag()
        sched = list_schedule(g, 1)
        sched.validate(g)
        assert sched.makespan == pytest.approx(g.total_work())

    def test_jordan_two_processors(self):
        """Both stripes run in parallel; triangle and star serialize."""
        g = jordan_reference_dag()
        sched = list_schedule(g, 2)
        sched.validate(g)
        stripes = [sched.tasks["black_stripe"], sched.tasks["green_stripe"]]
        assert stripes[0].start == stripes[1].start == 0.0
        assert (sched.tasks["red_triangle"].start
                >= max(s.end for s in stripes))
        assert sched.tasks["white_star"].start \
            >= sched.tasks["red_triangle"].end

    def test_gb_chain_gains_nothing(self):
        g = great_britain_reference_dag()
        s1 = list_schedule(g, 1).makespan
        s4 = list_schedule(g, 4).makespan
        assert s1 == s4

    def test_invalid_processor_count(self):
        with pytest.raises(ScheduleError):
            list_schedule(chain(), 0)

    def test_priorities_change_placement_not_correctness(self):
        g = TaskGraph()
        g.add_task("small", 1)
        g.add_task("big", 10)
        g.add_task("tail", 5)
        g.add_dependency("big", "tail")
        for prio in (critical_path_priority, weight_priority, fifo_priority):
            sched = list_schedule(g, 2, prio)
            sched.validate(g)
        # Critical-path priority starts 'big' immediately.
        cp_sched = list_schedule(g, 2, critical_path_priority)
        assert cp_sched.tasks["big"].start == 0.0

    def test_deterministic(self):
        g = jordan_reference_dag()
        a = list_schedule(g, 3)
        b = list_schedule(g, 3)
        assert a.tasks == b.tasks


class TestBounds:
    def test_lower_and_graham_bracket_makespan(self):
        g = jordan_reference_dag()
        for p in (1, 2, 3, 4):
            sched = list_schedule(g, p)
            assert lower_bound(g, p) - 1e-9 <= sched.makespan
            assert sched.makespan <= graham_bound(g, p) + 1e-9

    def test_speedup_curve_monotone(self):
        g = jordan_reference_dag()
        curve = speedup_curve(g, [1, 2, 4, 8])
        vals = [curve[p] for p in (1, 2, 4, 8)]
        assert all(b >= a - 1e-9 for a, b in zip(vals, vals[1:]))
        # Never exceeds the DAG's ideal bound.
        assert max(vals) <= g.ideal_speedup_bound() + 1e-9


class TestValidation:
    def test_validate_catches_precedence_violation(self):
        g = chain(2)
        sched = DagSchedule(n_processors=1)
        from repro.depgraph.schedule_dag import ScheduledTask
        sched.tasks["t0"] = ScheduledTask("t0", 0, 1.0, 2.0)
        sched.tasks["t1"] = ScheduledTask("t1", 0, 0.0, 1.0)  # before dep!
        with pytest.raises(ScheduleError, match="before its"):
            sched.validate(g)

    def test_validate_catches_overlap(self):
        g = independent(2)
        from repro.depgraph.schedule_dag import ScheduledTask
        sched = DagSchedule(n_processors=1)
        sched.tasks["t0"] = ScheduledTask("t0", 0, 0.0, 1.0)
        sched.tasks["t1"] = ScheduledTask("t1", 0, 0.5, 1.5)
        with pytest.raises(ScheduleError, match="overlap"):
            sched.validate(g)

    def test_validate_catches_missing(self):
        g = independent(2)
        sched = DagSchedule(n_processors=1)
        with pytest.raises(ScheduleError, match="unscheduled"):
            sched.validate(g)


@st.composite
def random_dags(draw):
    n = draw(st.integers(min_value=1, max_value=9))
    g = TaskGraph()
    names = [f"t{i}" for i in range(n)]
    for name in names:
        g.add_task(name, draw(st.floats(min_value=0.5, max_value=5.0)))
    for i in range(n):
        for j in range(i + 1, n):
            if draw(st.booleans()):
                g.add_dependency(names[i], names[j])
    return g


class TestScheduleProperties:
    @given(g=random_dags(), p=st.integers(min_value=1, max_value=5))
    @settings(max_examples=60, deadline=None)
    def test_valid_and_within_bounds(self, g, p):
        sched = list_schedule(g, p)
        sched.validate(g)
        assert lower_bound(g, p) - 1e-6 <= sched.makespan
        assert sched.makespan <= graham_bound(g, p) + 1e-6

    @given(g=random_dags(), p=st.integers(min_value=2, max_value=6))
    @settings(max_examples=30, deadline=None)
    def test_never_worse_than_sequential(self, g, p):
        """Work-conserving schedules never exceed the P=1 makespan.

        (Strict monotonicity in P is *not* asserted: Graham's anomalies
        make it false in general for list scheduling.)
        """
        assert (list_schedule(g, p).makespan
                <= list_schedule(g, 1).makespan + 1e-9)
