"""Tests for repro.flags.catalog — every flag the paper uses."""

import numpy as np
import pytest

from repro.flags.catalog import (
    available_flags,
    canada,
    france,
    get_flag,
    great_britain,
    jordan,
    mauritius,
)
from repro.grid.palette import Color


class TestMauritius:
    """The core-activity flag: 4 equal horizontal stripes (Fig 1)."""

    def test_four_stripes_in_flag_order(self):
        spec = mauritius()
        assert spec.colors_used() == (
            Color.RED, Color.BLUE, Color.YELLOW, Color.GREEN,
        )

    def test_stripes_equal_size(self):
        spec = mauritius()
        work = spec.work_per_layer()
        assert len(set(work.values())) == 1

    def test_not_layered(self):
        assert not mauritius().is_layered()

    def test_stripe_geometry_top_to_bottom(self):
        img = mauritius().final_image()
        assert (img[0] == int(Color.RED)).all()
        assert (img[-1] == int(Color.GREEN)).all()

    def test_divides_for_two_and_four(self):
        # "it provides a natural subdivision ... for two and four people"
        spec = mauritius()
        total = spec.total_work()
        assert total % 2 == 0 and total % 4 == 0


class TestFrance:
    """The Webster variation's simple flag: vertical thirds."""

    def test_vertical_thirds(self):
        img = france().final_image()
        assert (img[:, 0] == int(Color.BLUE)).all()
        assert (img[:, -1] == int(Color.RED)).all()

    def test_white_stripe_optional(self):
        assert france().layer("white_stripe").optional_on_blank

    def test_flat(self):
        assert not france().is_layered()


class TestCanada:
    """The Webster variation's complex flag (Fig 2)."""

    def test_layered_because_of_leaf(self):
        assert canada().is_layered()

    def test_leaf_paints_over_white_field(self):
        assert ("white_field", "maple_leaf") in canada().overlap_pairs()

    def test_red_bands_on_sides(self):
        img = canada().final_image()
        assert (img[:, 0] == int(Color.RED)).all()
        assert (img[:, -1] == int(Color.RED)).all()

    def test_leaf_in_center(self):
        spec = canada()
        rows, cols = spec.default_rows, spec.default_cols
        leaf = spec.layer("maple_leaf").region.mask(rows, cols)
        assert leaf.any()
        # Leaf stays inside the white pale (middle half of the width).
        assert not leaf[:, : cols // 4].any()
        assert not leaf[:, -(cols // 4):].any()

    def test_leaf_roughly_symmetric(self):
        spec = canada()
        leaf = spec.layer("maple_leaf").region.mask(24, 48)
        flipped = leaf[:, ::-1]
        agreement = (leaf == flipped).mean()
        assert agreement > 0.9

    def test_irregular_leaf_rows(self):
        # The leaf's per-row cell counts vary - the load-imbalance source.
        spec = canada()
        leaf = spec.layer("maple_leaf").region.mask(24, 48)
        row_counts = leaf.sum(axis=1)
        nonzero = row_counts[row_counts > 0]
        assert len(set(nonzero.tolist())) > 2


class TestGreatBritain:
    """The Knox dependency example (Fig 3)."""

    def test_five_layers_in_painting_order(self):
        assert great_britain().layer_names == (
            "blue_background", "white_diagonals", "red_diagonals",
            "white_cross", "red_cross",
        )

    def test_every_layer_overlaps_background(self):
        pairs = great_britain().overlap_pairs()
        laters = {b for a, b in pairs if a == "blue_background"}
        assert laters == {"white_diagonals", "red_diagonals",
                          "white_cross", "red_cross"}

    def test_final_image_has_all_three_colors(self):
        img = great_britain().final_image()
        present = set(np.unique(img).tolist())
        assert {int(Color.RED), int(Color.WHITE), int(Color.BLUE)} <= present

    def test_center_is_red_cross(self):
        spec = great_britain()
        img = spec.final_image()
        r, c = spec.default_rows // 2, spec.default_cols // 2
        assert img[r, c] == int(Color.RED)

    def test_corners_are_blue(self):
        img = great_britain().final_image()
        for corner in ((0, 0), (0, -1), (-1, 0), (-1, -1)):
            assert img[corner] in (int(Color.BLUE), int(Color.RED),
                                   int(Color.WHITE))
        # At least the field between features is blue somewhere.
        assert (img == int(Color.BLUE)).sum() > 0


class TestJordan:
    """The dependency-graph assessment flag (Fig 4)."""

    def test_layer_order_matches_fig9(self):
        assert jordan().layer_names == (
            "black_stripe", "white_stripe", "green_stripe",
            "red_triangle", "white_star",
        )

    def test_white_stripe_optional(self):
        assert jordan().layer("white_stripe").optional_on_blank

    def test_triangle_at_hoist(self):
        img = jordan().final_image()
        rows = img.shape[0]
        assert img[rows // 2, 0] == int(Color.RED)
        assert img[rows // 2, -1] == int(Color.WHITE)

    def test_star_inside_triangle(self):
        spec = jordan()
        rows, cols = spec.default_rows, spec.default_cols
        star = spec.layer("white_star").region.mask(rows, cols)
        tri = spec.layer("red_triangle").region.mask(rows, cols)
        assert star.any()
        assert (star <= tri).all()

    def test_triangle_spans_all_three_stripes(self):
        pairs = jordan().overlap_pairs()
        earlier = {a for a, b in pairs if b == "red_triangle"}
        assert earlier == {"black_stripe", "white_stripe", "green_stripe"}


class TestCatalogAccess:
    def test_get_flag_known(self):
        assert get_flag("mauritius").name == "mauritius"

    def test_get_flag_unknown_raises_with_list(self):
        with pytest.raises(KeyError, match="known flags"):
            get_flag("atlantis")

    def test_available_flags_has_descriptions(self):
        flags = available_flags()
        assert "mauritius" in flags
        assert all(desc for desc in flags.values())

    @pytest.mark.parametrize("name", sorted(available_flags()))
    def test_every_flag_builds_and_renders(self, name):
        spec = get_flag(name)
        img = spec.final_image()
        assert img.shape == (spec.default_rows, spec.default_cols)
        assert (img != 0).any()
