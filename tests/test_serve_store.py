"""End-to-end tests for serve + store: token auth, quotas, durability.

A live ``require_token`` server backed by a provisioned
:class:`~repro.store.ResultStore` exercises the whole matrix — 401
missing/unknown, 403 revoked, 429 quota with ``Retry-After``, tenant
scoping of ``/results``, and the restart-survival acceptance pin.
"""

import json
import shutil

import pytest

from repro.serve import BackgroundServer, ServeConfig, ServeError
from repro.store import ResultStore


def canon(obj):
    """Canonical JSON for byte-identity comparisons."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


TOKENS = {
    "usi": "tok-usi-cs1-0001",
    "tiny": "tok-tiny-0001",
    "revoked": "tok-dead-0001",
    "expired": "tok-stale-0001",
}


@pytest.fixture(scope="module")
def store_server(tmp_path_factory):
    """One live ``require_token`` server over a provisioned store."""
    root = tmp_path_factory.mktemp("serve-store")
    db = root / "store.db"
    with ResultStore(db) as store:
        store.ensure_tenant("usi/cs1")
        store.issue_token("usi/cs1", token=TOKENS["usi"], label="ta")
        store.ensure_tenant("tiny")
        store.set_quota("tiny", max_results=0, retry_after_s=9.0)
        store.issue_token("tiny", token=TOKENS["tiny"])
        store.issue_token("usi/cs1", token=TOKENS["revoked"])
        store.revoke_token(TOKENS["revoked"])
        store.issue_token("usi/cs1", token=TOKENS["expired"],
                          expires_at=1.0)  # long past, on any clock
    config = ServeConfig(cache_dir=str(root / "cache"),
                         store_path=str(db),
                         require_token=True,
                         batch_window_s=0.01)
    with BackgroundServer(config) as bg:
        yield bg


class TestTokenAuth:
    def test_unprotected_paths_stay_open(self, store_server):
        client = store_server.client()  # no token
        assert client.healthz()["status"] == "ok"
        assert "mauritius" in client.flags()["flags"]

    def test_missing_token_is_401(self, store_server):
        client = store_server.client()
        with pytest.raises(ServeError) as err:
            client.run(flag="poland", scenario=3, seed=1)
        assert err.value.status == 401
        assert err.value.code == "token_missing"

    def test_401_carries_www_authenticate(self, store_server):
        status, headers, _ = store_server.client().request(
            "POST", "/run", {"flag": "poland", "scenario": 3, "seed": 1})
        assert status == 401
        assert headers.get("www-authenticate") == "Bearer"

    def test_unknown_token_is_401(self, store_server):
        client = store_server.client(token="never-issued")
        with pytest.raises(ServeError) as err:
            client.run(flag="poland", scenario=3, seed=1)
        assert err.value.status == 401
        assert err.value.code == "token_unknown"

    def test_expired_token_is_401_token_expired(self, store_server):
        # Distinct from token_unknown: the caller learns their
        # credential *was* real and just needs reissuing.
        client = store_server.client(token=TOKENS["expired"])
        with pytest.raises(ServeError) as err:
            client.run(flag="poland", scenario=3, seed=1)
        assert err.value.status == 401
        assert err.value.code == "token_expired"

    def test_revoked_token_is_403(self, store_server):
        client = store_server.client(token=TOKENS["revoked"])
        with pytest.raises(ServeError) as err:
            client.run(flag="poland", scenario=3, seed=1)
        assert err.value.status == 403
        assert err.value.code == "token_revoked"

    def test_every_protected_endpoint_is_gated(self, store_server):
        client = store_server.client()
        for method, path in [("POST", "/run"), ("POST", "/sweep"),
                             ("POST", "/task"), ("GET", "/results"),
                             ("GET", "/tenants")]:
            status, _, raw = client.request(method, path, {})
            body = json.loads(raw)
            assert status == 401, path
            assert body["error"]["code"] == "token_missing", path


class TestAuthorizedRequests:
    def test_run_persists_and_caches(self, store_server):
        client = store_server.client(token=TOKENS["usi"])
        cold = client.run(flag="poland", scenario=3, seed=7)
        warm = client.run(flag="poland", scenario=3, seed=7)
        assert cold["cached"] is False
        assert warm["cached"] is True
        assert canon(cold["trial"]) == canon(warm["trial"])

    def test_tenants_listing_is_scoped_to_the_token(self, store_server):
        reply = store_server.client(token=TOKENS["usi"]).tenants()
        paths = {t["path"] for t in reply["tenants"]}
        assert paths == {"usi/cs1"}  # not the parent, not "tiny"

    def test_results_default_to_token_tenant(self, store_server):
        client = store_server.client(token=TOKENS["usi"])
        client.run(flag="poland", scenario=3, seed=8)
        reply = client.results()
        assert reply["count"] >= 1
        assert all(r["tenant"] == "usi/cs1" for r in reply["results"])

    def test_digest_fetch_round_trips_the_payload(self, store_server):
        client = store_server.client(token=TOKENS["usi"])
        reply = client.run(flag="poland", scenario=3, seed=9)
        digest = client.results()["results"][0]["digest"]
        listing = client.results(digest=digest)
        assert listing["tenant"] == "usi/cs1"
        assert "trials" in listing["payload"]
        # The first row is the newest — the seed=9 run just stored.
        assert canon(listing["payload"]["trials"][0]) \
            == canon(reply["trial"])

    def test_limit_caps_the_listing(self, store_server):
        client = store_server.client(token=TOKENS["usi"])
        client.run(flag="poland", scenario=3, seed=10)
        client.run(flag="poland", scenario=3, seed=11)
        assert client.results(limit=1)["count"] == 1

    def test_bad_limit_is_400(self, store_server):
        client = store_server.client(token=TOKENS["usi"])
        with pytest.raises(ServeError) as err:
            client.results(limit=0)
        assert err.value.status == 400
        assert err.value.code == "bad_request"

    def test_unknown_tenant_inside_scope_is_404(self, store_server):
        client = store_server.client(token=TOKENS["usi"])
        with pytest.raises(ServeError) as err:
            client.results(tenant="usi/cs1/ghost")
        assert err.value.status == 404
        assert err.value.code == "tenant_not_found"

    def test_foreign_tenant_listing_is_403(self, store_server):
        client = store_server.client(token=TOKENS["usi"])
        for outside in ("tiny", "usi", "ghost"):
            with pytest.raises(ServeError) as err:
                client.results(tenant=outside)
            assert err.value.status == 403, outside
            assert err.value.code == "tenant_forbidden", outside

    def test_foreign_digest_fetch_is_403(self, store_server):
        """A ?tenant= override cannot reach another tenant's payloads,
        not even with a known digest."""
        usi = store_server.client(token=TOKENS["usi"])
        usi.run(flag="poland", scenario=3, seed=14)
        digest = usi.results()["results"][0]["digest"]
        tiny = store_server.client(token=TOKENS["tiny"])
        with pytest.raises(ServeError) as err:
            tiny.results(tenant="usi/cs1", digest=digest)
        assert err.value.status == 403
        assert err.value.code == "tenant_forbidden"

    def test_missing_digest_is_404(self, store_server):
        client = store_server.client(token=TOKENS["usi"])
        with pytest.raises(ServeError) as err:
            client.results(digest="0" * 64)
        assert err.value.status == 404
        assert err.value.code == "result_not_found"


class TestResultsPaging:
    def test_cursor_walk_covers_the_listing(self, store_server):
        client = store_server.client(token=TOKENS["usi"])
        for seed in (41, 42, 43, 44, 45):
            client.run(flag="poland", scenario=3, seed=seed)
        full = [r["digest"] for r in client.results()["results"]]
        assert len(full) >= 5
        paged, cursor = [], None
        while True:
            reply = client.results(limit=2, after=cursor)
            paged.extend(r["digest"] for r in reply["results"])
            cursor = reply.get("next")
            if cursor is None:
                break
        assert paged == full

    def test_final_page_has_no_next_cursor(self, store_server):
        client = store_server.client(token=TOKENS["usi"])
        client.run(flag="poland", scenario=3, seed=46)
        big = client.results(limit=10_000)
        assert "next" not in big

    def test_unknown_cursor_is_400_bad_cursor(self, store_server):
        client = store_server.client(token=TOKENS["usi"])
        with pytest.raises(ServeError) as err:
            client.results(after="f" * 64)
        assert err.value.status == 400
        assert err.value.code == "bad_cursor"

    def test_foreign_digest_is_not_a_valid_cursor(self, store_server):
        # tiny's listing cannot use a usi digest as its cursor.
        usi = store_server.client(token=TOKENS["usi"])
        usi.run(flag="poland", scenario=3, seed=47)
        digest = usi.results()["results"][0]["digest"]
        tiny = store_server.client(token=TOKENS["tiny"])
        with pytest.raises(ServeError) as err:
            tiny.results(after=digest)
        assert err.value.status == 400
        assert err.value.code == "bad_cursor"


class TestQuotas:
    def test_exhausted_quota_is_429_with_retry_after(self, store_server):
        client = store_server.client(token=TOKENS["tiny"])
        with pytest.raises(ServeError) as err:
            client.run(flag="poland", scenario=3, seed=12)
        assert err.value.status == 429
        assert err.value.code == "quota_exceeded"
        assert err.value.retry_after == 9.0

    def test_other_tenants_are_unaffected(self, store_server):
        client = store_server.client(token=TOKENS["usi"])
        reply = client.run(flag="poland", scenario=3, seed=13)
        assert reply["trial"]["runs"]


class TestAnonymousScoping:
    """A store-enabled server *without* --require-token still refuses
    cross-tenant reads: tokenless callers see the default tenant only."""

    @pytest.fixture(scope="class")
    def open_server(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("serve-open")
        db = root / "store.db"
        with ResultStore(db) as store:
            store.ensure_tenant("usi/cs1")
            store.put_result("secret", {"v": 1}, tenant="usi/cs1")
        config = ServeConfig(cache_dir=str(root / "cache"),
                             store_path=str(db),
                             batch_window_s=0.01)
        with BackgroundServer(config) as bg:
            yield bg

    def test_anonymous_results_stay_in_default_tenant(self, open_server):
        client = open_server.client()
        client.run(flag="poland", scenario=3, seed=31)
        reply = client.results()
        assert reply["count"] >= 1
        assert all(r["tenant"] == "public" for r in reply["results"])

    def test_anonymous_tenant_override_is_403(self, open_server):
        client = open_server.client()
        with pytest.raises(ServeError) as err:
            client.results(tenant="usi/cs1")
        assert err.value.status == 403
        assert err.value.code == "tenant_forbidden"
        with pytest.raises(ServeError) as err:
            client.results(tenant="usi/cs1", digest="secret")
        assert err.value.status == 403

    def test_anonymous_tenants_listing_shows_default_only(
            self, open_server):
        reply = open_server.client().tenants()
        assert {t["path"] for t in reply["tenants"]} <= {"public"}


class TestStoreDisabled:
    def test_store_endpoints_404_without_a_store(self, tmp_path):
        config = ServeConfig(cache_dir=str(tmp_path / "cache"),
                             batch_window_s=0.01)
        with BackgroundServer(config) as bg:
            for call in (bg.client().tenants, bg.client().results):
                with pytest.raises(ServeError) as err:
                    call()
                assert err.value.status == 404
                assert err.value.code == "store_disabled"


class TestDurability:
    def test_served_results_survive_restart_and_cache_loss(self, tmp_path):
        """The acceptance pin at the HTTP layer: a result computed by
        one server is served ``cached`` by a fresh server over the same
        store even after the cache directory is deleted — and the
        payload bytes are identical."""
        db = tmp_path / "store.db"
        cache_dir = tmp_path / "cache"
        fields = dict(flag="mauritius", scenario=3, seed=21)

        config = ServeConfig(cache_dir=str(cache_dir),
                             store_path=str(db), batch_window_s=0.01)
        with BackgroundServer(config) as bg:
            first = bg.client().run(**fields)
        assert first["cached"] is False
        shutil.rmtree(cache_dir)  # the disk cache is gone

        config = ServeConfig(cache_dir=str(tmp_path / "cache2"),
                             store_path=str(db), batch_window_s=0.01)
        with BackgroundServer(config) as bg:
            again = bg.client().run(**fields)
        assert again["cached"] is True
        assert canon(again["trial"]) == canon(first["trial"])
