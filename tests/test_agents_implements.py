"""Tests for repro.agents.implements."""

import numpy as np
import pytest

from repro.agents.implements import (
    CRAYON,
    DAUBER,
    STANDARD_KIT,
    THICK_MARKER,
    THIN_MARKER,
    ImplementModel,
    expected_speed_order,
    get_implement,
)


class TestStandardKit:
    def test_paper_speed_ordering(self):
        """Daubers fastest, then thick markers, then thin markers (III-C);
        crayons slowest (the complaints in Section IV)."""
        assert expected_speed_order() == [
            "dauber", "thick_marker", "thin_marker", "crayon",
        ]

    def test_dauber_vs_crayon_ratio(self):
        assert CRAYON.speed_factor / DAUBER.speed_factor > 2.5

    def test_only_crayon_faults(self):
        assert CRAYON.break_prob > 0
        for m in (DAUBER, THICK_MARKER, THIN_MARKER):
            assert m.break_prob == 0

    def test_get_implement(self):
        assert get_implement("dauber") is DAUBER
        with pytest.raises(KeyError, match="known"):
            get_implement("paintball_gun")

    def test_kit_complete(self):
        assert set(STANDARD_KIT) == {
            "dauber", "thick_marker", "thin_marker", "crayon",
        }


class TestImplementModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            ImplementModel("bad", speed_factor=0.0)
        with pytest.raises(ValueError):
            ImplementModel("bad", speed_factor=1.0, break_prob=1.5)
        with pytest.raises(ValueError):
            ImplementModel("bad", speed_factor=1.0, variability=-0.1)

    def test_sample_fault_never_for_zero_prob(self):
        rng = np.random.default_rng(0)
        assert all(
            THICK_MARKER.sample_fault(rng) is None for _ in range(100)
        )

    def test_sample_fault_rate_close_to_prob(self):
        rng = np.random.default_rng(0)
        heavy = ImplementModel("fragile", speed_factor=1.0,
                               break_prob=0.3, repair_time=5.0)
        faults = sum(
            1 for _ in range(2000) if heavy.sample_fault(rng) is not None
        )
        assert 0.25 < faults / 2000 < 0.35

    def test_fault_returns_repair_time(self):
        rng = np.random.default_rng(1)
        certain = ImplementModel("doomed", speed_factor=1.0,
                                 break_prob=0.999, repair_time=7.0)
        delays = [certain.sample_fault(rng) for _ in range(10)]
        assert any(d == 7.0 for d in delays)
