"""Tests for repro.metrics.contention."""

import numpy as np
import pytest

from repro.agents import make_team
from repro.flags import compile_flag, mauritius, scenario_partition
from repro.grid.palette import MAURITIUS_STRIPES
from repro.metrics.contention import (
    analyze_contention,
    contention_slowdown,
    serialization_bound,
)
from repro.metrics.speedup import MetricError
from repro.schedule.runner import marker_name, run_partition
from repro.grid.palette import Color


RESOURCES = [marker_name(c) for c in MAURITIUS_STRIPES]


def run_scenario_n(n, seed=0, copies=1):
    prog = compile_flag(mauritius())
    team = make_team("t", 4, np.random.default_rng(seed),
                     colors=list(MAURITIUS_STRIPES), copies=copies)
    return run_partition(scenario_partition(prog, n), team,
                         np.random.default_rng(seed))


class TestAnalyzeContention:
    def test_scenario3_uncontended(self):
        r = run_scenario_n(3)
        report = analyze_contention(r.trace, RESOURCES)
        assert not report.contended
        assert report.wait_fraction == 0.0
        assert report.n_waits == 0

    def test_scenario4_contended(self):
        r = run_scenario_n(4)
        report = analyze_contention(r.trace, RESOURCES)
        assert report.contended
        assert report.wait_fraction > 0.05
        assert report.n_waits > 0
        assert report.mean_wait > 0
        assert sum(report.per_agent_wait.values()) > 0

    def test_utilization_per_resource(self):
        r = run_scenario_n(4)
        report = analyze_contention(r.trace, RESOURCES)
        assert set(report.per_resource_utilization) == set(RESOURCES)
        for u in report.per_resource_utilization.values():
            assert 0.0 < u <= 1.0

    def test_extra_implements_reduce_contention(self):
        """The paper's 'extra resources would reduce the contention'."""
        single = analyze_contention(run_scenario_n(4, seed=3).trace, RESOURCES)
        quad = analyze_contention(run_scenario_n(4, seed=3, copies=4).trace,
                                  RESOURCES)
        assert quad.wait_fraction < single.wait_fraction


class TestSlowdownAndBound:
    def test_contention_slowdown(self):
        assert contention_slowdown(180, 140) == pytest.approx(180 / 140)
        with pytest.raises(MetricError):
            contention_slowdown(0, 1)

    def test_serialization_bound(self):
        assert serialization_bound(4, 1) == 1.0
        assert serialization_bound(4, 4) == 4.0
        assert serialization_bound(2, 8) == 2.0
        with pytest.raises(MetricError):
            serialization_bound(0, 1)

    def test_bound_holds_in_simulation(self):
        """With one marker of each color and every worker needing every
        color top-to-bottom, speedup vs 1 worker can't exceed ~#colors."""
        r1 = run_scenario_n(1, seed=9)
        r4 = run_scenario_n(4, seed=9)
        s = r1.true_makespan / r4.true_makespan
        assert s <= serialization_bound(4, 4) + 0.5
