"""Tests for repro.metrics.scalability — strong/weak scaling."""

import numpy as np
import pytest

from repro.agents import make_team
from repro.flags import compile_flag, cyclic, mauritius, single
from repro.grid.palette import MAURITIUS_STRIPES
from repro.metrics.scalability import (
    ScalingCurve,
    ScalingPoint,
    fits_gustafson,
    strong_scaling,
    weak_scaling,
)
from repro.metrics.speedup import MetricError
from repro.schedule.runner import run_partition


class TestCurveBasics:
    def test_must_start_at_p1(self):
        with pytest.raises(MetricError, match="P=1"):
            ScalingCurve("strong", [ScalingPoint(2, 10.0, -1)])

    def test_empty_rejected(self):
        with pytest.raises(MetricError):
            ScalingCurve("strong", [])

    def test_strong_speedups(self):
        curve = ScalingCurve("strong", [
            ScalingPoint(1, 100.0, -1),
            ScalingPoint(4, 25.0, -1),
        ])
        assert curve.speedups() == {1: 1.0, 4: 4.0}
        assert curve.efficiencies()[4] == 1.0

    def test_weak_speedups(self):
        # Perfect weak scaling: time stays flat while size grows.
        curve = ScalingCurve("weak", [
            ScalingPoint(1, 100.0, 96),
            ScalingPoint(4, 100.0, 384),
        ])
        assert curve.speedups()[4] == pytest.approx(4.0)
        assert curve.scaled_time_ratio()[4] == pytest.approx(1.0)


class TestAnalyticScaling:
    def test_strong_scaling_amdahl_toy(self):
        # T(P) = serial + parallel/P.
        def run(p):
            return 10.0 + 90.0 / p

        curve = strong_scaling(run, [1, 2, 4, 8])
        s = curve.speedups()
        assert s[1] == 1.0
        assert s[8] == pytest.approx(100.0 / (10.0 + 90.0 / 8))
        effs = curve.efficiencies()
        assert effs[8] < effs[2] < 1.0

    def test_weak_scaling_gustafson_toy(self):
        serial = 10.0
        per_unit = 1.0

        def run(p, size):
            return serial + per_unit * size / p

        curve = weak_scaling(run, [1, 2, 4, 8], base_size=90)
        assert fits_gustafson(curve, serial_fraction=0.1)

    def test_gustafson_check_rejects_strong_curve(self):
        curve = strong_scaling(lambda p: 100.0 / p, [1, 2])
        with pytest.raises(MetricError):
            fits_gustafson(curve, 0.1)

    def test_bad_weak_scaling_fails_gustafson(self):
        def run(p, size):
            return 10.0 + size  # no parallel benefit at all

        curve = weak_scaling(run, [1, 4], base_size=90)
        assert not fits_gustafson(curve, serial_fraction=0.1)


class TestSimulatedScaling:
    def _run_sim(self, p, rows, cols, seed):
        spec = mauritius()
        prog = compile_flag(spec, rows=rows, cols=cols)
        rng = np.random.default_rng(seed)
        team = make_team("t", p, rng, colors=list(MAURITIUS_STRIPES),
                         copies=p)
        part = single(prog) if p == 1 else cyclic(prog, p)
        return run_partition(part, team, rng).true_makespan

    def test_strong_scaling_on_simulator(self):
        curve = strong_scaling(
            lambda p: self._run_sim(p, 8, 12, 100 + p), [1, 2, 4],
        )
        s = curve.speedups()
        assert s[4] > s[2] > 1.0
        assert s[4] < 4.0  # sublinear, as the classroom observes

    def test_weak_scaling_on_simulator(self):
        """Grow the flag with the team: columns proportional to P."""

        def run(p, size):
            cols = size // 8
            return self._run_sim(p, 8, cols, 200 + p)

        curve = weak_scaling(run, [1, 2, 4], base_size=96)
        ratios = curve.scaled_time_ratio()
        # Time stays within ~45% of flat while the problem quadruples
        # (handoffs, warmup and stragglers eat some of it).
        assert 0.8 < ratios[4] < 1.45
        assert curve.speedups()[4] > 2.0
