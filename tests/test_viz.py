"""Tests for repro.viz — bars, tables, gantt."""

import numpy as np
import pytest

from repro.agents import make_team
from repro.flags import compile_flag, mauritius, scenario_partition
from repro.grid.palette import MAURITIUS_STRIPES
from repro.schedule.runner import run_partition
from repro.viz.bars import grouped_bar_chart, hbar_chart, sparkline
from repro.viz.gantt import render_agent_loads, render_gantt
from repro.viz.tables import format_table, paper_vs_measured


@pytest.fixture(scope="module")
def s4_trace():
    prog = compile_flag(mauritius())
    team = make_team("t", 4, np.random.default_rng(2),
                     colors=list(MAURITIUS_STRIPES))
    return run_partition(scenario_partition(prog, 4), team,
                         np.random.default_rng(2)).trace


class TestBars:
    def test_hbar_basic(self):
        out = hbar_chart({"a": 2.0, "b": 4.0}, width=10, title="demo")
        lines = out.splitlines()
        assert lines[0] == "demo"
        assert len(lines) == 3
        assert lines[2].count("█") > lines[1].count("█")

    def test_hbar_empty(self):
        assert hbar_chart({}) == ""
        assert hbar_chart({}, title="t") == "t"

    def test_hbar_vmax_scaling(self):
        full = hbar_chart({"x": 5.0}, width=10, vmax=5.0)
        assert full.count("█") == 10

    def test_grouped_chart_renders_na(self):
        out = grouped_bar_chart(
            {"Q1": {"A": 4.0, "B": None}},
            width=10,
        )
        assert "NA" in out
        assert "Q1" in out

    def test_grouped_chart_group_separation(self):
        out = grouped_bar_chart(
            {"Q1": {"A": 4.0}, "Q2": {"A": 3.0}},
        )
        assert "Q1" in out and "Q2" in out
        assert "" in out.splitlines()  # blank line between groups

    def test_sparkline_length(self):
        assert len(sparkline([1, 2, 3, 4])) == 4
        assert sparkline([]) == ""

    def test_sparkline_monotone_glyphs(self):
        s = sparkline([0.0, 1.0])
        assert s[0] == "▁" and s[1] == "█"


class TestTables:
    def test_format_alignment(self):
        out = format_table(["name", "value"], [["a", 1], ["bb", 22]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert all(len(l) == len(lines[0]) for l in lines[1:])

    def test_none_renders_na(self):
        out = format_table(["x"], [[None]])
        assert "NA" in out

    def test_markdown_mode(self):
        out = format_table(["a"], [[1]], markdown=True)
        assert out.splitlines()[1].startswith("|-")

    def test_paper_vs_measured_flags_diffs(self):
        out = paper_vs_measured(
            ["m1", "m2", "m3"],
            paper={"m1": 1.0, "m2": 2.0, "m3": None},
            measured={"m1": 1.0, "m2": 3.0, "m3": None},
        )
        lines = out.splitlines()
        assert "ok" in lines[2]
        assert "DIFF" in lines[3]
        assert "ok" in lines[4]

    def test_paper_vs_measured_na_mismatch(self):
        out = paper_vs_measured(
            ["m"], paper={"m": 1.0}, measured={"m": None},
        )
        assert "MISMATCH" in out


class TestGantt:
    def test_renders_all_agents(self, s4_trace):
        out = render_gantt(s4_trace, width=60)
        for agent in s4_trace.agents():
            if s4_trace.stroke_count(agent):
                assert agent in out

    def test_shows_waits(self, s4_trace):
        out = render_gantt(s4_trace, width=60, show_waits=True)
        assert "." in out

    def test_legend_optional(self, s4_trace):
        assert "legend" in render_gantt(s4_trace, legend=True)
        assert "legend" not in render_gantt(s4_trace, legend=False)

    def test_empty_trace(self):
        from repro.sim.trace import Trace
        assert render_gantt(Trace([])) == "(empty trace)"

    def test_agent_loads(self, s4_trace):
        out = render_agent_loads(s4_trace, width=20)
        assert "util=" in out
        assert out.count("|") >= 8  # two bars per agent row
