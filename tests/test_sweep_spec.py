"""Tests for repro.sweep.spec — grids, cells, and canonical keys."""

import json

import pytest

from repro.agents.student import FillStyle
from repro.faults import FaultPlan
from repro.faults.plan import ImplementFailure, StudentDropout, TransientStall
from repro.grid.palette import Color
from repro.schedule import AcquirePolicy
from repro.sweep import (
    ACTIVITY,
    SweepCell,
    SweepError,
    SweepSpec,
    fault_plan_from_dicts,
    fault_plan_to_dicts,
)


def cell(**kw):
    base = dict(flag="mauritius", scenario=3, team_size=4,
                policy=AcquirePolicy.HOLD_COLOR_RUN,
                style=FillStyle.SCRIBBLE)
    base.update(kw)
    return SweepCell(**base)


class TestSweepCell:
    def test_key_is_canonical_json(self):
        k = cell().key()
        assert json.loads(k)["flag"] == "mauritius"
        assert k == cell().key()  # stable across instances

    def test_key_sensitive_to_every_axis(self):
        keys = {
            cell().key(),
            cell(scenario=4).key(),
            cell(team_size=2).key(),
            cell(policy=AcquirePolicy.RELEASE_PER_STROKE).key(),
            cell(style=FillStyle.FULL).key(),
            cell(copies=2).key(),
            cell(rows=24, cols=36).key(),
        }
        assert len(keys) == 7

    def test_describe_is_human_readable(self):
        label = cell(scenario=ACTIVITY, copies=2).describe()
        assert "mauritius" in label and "activity" in label
        assert "copies=2" in label

    def test_invalid_scenario_rejected(self):
        with pytest.raises(SweepError):
            cell(scenario=5)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(SweepError):
            cell(team_size=0)
        with pytest.raises(SweepError):
            cell(copies=0)


class TestFaultPlanRoundTrip:
    def test_round_trip_preserves_plan(self):
        plan = FaultPlan.of([
            StudentDropout(at=10.0, worker=1),
            ImplementFailure(at=5.0, color=Color.RED),
            TransientStall(at=3.0, worker=0, duration=4.0),
        ])
        assert fault_plan_from_dicts(fault_plan_to_dicts(plan)) == plan

    def test_bad_record_raises(self):
        with pytest.raises(SweepError):
            fault_plan_from_dicts([{"kind": "alien_invasion"}])
        with pytest.raises(SweepError):
            fault_plan_from_dicts([{"kind": "student_dropout"}])

    def test_plan_folds_into_key(self):
        plan = FaultPlan.of([StudentDropout(at=10.0, worker=1)])
        assert cell().key() != cell(fault_label="chaos",
                                    fault_plan=plan).key()


class TestSweepSpec:
    def test_grid_is_full_cross_product(self):
        spec = SweepSpec(flags=("mauritius", "france"), scenarios=(3, 4),
                         team_sizes=(2, 4), n_trials=3)
        assert spec.n_cells == 8
        assert len(spec.cells()) == 8
        assert spec.total_trials == 24
        keys = {c.key() for c in spec.cells()}
        assert len(keys) == 8

    def test_single_helper(self):
        spec = SweepSpec.single("france", 2, n_trials=5, seed=9)
        assert spec.n_cells == 1
        only = spec.cells()[0]
        assert (only.flag, only.scenario) == ("france", 2)

    def test_empty_axis_rejected(self):
        with pytest.raises(SweepError):
            SweepSpec(flags=())

    def test_zero_trials_rejected(self):
        with pytest.raises(SweepError):
            SweepSpec(n_trials=0)

    def test_duplicate_fault_labels_rejected(self):
        with pytest.raises(SweepError):
            SweepSpec(fault_plans=(("clean", None), ("clean", None)))
