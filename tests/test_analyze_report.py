"""Tests for repro.analyze.report — issues and the report envelope."""

import json

import pytest

from repro.analyze import (
    ANALYSIS_VERSION,
    AnalysisError,
    AnalysisReport,
    Issue,
    Severity,
    analyze_scenario,
    canonical_dumps,
    error,
    issues_summary,
    warning,
)
from repro.flags import get_flag


def make_report(**overrides):
    report = analyze_scenario(get_flag("mauritius"), 3)
    if overrides:
        from dataclasses import replace
        report = replace(report, **overrides)
    return report


class TestIssue:
    def test_shorthands_set_severity(self):
        assert error("x", "m").severity is Severity.ERROR
        assert warning("x", "m").severity is Severity.WARNING

    def test_to_dict_fields(self):
        d = error("deadlock_cycle", "boom", subject="worker0").to_dict()
        assert d == {"code": "deadlock_cycle", "severity": "error",
                     "message": "boom", "subject": "worker0"}

    def test_issues_summary_joins(self):
        text = issues_summary([error("a", "one"), warning("b", "two")])
        assert text == "a: one; b: two"


class TestReportProperties:
    def test_clean_report_is_ok(self):
        report = make_report()
        assert report.ok
        assert report.errors == []
        assert report.warnings == []

    def test_errors_and_warnings_split(self):
        report = make_report(issues=(error("e", "bad"), warning("w", "meh")))
        assert not report.ok
        assert [i.code for i in report.errors] == ["e"]
        assert [i.code for i in report.warnings] == ["w"]

    def test_warnings_alone_stay_ok(self):
        report = make_report(issues=(warning("w", "meh"),))
        assert report.ok


class TestSerialization:
    def test_canonical_dumps_sorted_and_compact(self):
        assert canonical_dumps({"b": 1, "a": [1, 2]}) == b'{"a":[1,2],"b":1}'

    def test_to_json_is_canonical(self):
        report = make_report()
        raw = report.to_json()
        body = json.loads(raw)
        assert canonical_dumps(body) == raw
        assert body["analysis_version"] == ANALYSIS_VERSION
        assert body["ok"] is True

    def test_to_json_byte_stable(self):
        assert make_report().to_json() == make_report().to_json()

    def test_round_trip(self):
        report = make_report(issues=(error("e", "bad", subject="s"),))
        back = AnalysisReport.from_dict(json.loads(report.to_json()))
        assert back.to_json() == report.to_json()
        assert back.issues[0].severity is Severity.ERROR

    def test_version_mismatch_rejected(self):
        body = json.loads(make_report().to_json())
        body["analysis_version"] = ANALYSIS_VERSION + 1
        with pytest.raises(AnalysisError, match="version"):
            AnalysisReport.from_dict(body)

    def test_missing_field_rejected(self):
        body = json.loads(make_report().to_json())
        del body["speedup_bound"]
        with pytest.raises(AnalysisError, match="malformed"):
            AnalysisReport.from_dict(body)


class TestFormat:
    def test_format_mentions_bounds(self):
        text = make_report().format()
        assert "speedup bound" in text
        assert "work-span" in text
        assert "none possible" in text

    def test_format_shows_cycle_and_issues(self):
        report = analyze_scenario(get_flag("mauritius"), 4,
                                  hoard=True, rotate=True)
        text = report.format()
        assert "INVALID" in text
        assert "-[blue_marker]->" in text
        assert "[error] deadlock_cycle" in text
