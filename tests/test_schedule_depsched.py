"""Tests for repro.schedule.depsched — layered (dependency) scheduling."""

import numpy as np
import pytest

from repro.agents import make_team
from repro.flags import compile_flag, great_britain, jordan, mauritius
from repro.schedule.depsched import layered_speedup_curve, run_layered, split_ops
from repro.sim.events import EventKind


def team_for(spec, seed=0, n=4):
    """A team with enough duplicate implements that within-layer
    parallelism is implement-unconstrained — isolating the barrier effect
    (a single implement per color would serialize every layer)."""
    return make_team("t", n, np.random.default_rng(seed),
                     colors=list(spec.colors_used()), copies=max(n, 1))


class TestSplitOps:
    def test_even_split(self):
        prog = compile_flag(mauritius())
        chunks = split_ops(prog.ops, 4)
        assert [len(c) for c in chunks] == [24, 24, 24, 24]

    def test_uneven_split_front_loaded(self):
        chunks = split_ops(list(range(10)), 3)
        assert [len(c) for c in chunks] == [4, 3, 3]

    def test_more_workers_than_ops(self):
        chunks = split_ops([1, 2], 5)
        assert [len(c) for c in chunks] == [1, 1, 0, 0, 0]

    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError):
            split_ops([1], 0)


class TestRunLayered:
    @pytest.mark.parametrize("factory", [great_britain, jordan])
    def test_layered_flags_come_out_correct(self, factory):
        spec = factory()
        r = run_layered(spec, team_for(spec), 4, np.random.default_rng(0))
        assert r.correct
        assert r.strategy == "layer_barrier"

    def test_layer_finish_times_monotone(self):
        """Barriers order the layers: each finishes no earlier than the
        previous one."""
        spec = great_britain()
        r = run_layered(spec, team_for(spec), 4, np.random.default_rng(1))
        finishes = [r.extra["layer_finish"][l] for l in r.extra["layer_order"]]
        assert finishes == sorted(finishes)

    def test_no_stroke_precedes_dependency(self):
        """No stroke of layer k+1 may start before layer k's last end."""
        spec = jordan()
        r = run_layered(spec, team_for(spec), 3, np.random.default_rng(2))
        layer_order = r.extra["layer_order"]
        rank = {name: i for i, name in enumerate(layer_order)}
        last_end = {}
        first_start = {}
        for e in r.trace.events:
            if e.kind == EventKind.STROKE_START:
                lyr = e.data["layer"]
                first_start.setdefault(lyr, e.time)
            elif e.kind == EventKind.STROKE_END:
                lyr = e.data["layer"]
                last_end[lyr] = e.time
        for a, b in zip(layer_order, layer_order[1:]):
            assert first_start[b] >= last_end[a] - 1e-9

    def test_skip_optional_blank_default(self):
        spec = jordan()
        r = run_layered(spec, team_for(spec), 2, np.random.default_rng(3))
        assert "white_stripe" not in r.extra["layer_order"]
        assert r.correct

    def test_include_optional_layers(self):
        spec = jordan()
        r = run_layered(spec, team_for(spec), 2, np.random.default_rng(3),
                        skip_optional_blank=False)
        assert "white_stripe" in r.extra["layer_order"]
        assert r.correct

    def test_more_workers_not_slower(self):
        """P=4 should beat P=1 even with barriers (layers are big enough)."""
        spec = great_britain()
        r1 = run_layered(spec, team_for(spec, seed=5, n=1), 1,
                         np.random.default_rng(5))
        r4 = run_layered(spec, team_for(spec, seed=5, n=4), 4,
                         np.random.default_rng(5))
        assert r4.true_makespan < r1.true_makespan

    def test_small_layers_limit_parallelism(self):
        """The Jordan star is tiny: going from 4 to 8 workers helps little
        compared to the 1 -> 4 jump (dependencies limit parallelism)."""
        spec = jordan()
        times = {}
        for p in (1, 4, 8):
            r = run_layered(spec, team_for(spec, seed=6, n=p), p,
                            np.random.default_rng(6))
            times[p] = r.true_makespan
        gain_1_4 = times[1] / times[4]
        gain_4_8 = times[4] / times[8]
        assert gain_1_4 > 1.5
        assert gain_4_8 < gain_1_4


class TestLayeredCurve:
    def test_curve_shape(self):
        spec = great_britain()
        curve = layered_speedup_curve(
            spec,
            team_factory=lambda rng, n: make_team(
                "t", n, rng, colors=list(spec.colors_used()), copies=n
            ),
            workers=[1, 2],
            seed=7,
            trials=2,
        )
        assert set(curve) == {1, 2}
        assert all(len(v) == 2 for v in curve.values())
        med1 = np.median([r.true_makespan for r in curve[1]])
        med2 = np.median([r.true_makespan for r in curve[2]])
        assert med2 < med1
