"""Tests for team merging — the paper's 2-3 student teams that merge."""

import numpy as np
import pytest

from repro.agents import ImplementKit, make_team, merge_teams
from repro.agents.implements import CRAYON, DAUBER, THICK_MARKER
from repro.agents.team import TeamError
from repro.flags import compile_flag, mauritius, scenario_partition
from repro.grid.palette import Color, MAURITIUS_STRIPES
from repro.schedule.runner import run_partition


def small_team(name, seed, n=2, implement=THICK_MARKER):
    rng = np.random.default_rng(seed)
    return make_team(name, n, rng, colors=list(MAURITIUS_STRIPES),
                     implement=implement)


class TestMergeTeams:
    def test_students_pooled(self):
        merged = merge_teams(small_team("a", 1), small_team("b", 2))
        assert merged.size == 4
        assert merged.name == "a+b"
        assert "merged from a and b" in merged.notes[-1]

    def test_implements_pooled(self):
        """Two merged teams own two of each implement."""
        merged = merge_teams(small_team("a", 1), small_team("b", 2))
        assert merged.kit.copies == 2

    def test_first_teams_kinds_win(self):
        a = small_team("a", 1, implement=DAUBER)
        b = small_team("b", 2, implement=CRAYON)
        merged = merge_teams(a, b)
        assert merged.kit.implement_for(Color.RED) is DAUBER

    def test_b_fills_missing_colors(self):
        rng = np.random.default_rng(3)
        a = make_team("a", 2, rng, colors=[Color.RED, Color.BLUE])
        b = make_team("b", 2, rng, colors=list(MAURITIUS_STRIPES))
        merged = merge_teams(a, b)
        assert set(merged.kit.per_color) == set(MAURITIUS_STRIPES)

    def test_name_collision_rejected(self):
        a = small_team("same", 1)
        b = small_team("same", 2)
        with pytest.raises(TeamError, match="colliding"):
            merge_teams(a, b)

    def test_custom_name(self):
        merged = merge_teams(small_team("a", 1), small_team("b", 2),
                             name="megateam")
        assert merged.name == "megateam"


class TestMergedTeamsInScenarios:
    def test_merged_team_runs_scenario4_with_less_contention(self):
        """The pooled implements (2 of each color) cut scenario-4 waiting
        versus a plain 4-student team with singles."""
        prog = compile_flag(mauritius())

        plain = make_team("plain", 4, np.random.default_rng(10),
                          colors=list(MAURITIUS_STRIPES))
        r_plain = run_partition(scenario_partition(prog, 4), plain,
                                np.random.default_rng(10))

        merged = merge_teams(small_team("x", 10), small_team("y", 11))
        r_merged = run_partition(scenario_partition(prog, 4), merged,
                                 np.random.default_rng(10))

        assert r_merged.correct
        assert (r_merged.trace.total_wait_fraction()
                < r_plain.trace.total_wait_fraction())

    def test_merged_team_full_activity(self):
        from repro.schedule import run_core_activity
        merged = merge_teams(small_team("x", 20), small_team("y", 21))
        rng = np.random.default_rng(20)
        results = run_core_activity(mauritius(), merged, rng)
        assert all(r.correct for r in results.values())
