"""Repo-quality guards: public API documentation and export hygiene.

Meta-tests that keep the library honest as it grows: every public
function, class and method carries a docstring; every ``__all__`` entry
actually exists; every subpackage is importable on its own.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

SUBPACKAGES = [
    "repro.agents",
    "repro.classroom",
    "repro.data",
    "repro.depgraph",
    "repro.fabric",
    "repro.faults",
    "repro.flags",
    "repro.grid",
    "repro.metrics",
    "repro.obs",
    "repro.schedule",
    "repro.serve",
    "repro.sim",
    "repro.survey",
    "repro.sweep",
    "repro.viz",
]


def iter_all_modules():
    """Every repro module, recursively."""
    out = []
    for pkg_name in SUBPACKAGES + ["repro"]:
        pkg = importlib.import_module(pkg_name)
        out.append(pkg)
        if hasattr(pkg, "__path__"):
            for info in pkgutil.iter_modules(pkg.__path__):
                out.append(
                    importlib.import_module(f"{pkg_name}.{info.name}")
                )
    return out


class TestImportability:
    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_subpackage_imports_standalone(self, name):
        assert importlib.import_module(name) is not None

    def test_all_exports_exist(self):
        for module in iter_all_modules():
            for name in getattr(module, "__all__", []):
                assert hasattr(module, name), (
                    f"{module.__name__}.__all__ lists missing {name!r}"
                )


class TestDocstrings:
    def _public_members(self, module):
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if inspect.getmodule(obj) is not module:
                continue  # re-exports documented at their source
            if inspect.isfunction(obj) or inspect.isclass(obj):
                yield name, obj

    def test_every_module_has_docstring(self):
        for module in iter_all_modules():
            assert module.__doc__, f"{module.__name__} lacks a docstring"

    def test_every_public_function_and_class_documented(self):
        missing = []
        for module in iter_all_modules():
            for name, obj in self._public_members(module):
                if not inspect.getdoc(obj):
                    missing.append(f"{module.__name__}.{name}")
        assert not missing, f"undocumented public items: {missing}"

    def test_public_methods_documented(self):
        missing = []
        for module in iter_all_modules():
            for cls_name, cls in self._public_members(module):
                if not inspect.isclass(cls):
                    continue
                for mname, member in vars(cls).items():
                    if mname.startswith("_"):
                        continue
                    func = None
                    if inspect.isfunction(member):
                        func = member
                    elif isinstance(member, property):
                        func = member.fget
                    if func is not None and not inspect.getdoc(func):
                        missing.append(
                            f"{module.__name__}.{cls_name}.{mname}"
                        )
        assert not missing, f"undocumented public methods: {missing}"
