"""Tests for repro.obs.chrome — trace_event JSON schema validity."""

import json

import numpy as np
import pytest

from repro.agents import make_team
from repro.flags import mauritius
from repro.obs import (MICROS_PER_SIM_SECOND, RunObserver, Span,
                       dump_chrome_trace, span_to_trace_event,
                       to_chrome_trace)
from repro.schedule import get_scenario, run_scenario

VALID_PHASES = {"X", "i", "C", "M"}


@pytest.fixture(scope="module")
def observed():
    """One observed scenario-4 run shared across this module."""
    spec = mauritius()
    obs = RunObserver()
    team = make_team("team", 4, np.random.default_rng(42),
                     colors=list(spec.colors_used()))
    run_scenario(get_scenario(4), spec, team,
                 np.random.default_rng(42), observer=obs)
    return obs


class TestSpanConversion:
    def test_slice_event_fields(self):
        span = Span(sid=0, name="stroke", category="stroke", track="P1",
                    start=1.5, end=2.0, tags={"cell": (0, 1)})
        e = span_to_trace_event(span, tid=3)
        assert e["ph"] == "X"
        assert e["ts"] == 1.5 * MICROS_PER_SIM_SECOND
        assert e["dur"] == 0.5 * MICROS_PER_SIM_SECOND
        assert e["tid"] == 3 and e["pid"] == 1
        assert e["args"] == {"cell": [0, 1]}  # tuples become JSON arrays

    def test_instant_event_fields(self):
        span = Span(sid=0, name="handoff", category="handoff", track="P1",
                    start=3.0, end=3.0)
        e = span_to_trace_event(span, tid=1)
        assert e["ph"] == "i" and e["s"] == "t"
        assert "dur" not in e


class TestDocumentSchema:
    def test_top_level_shape(self, observed):
        doc = observed.chrome_trace()
        assert {"traceEvents", "displayTimeUnit", "otherData"} <= set(doc)
        assert doc["displayTimeUnit"] == "ms"
        assert isinstance(doc["traceEvents"], list) and doc["traceEvents"]

    def test_every_event_is_schema_valid(self, observed):
        for e in observed.chrome_trace()["traceEvents"]:
            assert e["ph"] in VALID_PHASES
            assert isinstance(e["name"], str) and e["name"]
            assert isinstance(e["pid"], int)
            assert isinstance(e["tid"], int)
            if e["ph"] != "M":
                assert isinstance(e["ts"], (int, float)) and e["ts"] >= 0
            if e["ph"] == "X":
                assert isinstance(e["dur"], (int, float)) and e["dur"] >= 0
            if e["ph"] == "C":
                assert "value" in e["args"]

    def test_every_slice_tid_has_thread_name_metadata(self, observed):
        events = observed.chrome_trace()["traceEvents"]
        named = {e["tid"] for e in events
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        used = {e["tid"] for e in events if e["ph"] in ("X", "i")}
        assert used <= named

    def test_worker_and_engine_tracks_present(self, observed):
        events = observed.chrome_trace()["traceEvents"]
        names = {e["args"]["name"] for e in events
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        assert "engine" in names
        assert sum(1 for n in names if n.startswith("team.P")) == 4

    def test_counter_track_emitted(self, observed):
        events = observed.chrome_trace()["traceEvents"]
        counters = [e for e in events if e["ph"] == "C"]
        assert counters
        assert all(e["name"] == "agents_waiting" for e in counters)
        # Scenario 4 contention: the counter actually moves.
        assert max(e["args"]["value"] for e in counters) >= 2

    def test_json_roundtrip_and_determinism(self, observed):
        text = observed.chrome_trace_json()
        doc = json.loads(text)
        assert doc == observed.chrome_trace()
        assert text == observed.chrome_trace_json()

    def test_dump_writes_and_returns_same_text(self, observed, tmp_path):
        out = tmp_path / "trace.json"
        with out.open("w") as fp:
            text = dump_chrome_trace(observed.chrome_trace(), fp)
        assert out.read_text() == text
        json.loads(out.read_text())

    def test_identical_seed_identical_json(self):
        def trace_json(seed):
            spec = mauritius()
            obs = RunObserver()
            team = make_team("team", 4, np.random.default_rng(seed),
                             colors=list(spec.colors_used()))
            run_scenario(get_scenario(4), spec, team,
                         np.random.default_rng(seed), observer=obs)
            return obs.chrome_trace_json()

        assert trace_json(9) == trace_json(9)

    def test_bare_span_list_export(self):
        spans = [Span(sid=0, name="process:P1", category="process",
                      track="P1", start=0.0, end=2.0)]
        doc = to_chrome_trace(spans, process_name="unit")
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert any(e["name"] == "process_name"
                   and e["args"]["name"] == "unit" for e in meta)
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(slices) == 1
