"""Tests for repro.grid.palette."""

import pytest

from repro.grid.palette import (
    ALL_COLORS,
    MAURITIUS_STRIPES,
    Color,
    color_name,
)


class TestColor:
    def test_blank_is_zero(self):
        assert Color.BLANK == 0
        assert Color.BLANK.is_blank

    def test_real_colors_positive(self):
        for c in ALL_COLORS:
            assert int(c) > 0
            assert not c.is_blank

    def test_from_name_case_insensitive(self):
        assert Color.from_name("red") is Color.RED
        assert Color.from_name("RED") is Color.RED
        assert Color.from_name("  Blue ") is Color.BLUE

    def test_from_name_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown color"):
            Color.from_name("magenta")

    def test_rgb_triples_valid(self):
        for c in Color:
            r, g, b = c.rgb
            assert all(0 <= v <= 255 for v in (r, g, b))

    def test_ansi_escape_shape(self):
        for c in Color:
            assert c.ansi.startswith("\x1b[48;2;")
            assert c.ansi.endswith("m")

    def test_all_colors_excludes_blank(self):
        assert Color.BLANK not in ALL_COLORS
        assert len(ALL_COLORS) == len(Color) - 1


class TestMauritiusStripes:
    def test_order_matches_flag(self):
        assert MAURITIUS_STRIPES == (
            Color.RED, Color.BLUE, Color.YELLOW, Color.GREEN,
        )

    def test_four_distinct_stripes(self):
        assert len(set(MAURITIUS_STRIPES)) == 4


class TestColorName:
    def test_from_int(self):
        assert color_name(1) == "red"
        assert color_name(0) == "blank"

    def test_from_enum(self):
        assert color_name(Color.GREEN) == "green"

    def test_invalid_code_raises(self):
        with pytest.raises(ValueError):
            color_name(99)
