"""The planted-race acceptance test for the race detector.

One known bug — a counter incremented outside the lock that guards the
rest of the class — must be caught by *both* layers: statically by the
lockset analysis (and the simlint LOCK001 rule), and dynamically by the
happens-before sanitizer, with byte-identical reports across repeated
runs.  The repo itself must come out clean through the same pipeline.
"""

import os
import pathlib
import subprocess
import sys
import threading

from repro.races import RaceSanitizer, analyze_source

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "tools"))

import simlint  # noqa: E402

# The planted bug: _published has a locked write (reset) *and* a bare
# increment in publish() — the classic lost-update beside the very lock
# that should cover it.  Modeled on the stream bus's counter shape.
LEAKY_BUS = (
    "import threading\n"
    "class LeakyBus:\n"
    "    def __init__(self):\n"
    "        self._lock = threading.Lock()\n"
    "        self._events = []\n"
    "        self._published = 0\n"
    "    def publish(self, event):\n"
    "        with self._lock:\n"
    "            self._events.append(event)\n"
    "        self._published += 1\n"
    "    def reset(self):\n"
    "        with self._lock:\n"
    "            self._events.clear()\n"
    "            self._published = 0\n")


class TestStaticLayer:
    def test_lockset_catches_the_planted_race(self):
        (cls,) = analyze_source(LEAKY_BUS)
        assert cls.guarded == {"_events": ("_lock",)}
        codes = sorted(i.code for i in cls.findings)
        assert codes == ["mixed_guard"]
        issue = cls.findings[0]
        assert issue.subject == "<snippet>::LeakyBus._published"
        assert "publish" in issue.message

    def test_simlint_lock001_catches_it_too(self):
        tree = simlint.ast.parse(LEAKY_BUS)
        scoped = list(simlint.iter_scoped(tree))
        violations = simlint.MixedGuardRule().check(
            pathlib.Path("snippet.py"), tree, scoped)
        assert [v[3] for v in violations] == ["LeakyBus._published"]
        assert "bare (line 10)" in violations[0][4]

    def test_fixed_twin_is_clean(self):
        fixed = LEAKY_BUS.replace(
            "        self._published += 1\n",
            "        with self._lock:\n"
            "            self._published += 1\n")
        (cls,) = analyze_source(fixed)
        assert cls.findings == ()
        assert cls.guarded == {"_events": ("_lock",),
                               "_published": ("_lock",)}


def run_leaky_bus(locked):
    """Runtime twin of LEAKY_BUS under the sanitizer; returns JSON."""
    san = RaceSanitizer()
    with san.patched():
        published = san.state("LeakyBus._published")
        published.write(0)
        lock = threading.Lock()

        def publish():
            with lock:
                pass  # the guarded _events mutation
            if locked:
                with lock:
                    published.write(published.read() + 1)
            else:
                published.write(published.read() + 1)

        threads = [threading.Thread(target=publish) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    return san.report().to_json()


class TestDynamicLayer:
    def test_sanitizer_catches_it_deterministically(self):
        reports = {run_leaky_bus(locked=False) for _ in range(3)}
        assert len(reports) == 1  # byte-identical across runs
        body = reports.pop().decode("utf-8")
        assert '"ok":false' in body
        assert "LeakyBus._published" in body
        assert "read/write" in body or "write/write" in body

    def test_locked_twin_is_clean_deterministically(self):
        reports = {run_leaky_bus(locked=True) for _ in range(3)}
        assert len(reports) == 1
        assert '"ok":true' in reports.pop().decode("utf-8")


class TestRepoIsClean:
    def test_racecheck_src_repro_exits_zero(self):
        # The ISSUE acceptance command, verbatim.
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "racecheck", "src/repro"],
            cwd=REPO, env=env, capture_output=True, text=True)
        assert proc.returncode == 0, proc.stdout + proc.stderr
