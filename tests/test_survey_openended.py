"""Tests for repro.survey.openended — theme coding round trips."""

import numpy as np
import pytest

from repro.survey.openended import (
    Question,
    Theme,
    code_comment,
    generate_comment,
    generate_corpus,
    theme_frequencies,
    themes_for_question,
)


class TestCodeComment:
    def test_contention_comment(self):
        themes = code_comment(
            "We kept waiting for the same marker the whole time."
        )
        assert Theme.CONTENTION in themes

    def test_diminishing_returns_comment(self):
        themes = code_comment(
            "I learned that more processors is not always faster."
        )
        assert Theme.DIMINISHING_RETURNS in themes

    def test_crayon_complaint(self):
        themes = code_comment("The crayons kept breaking, use markers!")
        assert Theme.BETTER_TOOLS in themes

    def test_multi_theme_comment(self):
        themes = code_comment(
            "The hands-on activity was engaging and showed how dividing "
            "the work matters."
        )
        assert Theme.HANDS_ON in themes
        assert Theme.WORKLOAD_DISTRIBUTION in themes

    def test_unrelated_comment_has_no_themes(self):
        assert code_comment("The weather was nice.") == set()

    def test_case_insensitive(self):
        assert Theme.CONTENTION in code_comment("CONTENTION was the issue")


class TestGeneration:
    def test_comment_for_every_theme(self, rng):
        for question in Question:
            for theme in themes_for_question(question):
                text = generate_comment(question, theme, rng)
                assert isinstance(text, str) and text

    def test_unknown_theme_question_pair_raises(self, rng):
        with pytest.raises(KeyError):
            generate_comment(Question.MOST_INTERESTING, Theme.BETTER_TOOLS,
                             rng)

    def test_round_trip_all_themes(self, rng):
        """Every generated comment is coded back to its intended theme."""
        for question in Question:
            corpus = generate_corpus(question, 100, rng)
            for text, intended in corpus:
                assert intended in code_comment(text), (question, text)

    def test_weighted_generation(self, rng):
        weights = {Theme.SHORTER: 1.0}
        corpus = generate_corpus(Question.IMPROVEMENTS, 30, rng,
                                 weights=weights)
        assert all(theme is Theme.SHORTER for _, theme in corpus)

    def test_zero_mass_weights_rejected(self, rng):
        with pytest.raises(ValueError):
            generate_corpus(Question.IMPROVEMENTS, 5, rng,
                            weights={Theme.CONTENTION: 1.0})


class TestFrequencies:
    def test_tabulation(self, rng):
        corpus = generate_corpus(Question.MOST_INTERESTING, 200, rng)
        freqs = theme_frequencies([text for text, _ in corpus])
        # Uniform mixture: every theme for this question should appear.
        for theme in themes_for_question(Question.MOST_INTERESTING):
            assert freqs.get(theme, 0) > 0
