"""Tests for repro.serve.batcher and repro.serve.admission."""

import asyncio

import pytest

from repro.obs import MetricsRegistry
from repro.serve.admission import AdmissionFull, AdmissionQueue
from repro.serve.batcher import MicroBatcher, run_batch
from repro.serve.protocol import RunRequest


def _task(seed):
    return RunRequest.from_body({"flag": "poland", "seed": seed}).task()


class TestRunBatch:
    def test_executes_tasks_in_order(self):
        payloads = run_batch([_task(0), _task(1)])
        assert [p["trial"] for p in payloads] == [0, 0]
        assert all("runs" in p for p in payloads)

    def test_batching_never_changes_a_result(self):
        alone = run_batch([_task(3)])[0]
        batched = run_batch([_task(1), _task(3), _task(5)])[1]
        assert batched == alone


class TestMicroBatcher:
    def _run(self, coro):
        return asyncio.run(coro)

    def test_concurrent_submissions_coalesce(self, monkeypatch):
        seen = []

        def fake_batch(tasks):
            seen.append(len(tasks))
            return [{"task": t} for t in tasks]

        monkeypatch.setattr("repro.serve.batcher.run_batch", fake_batch)

        async def main():
            batcher = MicroBatcher(window_s=0.2, max_batch=8)
            batcher.start()
            results = await asyncio.gather(
                batcher.submit({"n": 1}), batcher.submit({"n": 2}),
                batcher.submit({"n": 3}))
            await batcher.stop()
            return results

        results = self._run(main())
        assert seen == [3]
        assert [size for _, size in results] == [3, 3, 3]
        assert [payload["task"]["n"] for payload, _ in results] == [1, 2, 3]

    def test_max_batch_splits_dispatches(self, monkeypatch):
        seen = []
        monkeypatch.setattr(
            "repro.serve.batcher.run_batch",
            lambda tasks: seen.append(len(tasks)) or [{}] * len(tasks))

        async def main():
            batcher = MicroBatcher(window_s=0.2, max_batch=2)
            batcher.start()
            await asyncio.gather(*[batcher.submit({"n": i})
                                   for i in range(4)])
            await batcher.stop()

        self._run(main())
        assert seen == [2, 2]

    def test_compute_failure_fails_every_waiter(self, monkeypatch):
        def boom(tasks):
            raise RuntimeError("worker died")

        monkeypatch.setattr("repro.serve.batcher.run_batch", boom)

        async def main():
            batcher = MicroBatcher(window_s=0.05, max_batch=4)
            batcher.start()
            results = await asyncio.gather(
                batcher.submit({"n": 1}), batcher.submit({"n": 2}),
                return_exceptions=True)
            await batcher.stop()
            return results

        results = self._run(main())
        assert all(isinstance(r, RuntimeError) for r in results)

    def test_stop_drains_queued_work(self, monkeypatch):
        monkeypatch.setattr("repro.serve.batcher.run_batch",
                            lambda tasks: [{}] * len(tasks))

        async def main():
            batcher = MicroBatcher(window_s=0.01, max_batch=4)
            batcher.start()
            pending = [asyncio.ensure_future(batcher.submit({"n": i}))
                       for i in range(3)]
            await asyncio.sleep(0)  # let submissions enqueue
            await batcher.stop()
            return await asyncio.gather(*pending)

        results = self._run(main())
        assert len(results) == 3

    def test_submit_after_stop_rejected(self):
        async def main():
            batcher = MicroBatcher()
            batcher.start()
            await batcher.stop()
            with pytest.raises(RuntimeError):
                await batcher.submit({"n": 1})

        self._run(main())

    def test_batch_size_metrics_recorded(self, monkeypatch):
        monkeypatch.setattr("repro.serve.batcher.run_batch",
                            lambda tasks: [{}] * len(tasks))
        registry = MetricsRegistry()

        async def main():
            batcher = MicroBatcher(window_s=0.2, max_batch=8,
                                   registry=registry)
            batcher.start()
            await asyncio.gather(batcher.submit({"n": 1}),
                                 batcher.submit({"n": 2}))
            await batcher.stop()

        self._run(main())
        hist = registry.histogram("serve_batch_size")
        assert hist.count() == 1
        assert hist.sum() == 2.0
        assert registry.counter("serve_batched_trials_total").value() == 2

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            MicroBatcher(window_s=-1)
        with pytest.raises(ValueError):
            MicroBatcher(max_batch=0)


class TestAdmissionQueue:
    def test_acquire_release_tracks_depth(self):
        q = AdmissionQueue(2)
        q.acquire()
        q.acquire()
        assert q.depth == 2
        q.release()
        assert q.depth == 1

    def test_full_raises_with_retry_hint(self):
        q = AdmissionQueue(1, retry_after_s=2.5)
        q.acquire()
        with pytest.raises(AdmissionFull) as err:
            q.acquire()
        assert err.value.retry_after == 2.5
        assert q.depth == 1  # failed acquire takes no slot

    def test_slot_context_manager_releases_on_error(self):
        q = AdmissionQueue(1)
        with pytest.raises(RuntimeError):
            with q.slot():
                assert q.depth == 1
                raise RuntimeError("handler blew up")
        assert q.depth == 0

    def test_release_without_acquire_rejected(self):
        with pytest.raises(RuntimeError):
            AdmissionQueue(1).release()

    def test_metrics_track_depth_and_rejects(self):
        registry = MetricsRegistry()
        q = AdmissionQueue(1, registry=registry)
        gauge = registry.gauge("serve_queue_depth")
        q.acquire()
        assert gauge.value() == 1
        with pytest.raises(AdmissionFull):
            q.acquire()
        assert registry.counter(
            "serve_admission_rejects_total").value() == 1
        q.release()
        assert gauge.value() == 0

    def test_limit_must_be_positive(self):
        with pytest.raises(ValueError):
            AdmissionQueue(0)
