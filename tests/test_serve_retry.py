"""Tests for repro.serve.retry — backoff, jitter, deadlines."""

import random

import pytest

from repro.serve import RetryExhausted, RetryPolicy, call_with_retry
from repro.serve.client import ServeClient, ServeError


class FakeClock:
    """Virtual time: sleeps advance the clock, nothing really waits."""

    def __init__(self):
        self.now = 0.0
        self.sleeps = []

    def clock(self):
        return self.now

    def sleep(self, seconds):
        self.sleeps.append(seconds)
        self.now += seconds


class TestRetryPolicy:
    def test_defaults_are_sane(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 4
        assert 429 in policy.retry_statuses

    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"base_s": 0.0},
        {"cap_s": -1.0},
        {"deadline_s": 0.0},
    ])
    def test_bad_limits_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_backoff_ceiling_doubles_then_caps(self):
        policy = RetryPolicy(base_s=0.1, cap_s=0.5)
        assert policy.backoff_ceiling(0) == pytest.approx(0.1)
        assert policy.backoff_ceiling(1) == pytest.approx(0.2)
        assert policy.backoff_ceiling(2) == pytest.approx(0.4)
        assert policy.backoff_ceiling(3) == pytest.approx(0.5)  # capped
        assert policy.backoff_ceiling(10) == pytest.approx(0.5)

    def test_should_retry_status(self):
        policy = RetryPolicy()
        assert policy.should_retry_status(429)
        assert policy.should_retry_status(503)
        assert not policy.should_retry_status(404)
        assert not policy.should_retry_status(500)


class TestCallWithRetry:
    def _classify_all(self, exc):
        return True, None

    def test_first_success_needs_no_sleep(self):
        fake = FakeClock()
        result = call_with_retry(lambda: 42, RetryPolicy(),
                                 classify=self._classify_all,
                                 sleep=fake.sleep, clock=fake.clock)
        assert result == 42
        assert fake.sleeps == []

    def test_transient_failures_then_success(self):
        fake = FakeClock()
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("connection reset")
            return "ok"

        result = call_with_retry(flaky, RetryPolicy(),
                                 classify=self._classify_all,
                                 sleep=fake.sleep, clock=fake.clock)
        assert result == "ok"
        assert len(calls) == 3
        assert len(fake.sleeps) == 2

    def test_non_retryable_raises_immediately(self):
        fake = FakeClock()
        calls = []

        def bad():
            calls.append(1)
            raise ValueError("a 404 would classify like this")

        with pytest.raises(RetryExhausted) as err:
            call_with_retry(bad, RetryPolicy(),
                            classify=lambda exc: (False, None),
                            sleep=fake.sleep, clock=fake.clock)
        assert len(calls) == 1
        assert err.value.attempts == 1
        assert isinstance(err.value.last, ValueError)
        assert err.value.__cause__ is err.value.last

    def test_attempts_exhausted(self):
        fake = FakeClock()
        calls = []

        def always_down():
            calls.append(1)
            raise OSError("still down")

        with pytest.raises(RetryExhausted) as err:
            call_with_retry(always_down, RetryPolicy(max_attempts=3),
                            classify=self._classify_all,
                            sleep=fake.sleep, clock=fake.clock)
        assert len(calls) == 3
        assert err.value.attempts == 3
        assert len(fake.sleeps) == 2  # no sleep after the final failure

    def test_sleeps_respect_full_jitter_ceilings(self):
        fake = FakeClock()
        policy = RetryPolicy(max_attempts=5, base_s=0.1, cap_s=0.3,
                             deadline_s=100.0)

        def always_down():
            raise OSError("down")

        with pytest.raises(RetryExhausted):
            call_with_retry(always_down, policy,
                            classify=self._classify_all,
                            sleep=fake.sleep, clock=fake.clock)
        ceilings = [0.1, 0.2, 0.3, 0.3]
        assert len(fake.sleeps) == 4
        for slept, ceiling in zip(fake.sleeps, ceilings):
            assert 0.0 <= slept <= ceiling

    def test_jitter_is_deterministic_per_seed(self):
        def run(seed):
            fake = FakeClock()
            with pytest.raises(RetryExhausted):
                call_with_retry(
                    lambda: (_ for _ in ()).throw(OSError("down")),
                    RetryPolicy(jitter_seed=seed),
                    classify=self._classify_all,
                    sleep=fake.sleep, clock=fake.clock)
            return fake.sleeps

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_retry_after_hint_floors_the_sleep(self):
        fake = FakeClock()
        policy = RetryPolicy(base_s=0.01, cap_s=0.02, deadline_s=100.0)

        def throttled():
            raise OSError("429-ish")

        with pytest.raises(RetryExhausted):
            call_with_retry(throttled, policy,
                            classify=lambda exc: (True, 5.0),
                            sleep=fake.sleep, clock=fake.clock)
        # Jitter could draw at most 0.02s; the hint lifts every sleep.
        assert all(s >= 5.0 for s in fake.sleeps)

    def test_deadline_stops_the_dance(self):
        fake = FakeClock()
        policy = RetryPolicy(max_attempts=100, base_s=10.0, cap_s=10.0,
                             deadline_s=2.0)
        calls = []

        def always_down():
            calls.append(1)
            raise OSError("down")

        with pytest.raises(RetryExhausted) as err:
            call_with_retry(always_down, policy,
                            classify=lambda exc: (True, 10.0),
                            sleep=fake.sleep, clock=fake.clock)
        # The first 10s floor already crosses the 2s deadline: one
        # attempt, zero sleeps, fail fast instead of waiting pointlessly.
        assert len(calls) == 1
        assert fake.sleeps == []
        assert err.value.attempts == 1

    def test_injected_rng_is_used(self):
        fake = FakeClock()
        rng = random.Random(123)
        expected_first = random.Random(123).uniform(
            0.0, RetryPolicy().backoff_ceiling(0))
        calls = []

        def once_down():
            calls.append(1)
            if len(calls) == 1:
                raise OSError("down")
            return "ok"

        assert call_with_retry(once_down, RetryPolicy(),
                               classify=self._classify_all,
                               sleep=fake.sleep, clock=fake.clock,
                               rng=rng) == "ok"
        assert fake.sleeps == [expected_first]


class FakeTransport:
    """Scripted (status, headers, body) replies for ServeClient.request."""

    def __init__(self, replies):
        self.replies = list(replies)
        self.calls = 0

    def __call__(self, method, path, body=None):
        self.calls += 1
        reply = self.replies.pop(0)
        if isinstance(reply, Exception):
            raise reply
        return reply


def _client(policy, replies, monkeypatch):
    client = ServeClient(retry=policy)
    transport = FakeTransport(replies)
    monkeypatch.setattr(client, "request", transport)
    return client, transport


OK = (200, {}, b'{"protocol": 1, "status": "ok"}')
BUSY = (429, {"retry-after": "0.001"}, b'{"error": {"code": "x"}}')
DOWN = (503, {}, b'{"error": {"code": "unavailable"}}')
MISSING = (404, {}, b'{"error": {"code": "flag_not_found"}}')


class TestServeClientRetry:
    def test_no_policy_keeps_fail_fast(self, monkeypatch):
        client, transport = _client(None, [DOWN], monkeypatch)
        with pytest.raises(ServeError):
            client.healthz()
        assert transport.calls == 1

    def test_transient_statuses_are_retried(self, monkeypatch):
        policy = RetryPolicy(base_s=0.001, cap_s=0.002, deadline_s=5.0)
        client, transport = _client(policy, [DOWN, BUSY, OK], monkeypatch)
        assert client.healthz()["status"] == "ok"
        assert transport.calls == 3

    def test_connection_errors_are_retried(self, monkeypatch):
        policy = RetryPolicy(base_s=0.001, cap_s=0.002, deadline_s=5.0)
        client, transport = _client(
            policy, [ConnectionRefusedError("nope"), OK], monkeypatch)
        assert client.healthz()["status"] == "ok"
        assert transport.calls == 2

    def test_non_retryable_status_raises_at_once(self, monkeypatch):
        policy = RetryPolicy(base_s=0.001, cap_s=0.002, deadline_s=5.0)
        client, transport = _client(policy, [MISSING, OK], monkeypatch)
        with pytest.raises(ServeError) as err:
            client.run(flag="atlantis")
        assert err.value.status == 404
        assert transport.calls == 1

    def test_exhaustion_surfaces_the_last_serve_error(self, monkeypatch):
        policy = RetryPolicy(max_attempts=2, base_s=0.001, cap_s=0.002,
                             deadline_s=5.0)
        client, transport = _client(policy, [BUSY, BUSY, OK], monkeypatch)
        with pytest.raises(ServeError) as err:
            client.healthz()
        assert err.value.status == 429
        assert isinstance(err.value.__cause__, RetryExhausted)
        assert transport.calls == 2
