"""Tests for repro.survey.analysis — the Section V-A prose claims."""

import pytest

from repro.survey import (
    Aspect,
    ResponseSet,
    consistently_low,
    highest_engagement,
    item_outliers,
    rank_institutions,
    struggling_concepts,
    summarize,
    synthesize_all,
)


@pytest.fixture(scope="module")
def sets_():
    return synthesize_all(seed=11)


class TestRankings:
    def test_webster_tops_engagement(self, sets_):
        ranked = rank_institutions(sets_, Aspect.ENGAGEMENT)
        assert ranked[0][0] == "Webster"

    def test_knox_bottom_everywhere(self, sets_):
        """'Knox consistently had lower engagement scores (~4.0)' and
        instructor ratings 'high in all universities except Knox'.
        (For understanding, TNTech's 3.0 on loops drags it below Knox —
        exactly as Table II reads — so Knox is bottom-two there.)"""
        for aspect in (Aspect.ENGAGEMENT, Aspect.INSTRUCTOR):
            ranked = rank_institutions(sets_, aspect)
            assert ranked[-1][0] == "Knox", aspect
            assert ranked[-1][1] == pytest.approx(4.0)
        bottom_two = [n for n, _ in
                      rank_institutions(sets_, Aspect.UNDERSTANDING)[-2:]]
        assert "Knox" in bottom_two

    def test_usi_high_engagement(self, sets_):
        """USI is among the top engagement sites (with Webster)."""
        top3 = [name for name, _ in
                rank_institutions(sets_, Aspect.ENGAGEMENT)[:3]]
        assert "USI" in top3
        assert "Webster" in top3

    def test_instructor_ratings_near_ceiling(self, sets_):
        """Instructor ratings 'consistently high (mostly 5.0)'."""
        ranked = rank_institutions(sets_, Aspect.INSTRUCTOR)
        non_knox = [v for name, v in ranked if name != "Knox"]
        assert all(v == pytest.approx(5.0) for v in non_knox)

    def test_every_site_ranked(self, sets_):
        assert len(rank_institutions(sets_)) == 6


class TestProseClaims:
    def test_highest_engagement_includes_webster(self, sets_):
        assert "Webster" in highest_engagement(sets_, top=2)

    def test_knox_is_the_consistently_low_site(self, sets_):
        assert consistently_low(sets_) == ["Knox"]

    def test_montclair_low_on_stimulated_interest(self, sets_):
        """'Montclair scoring lower in stimulating interest in parallel
        computing' (3.5 vs others' 4.0-5.0)."""
        outliers = item_outliers(sets_, "stimulated_interest")
        assert outliers.get("Montclair") == "low"

    def test_loops_struggle_at_hpu_and_tntech(self, sets_):
        """'HPU and TNTech show a lower perceived learning of loops
        (3.0)'."""
        struggles = struggling_concepts(sets_)
        assert struggles["increased_loops_understanding"] == ["HPU", "TNTech"]

    def test_no_other_understanding_item_struggles(self, sets_):
        struggles = struggling_concepts(sets_, threshold=3.0)
        assert set(struggles) == {"increased_loops_understanding"}


class TestSummaries:
    def test_summarize_structure(self, sets_):
        summaries = summarize(sets_)
        assert len(summaries) == 6
        for s in summaries:
            assert s.overall is not None
            assert 1.0 <= s.overall <= 5.0
            assert set(s.aspect_medians) == set(Aspect)

    def test_empty_response_set(self):
        summaries = summarize({"Empty": ResponseSet("Empty")})
        assert summaries[0].overall is None

    def test_item_outliers_empty_for_unadministered(self):
        assert item_outliers({"Empty": ResponseSet("Empty")},
                             "had_fun") == {}
