"""Tests for repro.metrics.quality — the Section IV coloring-quality grade."""

import numpy as np
import pytest

from repro.agents import make_team
from repro.agents.student import FillStyle
from repro.flags import compile_flag, mauritius, single
from repro.grid.canvas import Canvas
from repro.grid.palette import Color, MAURITIUS_STRIPES
from repro.metrics.quality import (
    QualityReport,
    drift_toward_minimal,
    grade_run,
    speed_quality_frontier,
)
from repro.metrics.speedup import MetricError
from repro.schedule.runner import run_partition
from repro.sim.trace import Trace


def run_with_style(style, seed=0):
    prog = compile_flag(mauritius())
    team = make_team("t", 1, np.random.default_rng(seed),
                     colors=list(MAURITIUS_STRIPES))
    return run_partition(single(prog), team, np.random.default_rng(seed),
                         style=style)


class TestGradeRun:
    def test_basic_report(self):
        r = run_with_style(FillStyle.SCRIBBLE)
        report = grade_run(r.canvas, r.trace)
        assert report.cells == 96
        assert report.mean_coverage == pytest.approx(
            FillStyle.SCRIBBLE.coverage
        )
        assert report.mean_stroke_time > 0
        assert report.stroke_time_cv >= 0

    def test_empty_canvas_rejected(self):
        c = Canvas(2, 2)
        with pytest.raises(MetricError, match="nothing"):
            grade_run(c, Trace([]))

    def test_full_style_covers_more(self):
        full = grade_run(*_cv(run_with_style(FillStyle.FULL, 1)))
        minimal = grade_run(*_cv(run_with_style(FillStyle.MINIMAL, 1)))
        assert full.mean_coverage > minimal.mean_coverage
        assert full.mean_stroke_time > minimal.mean_stroke_time

    def test_uniformity_flag(self):
        r = run_with_style(FillStyle.SCRIBBLE, 2)
        report = grade_run(r.canvas, r.trace)
        # Warmup inflates early strokes; CV still stays moderate.
        assert report.stroke_time_cv < 1.0


def _cv(result):
    return result.canvas, result.trace


class TestFrontier:
    def make_report(self, time, coverage):
        return QualityReport(mean_coverage=coverage, min_coverage=coverage,
                             stroke_time_cv=0.1, mean_stroke_time=time,
                             cells=96)

    def test_all_styles_on_frontier_when_tradeoff_clean(self):
        reports = {
            "minimal": self.make_report(1.0, 0.25),
            "scribble": self.make_report(2.0, 0.7),
            "full": self.make_report(3.5, 1.0),
        }
        assert speed_quality_frontier(reports) == [
            "minimal", "scribble", "full",
        ]

    def test_dominated_style_excluded(self):
        reports = {
            "minimal": self.make_report(1.0, 0.25),
            "bad": self.make_report(2.0, 0.2),       # slower AND sparser
            "full": self.make_report(3.5, 1.0),
        }
        assert "bad" not in speed_quality_frontier(reports)

    def test_simulated_styles_form_full_frontier(self):
        reports = {
            style.name: grade_run(*_cv(run_with_style(style, 3)))
            for style in FillStyle
        }
        frontier = speed_quality_frontier(reports)
        assert frontier == ["MINIMAL", "SCRIBBLE", "FULL"]


class TestDrift:
    def test_detects_decline(self):
        seq = [1.0] * 10 + [0.9] * 30 + [0.3] * 10
        assert drift_toward_minimal(seq)

    def test_no_drift_when_steady(self):
        assert not drift_toward_minimal([0.7] * 40)

    def test_needs_enough_strokes(self):
        with pytest.raises(MetricError):
            drift_toward_minimal([1.0] * 5)
