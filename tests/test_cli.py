"""Tests for repro.cli — the command-line interface."""

import json
import os
import pathlib

import pytest

from repro.cli import build_parser, main

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_registered(self):
        parser = build_parser()
        for cmd in ("flags", "render", "scenario", "activity", "session",
                    "depgraph", "analyze", "racecheck", "dryrun", "grade",
                    "tables", "animate", "slides", "debrief", "report",
                    "chaos", "sweep", "fabric", "trace", "serve", "tutor"):
            # Minimal arg sets per command.
            argv = {
                "flags": ["flags"],
                "render": ["render", "mauritius"],
                "scenario": ["scenario", "mauritius", "1"],
                "activity": ["activity"],
                "session": ["session", "USI"],
                "depgraph": ["depgraph", "jordan"],
                "analyze": ["analyze", "mauritius"],
                "racecheck": ["racecheck", "src/repro"],
                "dryrun": ["dryrun", "mauritius"],
                "grade": ["grade"],
                "tables": ["tables"],
                "animate": ["animate", "mauritius", "1"],
                "slides": ["slides", "mauritius", "1"],
                "debrief": ["debrief", "USI"],
                "report": ["report", "USI"],
                "chaos": ["chaos", "mauritius"],
                "sweep": ["sweep"],
                "fabric": ["fabric"],
                "trace": ["trace", "mauritius"],
                "serve": ["serve", "--port", "0"],
                "tutor": ["tutor", "--lesson", "speedup"],
            }[cmd]
            args = parser.parse_args(argv)
            assert args.command == cmd


class TestCommands:
    def test_flags(self, capsys):
        assert main(["flags"]) == 0
        out = capsys.readouterr().out
        assert "mauritius" in out and "jordan" in out

    def test_render_ascii(self, capsys):
        assert main(["render", "mauritius", "--format", "ascii"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0] == "R" * 12

    def test_render_svg(self, capsys):
        assert main(["render", "poland", "--format", "svg"]) == 0
        assert capsys.readouterr().out.startswith("<svg")

    def test_render_custom_size(self, capsys):
        assert main(["render", "mauritius", "--format", "ascii",
                     "--rows", "4", "--cols", "8"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 4 and len(lines[0]) == 8

    def test_scenario(self, capsys):
        assert main(["scenario", "mauritius", "3", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "four_by_stripe" in out
        assert "correct flag  : yes" in out

    def test_scenario4_shows_waiting(self, capsys):
        assert main(["scenario", "mauritius", "4", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "waiting share" in out

    def test_activity(self, capsys):
        assert main(["activity", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "scenario1_repeat" in out
        assert "scenario4" in out

    def test_session(self, capsys):
        assert main(["session", "USI", "--seed", "1", "--teams", "2"]) == 0
        out = capsys.readouterr().out
        assert "University of Southern Indiana" in out
        assert "debrief:" in out

    def test_depgraph_text(self, capsys):
        assert main(["depgraph", "jordan", "--processors", "2"]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        assert "list schedule on P=2" in out

    def test_depgraph_dot(self, capsys):
        assert main(["depgraph", "jordan", "--dot"]) == 0
        assert capsys.readouterr().out.startswith("digraph")

    def test_analyze_all_scenarios(self, capsys):
        assert main(["analyze", "mauritius"]) == 0
        out = capsys.readouterr().out
        assert "scenario 1: ok" in out and "scenario 4: ok" in out
        assert "speedup bound" in out

    def test_analyze_deadlock_exits_nonzero(self, capsys):
        assert main(["analyze", "mauritius", "--scenario", "4",
                     "--hoard", "--rotate"]) == 1
        out = capsys.readouterr().out
        assert "INVALID" in out
        assert "-[blue_marker]->" in out

    def test_analyze_json(self, capsys):
        assert main(["analyze", "mauritius", "--scenario", "3",
                     "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True
        assert report["speedup_bound"] == 4.0

    def test_racecheck_repo_is_clean(self, capsys, monkeypatch):
        # The ISSUE acceptance gate, in-process: the shipped tree plus
        # the shipped allowlist come out clean.
        monkeypatch.chdir(REPO_ROOT)
        assert main(["racecheck", "src/repro"]) == 0
        assert "racecheck [lockset]: clean" in capsys.readouterr().out

    def test_racecheck_json(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        assert main(["racecheck", "src/repro", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True
        assert report["layer"] == "lockset"
        assert report["stats"]["guarded_attrs"] >= 1

    def test_racecheck_planted_race_exits_nonzero(
            self, capsys, monkeypatch, tmp_path):
        (tmp_path / "racy.py").write_text(
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._n = 0\n"
            "    def bump(self):\n"
            "        with self._lock:\n"
            "            self._n += 1\n"
            "    def peek(self):\n"
            "        return self._n\n")
        monkeypatch.chdir(tmp_path)
        assert main(["racecheck", "racy.py"]) == 1
        out = capsys.readouterr().out
        assert "RACY" in out and "unguarded_read" in out

    def test_racecheck_bad_allowlist_is_usage_error(
            self, capsys, monkeypatch, tmp_path):
        (tmp_path / "clean.py").write_text("x = 1\n")
        (tmp_path / "allow.txt").write_text("code x.py::C._n\n")
        monkeypatch.chdir(tmp_path)
        assert main(["racecheck", "clean.py",
                     "--allowlist", "allow.txt"]) == 2
        assert "repro racecheck:" in capsys.readouterr().err

    def test_dryrun_ok(self, capsys):
        assert main(["dryrun", "mauritius"]) == 0
        assert "ready to run" in capsys.readouterr().out

    def test_dryrun_unknown_implement_raises(self):
        with pytest.raises(KeyError):
            main(["dryrun", "mauritius", "--implement", "chalk"])

    def test_grade(self, capsys):
        assert main(["grade", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "perfect" in out
        assert "at least mostly correct: 59%" in out

    def test_tables(self, capsys):
        assert main(["tables", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "Table I:" in out and "Table III:" in out
        assert out.count("vs paper: exact") == 3

    def test_report(self, capsys):
        assert main(["report", "USI", "--teams", "2", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# Activity report")
        assert "## Whiteboard" in out

    def test_unknown_flag_raises(self):
        with pytest.raises(KeyError):
            main(["render", "atlantis"])

    def test_chaos_redistribute(self, capsys):
        assert main(["chaos", "mauritius", "--scenario", "4",
                     "--policy", "redistribute", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "fault plan:" in out
        assert "makespan inflation" in out or "faulted makespan" in out
        assert "ops reassigned" in out

    def test_chaos_abandon_reports_coverage_loss(self, capsys):
        assert main(["chaos", "mauritius", "--scenario", "4",
                     "--policy", "abandon", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "coverage" in out
        assert "abandon" in out

    def test_chaos_is_deterministic(self, capsys):
        argv = ["chaos", "mauritius", "--scenario", "4",
                "--policy", "spare", "--seed", "3"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_sweep_runs_grid(self, capsys):
        assert main(["sweep", "--flag", "mauritius", "--scenario", "3",
                     "--scenario", "4", "--trials", "2", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "scenario3" in out and "scenario4" in out
        assert "computed 4, cached 0" in out

    def test_sweep_warm_cache_recomputes_nothing(self, capsys, tmp_path):
        argv = ["sweep", "--trials", "2", "--seed", "5",
                "--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "computed 2, cached 0" in cold
        assert "cold" in cold
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "computed 0, cached 2" in warm
        assert "warm" in warm

    def test_sweep_observe_prints_rollup(self, capsys):
        assert main(["sweep", "--trials", "1", "--observe"]) == 0
        out = capsys.readouterr().out
        assert "events=" in out

    def test_sweep_activity_axis(self, capsys):
        assert main(["sweep", "--scenario", "activity",
                     "--trials", "1"]) == 0
        out = capsys.readouterr().out
        assert "scenario1_repeat" in out

    def test_fabric_runs_grid(self, capsys):
        assert main(["fabric", "--flag", "poland", "--scenario", "3",
                     "--scenario", "4", "--trials", "2", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "scenario3" in out and "scenario4" in out
        assert "computed 4, cached 0" in out
        assert "leases 2" in out and "worker deaths 0" in out

    def test_fabric_chaos_crash_retries(self, capsys):
        assert main(["fabric", "--flag", "poland", "--scenario", "3",
                     "--scenario", "4", "--trials", "1", "--seed", "5",
                     "--chaos", "crash:w0:1", "--hedge-after", "0"]) == 0
        out = capsys.readouterr().out
        assert "retries 1" in out and "worker deaths 1" in out

    def test_fabric_warm_cache_shared_with_sweep(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        assert main(["sweep", "--flag", "poland", "--trials", "2",
                     "--seed", "5", "--cache-dir", cache]) == 0
        capsys.readouterr()
        assert main(["fabric", "--flag", "poland", "--trials", "2",
                     "--seed", "5", "--cache-dir", cache]) == 0
        warm = capsys.readouterr().out
        assert "computed 0, cached 2" in warm
        assert "leases 0" in warm

    def test_fabric_bad_chaos_spec_exits(self, capsys):
        with pytest.raises(SystemExit):
            main(["fabric", "--chaos", "meteor:w0:1"])
        with pytest.raises(SystemExit):
            main(["fabric", "--chaos", "crash:w0:zero"])

    def test_fabric_bad_remote_exits(self, capsys):
        with pytest.raises(SystemExit):
            main(["fabric", "--remote", "localhost"])

    def test_trace_writes_valid_chrome_json(self, capsys, tmp_path):
        import json

        out = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.prom"
        assert main(["trace", "mauritius", "--scenario", "4", "--seed",
                     "42", "--out", str(out),
                     "--metrics", str(metrics)]) == 0
        printed = capsys.readouterr().out
        assert "ui.perfetto.dev" in printed
        doc = json.loads(out.read_text())
        assert isinstance(doc["traceEvents"], list) and doc["traceEvents"]
        assert {e["ph"] for e in doc["traceEvents"]} <= {"X", "i", "C", "M"}
        assert "resource_wait_seconds_bucket" in metrics.read_text()

    def test_trace_chaos_adds_fault_instants(self, capsys, tmp_path):
        import json

        out = tmp_path / "chaos.json"
        assert main(["trace", "mauritius", "--scenario", "4", "--seed",
                     "7", "--chaos", "--out", str(out)]) == 0
        doc = json.loads(out.read_text())
        names = {e["name"] for e in doc["traceEvents"]}
        assert any(n.startswith("fault:") for n in names)

    def test_trace_converts_an_archived_event_log(self, capsys, tmp_path):
        import json

        import numpy as np
        from repro.agents import make_team
        from repro.flags import mauritius
        from repro.schedule import get_scenario, run_scenario
        from repro.sim.export import export_events

        spec = mauritius()
        team = make_team("team", 4, np.random.default_rng(5),
                         colors=list(spec.colors_used()))
        result = run_scenario(get_scenario(4), spec, team,
                              np.random.default_rng(5))
        log = tmp_path / "events.jsonl"
        log.write_text(export_events(result.trace.events))

        out = tmp_path / "converted.json"
        assert main(["trace", str(log), "--out", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "converted" in printed
        doc = json.loads(out.read_text())
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert slices

    def test_trace_is_deterministic(self, capsys, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        for out in (a, b):
            assert main(["trace", "mauritius", "--scenario", "4",
                         "--seed", "9", "--out", str(out)]) == 0
        capsys.readouterr()
        assert a.read_text() == b.read_text()


class TestPipeHardening:
    def test_broken_pipe_exits_141_without_traceback(self, monkeypatch):
        # `repro analyze ... | head` closing early must not traceback.
        # The handler dup2's devnull over stdout's fd; under pytest
        # that fd belongs to the capture machinery, so stub it out.
        import repro.cli as cli_mod

        def gone(args):
            raise BrokenPipeError

        monkeypatch.setitem(cli_mod._COMMANDS, "flags", gone)
        redirects = []
        monkeypatch.setattr(os, "dup2",
                            lambda a, b: redirects.append((a, b)))
        assert main(["flags"]) == 141


class TestInterruptHardening:
    """Long-running commands exit cleanly on Ctrl-C: no traceback,
    exit code 130, resources drained."""

    def test_sweep_keyboard_interrupt_exits_130(self, capsys, monkeypatch):
        import repro.sweep

        def interrupted_sweep(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(repro.sweep, "run_sweep", interrupted_sweep)
        assert main(["sweep"]) == 130
        err = capsys.readouterr().err
        assert "interrupted" in err
        assert "Traceback" not in err

    def test_serve_keyboard_interrupt_exits_130(self, capsys, monkeypatch):
        import repro.serve.server as server_mod

        async def interrupted_serve(self):
            raise KeyboardInterrupt

        monkeypatch.setattr(server_mod.ServeServer, "serve_forever",
                            interrupted_serve)
        assert main(["serve", "--port", "0"]) == 130
        captured = capsys.readouterr()
        assert "serving on http://" in captured.out
        assert "interrupted" in captured.err
        assert "Traceback" not in captured.err

    def test_serve_sigint_drains_and_exits_130(self, tmp_path):
        """A real SIGINT to a live server drains and exits 130."""
        import signal
        import subprocess
        import sys as _sys

        proc = subprocess.Popen(
            [_sys.executable, "-m", "repro", "serve", "--port", "0"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            env={**os.environ, "PYTHONPATH": "src"}, cwd=REPO_ROOT)
        try:
            line = proc.stdout.readline()
            assert "serving on http://" in line
            proc.send_signal(signal.SIGINT)
            out = proc.communicate(timeout=20)[0]
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 130
        assert "SIGINT received" in out
        assert "drained, bye" in out
        assert "Traceback" not in out


class TestTutorCommand:
    def test_list_prints_the_catalog(self, capsys):
        assert main(["tutor", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("speedup", "warmup", "contention", "pipelining"):
            assert name in out

    def test_missing_lesson_is_usage_error(self, capsys):
        assert main(["tutor"]) == 2
        assert "--lesson" in capsys.readouterr().err

    def test_bad_serve_address_is_usage_error(self, capsys):
        assert main(["tutor", "--lesson", "speedup",
                     "--serve", "nonsense"]) == 2
        assert "HOST:PORT" in capsys.readouterr().err

    def test_speedup_lesson_runs_headless(self, capsys):
        # The CI acceptance criterion: a full lesson, no terminal.
        assert main(["tutor", "--lesson", "speedup", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "lesson: speedup" in out
        assert "timeline:" in out


class TestStoreTokenExpiry:
    def test_issue_with_expiry_and_authenticate(self, tmp_path, capsys):
        db = str(tmp_path / "s.db")
        assert main(["store", "init", db]) == 0
        capsys.readouterr()
        assert main(["store", "token", db, "--issue", "usi/cs1",
                     "--expires-days", "2"]) == 0
        token = capsys.readouterr().out.strip()
        from repro.store import ResultStore
        with ResultStore(db) as store:
            assert store.authenticate(token).path == "usi/cs1"
            row = store._conn.execute(
                "SELECT expires_at FROM tokens").fetchone()
            assert row[0] is not None

    def test_bad_expiry_is_a_store_error(self, tmp_path, capsys):
        db = str(tmp_path / "s.db")
        assert main(["store", "init", db]) == 0
        assert main(["store", "token", db, "--issue", "usi",
                     "--expires-days", "-1"]) == 1
        assert "repro store:" in capsys.readouterr().err
