"""The backend selection contract: names, fallback, refusal, logging.

Pins the rules documented in :mod:`repro.sim.backend` and
``docs/backends.md``: ``reference`` always works, explicit ``vector``
errors on cells it cannot express, and ``auto`` falls back to the
reference engine with a logged reason.
"""

from __future__ import annotations

import logging

import pytest

from repro.agents.student import FillStyle
from repro.faults.plan import FaultPlan, ImplementFailure
from repro.grid.palette import Color
from repro.schedule import AcquirePolicy
from repro.sim.backend import (
    BACKEND_CHOICES,
    BACKEND_NAMES,
    BackendError,
    get_backend,
    resolve_backend,
    vector_unsupported_reason,
)
from repro.sweep.spec import SweepCell


def _cell(**overrides) -> SweepCell:
    defaults = dict(flag="mauritius", scenario=3, team_size=6,
                    policy=AcquirePolicy.HOLD_COLOR_RUN,
                    style=FillStyle.SCRIBBLE, rows=6, cols=8)
    defaults.update(overrides)
    return SweepCell(**defaults)


def _fault_cell() -> SweepCell:
    plan = FaultPlan(faults=(ImplementFailure(at=5.0, color=Color.RED),))
    return _cell(fault_label="boom", fault_plan=plan)


class TestNames:
    def test_choices_superset_of_names(self):
        assert set(BACKEND_NAMES) < set(BACKEND_CHOICES)
        assert "auto" in BACKEND_CHOICES and "auto" not in BACKEND_NAMES

    def test_get_backend_returns_each_engine(self):
        for name in BACKEND_NAMES:
            assert get_backend(name).name == name

    def test_get_backend_rejects_auto(self):
        # Tasks must name a concrete engine; auto is resolved earlier.
        with pytest.raises(BackendError):
            get_backend("auto")

    def test_get_backend_rejects_unknown(self):
        with pytest.raises(BackendError):
            get_backend("warp")

    def test_resolve_rejects_unknown(self):
        with pytest.raises(BackendError):
            resolve_backend("warp", _cell().key_dict())


class TestResolution:
    def test_reference_always_resolves(self):
        assert resolve_backend("reference", _cell().key_dict()) \
            == "reference"
        assert resolve_backend("reference", _fault_cell().key_dict(),
                               observe=True) == "reference"

    def test_vector_resolves_on_clean_cell(self):
        assert resolve_backend("vector", _cell().key_dict()) == "vector"
        assert vector_unsupported_reason(_cell().key_dict()) is None

    def test_explicit_vector_refuses_fault_plan(self):
        with pytest.raises(BackendError, match="fault plan"):
            resolve_backend("vector", _fault_cell().key_dict())

    def test_explicit_vector_refuses_observer(self):
        with pytest.raises(BackendError, match="observer"):
            resolve_backend("vector", _cell().key_dict(), observe=True)

    def test_auto_picks_vector_when_supported(self):
        assert resolve_backend("auto", _cell().key_dict()) == "vector"


class TestAutoFallbackLogging:
    def test_fault_plan_falls_back_with_reason(self, caplog):
        with caplog.at_level(logging.INFO, logger="repro.sim.backend"):
            resolved = resolve_backend("auto", _fault_cell().key_dict())
        assert resolved == "reference"
        messages = [r.getMessage() for r in caplog.records
                    if r.name == "repro.sim.backend"]
        assert any("falling back to reference" in m and "boom" in m
                   for m in messages), messages

    def test_observer_falls_back_with_reason(self, caplog):
        with caplog.at_level(logging.INFO, logger="repro.sim.backend"):
            resolved = resolve_backend("auto", _cell().key_dict(),
                                       observe=True)
        assert resolved == "reference"
        messages = [r.getMessage() for r in caplog.records
                    if r.name == "repro.sim.backend"]
        assert any("observer" in m for m in messages), messages

    def test_clean_auto_logs_nothing(self, caplog):
        with caplog.at_level(logging.INFO, logger="repro.sim.backend"):
            resolve_backend("auto", _cell().key_dict())
        assert not [r for r in caplog.records
                    if r.name == "repro.sim.backend"]
