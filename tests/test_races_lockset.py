"""Tests for ``repro.races.lockset`` — static guarded-attribute analysis.

Inference runs on source snippets (no filesystem); the allowlist, the
report envelope, and the repo-wide clean guarantee run exactly like the
CI ``race`` job — including the ``repro racecheck src/repro`` exit-0
acceptance check.
"""

import json
import os
import pathlib
import subprocess
import sys

import pytest

from repro.races import (
    RaceError,
    RaceReport,
    analyze_source,
    load_allowlist,
    lockset_report,
)
from repro.races.report import RACES_VERSION

REPO = pathlib.Path(__file__).resolve().parent.parent


def one_class(source):
    classes = analyze_source(source)
    assert len(classes) == 1
    return classes[0]


def codes(cls):
    return sorted(i.code for i in cls.findings)


class TestGuardInference:
    def test_all_writes_locked_means_guarded(self):
        cls = one_class(
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._n = 0\n"
            "    def bump(self):\n"
            "        with self._lock:\n"
            "            self._n += 1\n"
            "    def read(self):\n"
            "        with self._lock:\n"
            "            return self._n\n")
        assert cls.locks == ("_lock",)
        assert cls.guarded == {"_n": ("_lock",)}
        assert cls.findings == ()

    def test_init_writes_do_not_break_the_guard(self):
        # Construction happens-before publication: the bare __init__
        # write must not turn a guarded attribute into mixed_guard.
        cls = one_class(
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._items = []\n"
            "    def add(self, x):\n"
            "        with self._lock:\n"
            "            self._items.append(x)\n")
        assert cls.guarded == {"_items": ("_lock",)}
        assert cls.findings == ()

    def test_unguarded_read_of_guarded_attr_is_flagged(self):
        cls = one_class(
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._n = 0\n"
            "    def bump(self):\n"
            "        with self._lock:\n"
            "            self._n += 1\n"
            "    def peek(self):\n"
            "        return self._n\n")
        assert codes(cls) == ["unguarded_read"]
        issue = cls.findings[0]
        assert issue.subject == "<snippet>::C._n"
        assert "peek" in issue.message

    def test_mixed_guard_is_flagged(self):
        cls = one_class(
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._n = 0\n"
            "    def locked_bump(self):\n"
            "        with self._lock:\n"
            "            self._n += 1\n"
            "    def bare_bump(self):\n"
            "        self._n += 1\n")
        assert codes(cls) == ["mixed_guard"]
        assert "bare_bump" in cls.findings[0].message

    def test_mutator_call_counts_as_write(self):
        cls = one_class(
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._q = []\n"
            "    def locked_add(self, x):\n"
            "        with self._lock:\n"
            "            self._q.append(x)\n"
            "    def bare_add(self, x):\n"
            "        self._q.append(x)\n")
        assert codes(cls) == ["mixed_guard"]

    def test_locked_suffix_methods_are_trusted(self):
        # The house convention: *_locked methods run with the lock
        # already held by the caller, so their accesses are exempt.
        cls = one_class(
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._n = 0\n"
            "    def bump(self):\n"
            "        with self._lock:\n"
            "            self._bump_locked()\n"
            "            self._n += 1\n"
            "    def _bump_locked(self):\n"
            "        self._n += 1\n")
        assert cls.findings == ()

    def test_borrowed_lock_chain_guards(self):
        # `with self._owner._lock:` — borrowing another object's lock
        # (the Subscription pattern in repro.stream.bus).
        cls = one_class(
            "class Cursor:\n"
            "    def __init__(self, owner):\n"
            "        self._owner = owner\n"
            "        self._pos = 0\n"
            "    def advance(self):\n"
            "        with self._owner._lock:\n"
            "            self._pos += 1\n"
            "    def bare(self):\n"
            "        return self._pos\n")
        assert cls.guarded == {"_pos": ("_owner._lock",)}
        assert codes(cls) == ["unguarded_read"]

    def test_sync_primitives_are_not_shared_state(self):
        # Event.set()/.clear() are internally synchronized; "clear"
        # being a container mutator must not make _event guarded.
        cls = one_class(
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._event = threading.Event()\n"
            "    def arm(self):\n"
            "        with self._lock:\n"
            "            self._event.clear()\n"
            "    def fire(self):\n"
            "        self._event.set()\n")
        assert cls.guarded == {}
        assert cls.findings == ()

    def test_unlocked_only_attr_owes_no_discipline(self):
        cls = one_class(
            "class C:\n"
            "    def __init__(self):\n"
            "        self.n = 0\n"
            "    def bump(self):\n"
            "        self.n += 1\n")
        assert cls.guarded == {}
        assert cls.findings == ()

    def test_nested_function_is_conservatively_lock_free(self):
        # A closure runs later, with unknown locks: a write inside it
        # must not count as guarded even when defined under the lock.
        cls = one_class(
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._n = 0\n"
            "    def locked_set(self):\n"
            "        with self._lock:\n"
            "            self._n = 1\n"
            "    def deferred(self):\n"
            "        with self._lock:\n"
            "            def later():\n"
            "                self._n = 2\n"
            "            return later\n")
        assert codes(cls) == ["mixed_guard"]


class TestAllowlist:
    def test_load_parses_entries(self, tmp_path):
        f = tmp_path / "allow.txt"
        f.write_text("# comment\n\n"
                     "unguarded_read src/x.py::C._n -- benign\n")
        assert load_allowlist(f) == {
            "unguarded_read src/x.py::C._n": "benign"}

    def test_missing_justification_raises(self, tmp_path):
        f = tmp_path / "allow.txt"
        f.write_text("unguarded_read src/x.py::C._n\n")
        with pytest.raises(RaceError, match="justification"):
            load_allowlist(f)

    def test_report_suppresses_and_reports_stale(self, tmp_path):
        bad = tmp_path / "racy.py"
        bad.write_text(
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._n = 0\n"
            "    def bump(self):\n"
            "        with self._lock:\n"
            "            self._n += 1\n"
            "    def peek(self):\n"
            "        return self._n\n")
        relpath = str(bad)
        allow = {f"unguarded_read {relpath}::C._n": "test waiver",
                 "mixed_guard gone.py::D._x": "stale"}
        report, unused = lockset_report([str(bad)], allow)
        assert report.ok
        assert report.findings == ()
        assert [s["key"] for s in report.suppressed] == [
            f"unguarded_read {relpath}::C._n"]
        assert unused == ["mixed_guard gone.py::D._x"]

    def test_without_allowlist_the_finding_survives(self, tmp_path):
        bad = tmp_path / "racy.py"
        bad.write_text(
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._n = 0\n"
            "    def bump(self):\n"
            "        with self._lock:\n"
            "            self._n += 1\n"
            "    def peek(self):\n"
            "        return self._n\n")
        report, _ = lockset_report([str(bad)])
        assert not report.ok
        assert [i.code for i in report.findings] == ["unguarded_read"]


class TestReportEnvelope:
    def test_roundtrip_is_byte_stable(self):
        cls_src = (
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._n = 0\n"
            "    def bump(self):\n"
            "        with self._lock:\n"
            "            self._n += 1\n"
            "    def peek(self):\n"
            "        return self._n\n")
        report, _ = lockset_report([])
        assert report.layer == "lockset"
        rebuilt = RaceReport.from_dict(json.loads(report.to_json()))
        assert rebuilt.to_json() == report.to_json()
        assert analyze_source(cls_src)  # snippet parses

    def test_version_mismatch_raises(self):
        report, _ = lockset_report([])
        d = json.loads(report.to_json())
        d["races_version"] = RACES_VERSION + 1
        with pytest.raises(RaceError, match="version"):
            RaceReport.from_dict(d)

    def test_format_names_findings_and_waivers(self, tmp_path):
        bad = tmp_path / "racy.py"
        bad.write_text(
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._n = 0\n"
            "    def bump(self):\n"
            "        with self._lock:\n"
            "            self._n += 1\n"
            "    def peek(self):\n"
            "        return self._n\n")
        report, _ = lockset_report([str(bad)])
        text = report.format()
        assert "RACY" in text and "unguarded_read" in text


class TestCli:
    def run_cli(self, *argv, cwd=REPO):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        return subprocess.run(
            [sys.executable, "-m", "repro", "racecheck", *argv],
            cwd=cwd, env=env, capture_output=True, text=True)

    def test_repo_is_clean(self):
        # The acceptance guarantee: the shipped tree passes racecheck
        # with the shipped allowlist — exactly the CI race job.
        proc = self.run_cli("src/repro")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "clean" in proc.stdout

    def test_repo_allowlist_has_no_stale_entries(self):
        proc = self.run_cli("src/repro", "--strict-unused")
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_json_report_is_canonical(self):
        proc = self.run_cli("src/repro", "--json")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        body = json.loads(proc.stdout)
        assert body["ok"] and body["layer"] == "lockset"
        assert body["races_version"] == RACES_VERSION

    def test_finding_fails_and_allowlist_waives(self, tmp_path):
        bad = tmp_path / "racy.py"
        bad.write_text(
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._n = 0\n"
            "    def bump(self):\n"
            "        with self._lock:\n"
            "            self._n += 1\n"
            "    def peek(self):\n"
            "        return self._n\n")
        proc = self.run_cli("racy.py", cwd=tmp_path)
        assert proc.returncode == 1
        assert "unguarded_read" in proc.stdout

        allow = tmp_path / "allow.txt"
        allow.write_text(
            "unguarded_read racy.py::C._n -- test waiver\n")
        proc = self.run_cli("racy.py", "--allowlist", str(allow),
                            cwd=tmp_path)
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_strict_unused_fails_on_stale_entry(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        allow = tmp_path / "allow.txt"
        allow.write_text("unguarded_read gone.py::C._n -- obsolete\n")
        proc = self.run_cli("clean.py", "--allowlist", str(allow),
                            cwd=tmp_path)
        assert proc.returncode == 0
        assert "unused allowlist entry" in proc.stderr
        proc = self.run_cli("clean.py", "--allowlist", str(allow),
                            "--strict-unused", cwd=tmp_path)
        assert proc.returncode == 1

    def test_malformed_allowlist_is_usage_error(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        allow = tmp_path / "allow.txt"
        allow.write_text("unguarded_read x.py::C._n\n")
        proc = self.run_cli("clean.py", "--allowlist", str(allow),
                            cwd=tmp_path)
        assert proc.returncode == 2
