"""Tests for repro.stream.bus and .runner — fan-out and feed identity.

The bus contract in priority order: publishing never blocks (bounded
work, bounded latency, even with stuck subscribers), per-subscriber
queues drop oldest with counted losses, and replay-from-seq reads a
gap-free history.  The runner contract: a streamed trial's payload is
byte-identical to an unstreamed one, and the reassembled feed *is* the
archived event log.
"""

import json
import threading
import time

import pytest

from repro.obs import MetricsRegistry
from repro.races import maybe_sanitized
from repro.stream import (
    ACTIVITY_RUN_LABELS,
    RunStream,
    StreamClosed,
    StreamHub,
    StreamUnsupported,
    check_streamable,
    expected_run_labels,
    fail_stream,
    finish_stream,
    reassemble_feed,
    replay_payload,
    run_streamed_trial,
)
from repro.sweep import ACTIVITY
from repro.sweep.executor import run_trial


def publish_n(stream, n, run="scenario3"):
    for i in range(n):
        stream.publish("event", run=run, time=float(i),
                       data={"line": json.dumps({"i": i})})


def task_for(scenario=3, seed=5, **extra):
    from repro.serve.protocol import RunRequest
    body = {"flag": "poland", "scenario": scenario, "seed": seed}
    body.update(extra)
    return RunRequest.from_body(body).task()


class TestPublishSubscribe:
    def test_seq_is_contiguous_and_one_based(self):
        stream = RunStream("t")
        publish_n(stream, 5)
        assert [ev.seq for ev in stream.history()] == [1, 2, 3, 4, 5]
        assert stream.last_seq == 5

    def test_subscriber_sees_frames_in_order(self):
        stream = RunStream("t")
        with stream.subscribe() as sub:
            publish_n(stream, 10)
            assert [ev.seq for ev in sub.pop_ready()] == list(range(1, 11))

    def test_terminal_frame_finishes_the_stream(self):
        stream = RunStream("t")
        publish_n(stream, 2)
        finish_stream(stream, cached=False, runs=["scenario3"])
        assert stream.finished
        with pytest.raises(StreamClosed):
            stream.publish("event", run="scenario3", time=0.0)

    def test_replay_from_cursor_has_no_gaps(self):
        stream = RunStream("t")
        publish_n(stream, 100)
        sub = stream.subscribe(after=40)
        assert [ev.seq for ev in sub.pop_ready()] == list(range(41, 101))

    def test_late_subscriber_replays_a_finished_feed(self):
        stream = RunStream("t")
        publish_n(stream, 3)
        finish_stream(stream, cached=True, runs=["scenario3"])
        sub = stream.subscribe()
        assert sub.wait(0.0)  # the backlog pre-arms the event
        frames = sub.pop_ready()
        assert [ev.seq for ev in frames] == [1, 2, 3, 4]
        assert frames[-1].terminal

    def test_waker_fires_on_publish(self):
        stream = RunStream("t")
        sub = stream.subscribe()
        calls = []
        sub.add_waker(lambda: calls.append(1))
        publish_n(stream, 3)
        assert len(calls) == 3


class TestOverflow:
    def test_slow_subscriber_drops_oldest_and_counts(self):
        registry = MetricsRegistry()
        stream = RunStream("t", max_queue=8, registry=registry)
        sub = stream.subscribe()   # never pops: the stuck client
        publish_n(stream, 50)
        assert len(sub._live) == 8           # bounded, not growing
        assert sub.dropped == 42
        assert stream.dropped == 42
        assert registry.counter(
            "stream_dropped_frames_total").value() == 42.0
        assert registry.counter(
            "stream_frames_published_total").value() == 50.0
        # drop-oldest: the live queue holds the *newest* frames.
        assert [ev.seq for ev in sub._live] == list(range(43, 51))

    def test_dropped_client_recovers_from_history(self):
        # The whole point of keeping the envelope history: a client
        # that overflowed resumes from its cursor and reads the missed
        # frames back out, gap-free.
        stream = RunStream("t", max_queue=4)
        sub = stream.subscribe()
        publish_n(stream, 20)
        survived = sub.pop_ready()
        # Drop-oldest left only the newest window in the live queue...
        assert [ev.seq for ev in survived] == [17, 18, 19, 20]
        assert sub.dropped == 16
        # ...so the client re-subscribes from its cursor and the
        # history serves the missed frames back, gap-free.
        sub.close()
        resumed = stream.subscribe(after=0)
        assert [ev.seq for ev in resumed.pop_ready()] == list(
            range(1, 21))

    def test_closed_subscribers_drops_stay_counted(self):
        stream = RunStream("t", max_queue=2)
        sub = stream.subscribe()
        publish_n(stream, 10)
        assert stream.dropped == 8
        sub.close()
        assert stream.subscriber_count == 0
        assert stream.dropped == 8           # history survives the close

    def test_publish_latency_is_bounded_by_stuck_subscribers(self):
        # Contract #1: the engine never notices observers.  With three
        # permanently-stuck subscribers, publishing stays O(1) per
        # frame — microseconds, not milliseconds.  The bound here is
        # generous (well under 1ms/frame on any host) but would fail
        # loudly if publish ever blocked on a full queue.
        stream = RunStream("t", max_queue=16)
        for _ in range(3):
            stream.subscribe()
        t0 = time.perf_counter()
        publish_n(stream, 5000)
        per_frame = (time.perf_counter() - t0) / 5000
        assert per_frame < 1e-3

    def test_concurrent_publish_and_drain_delivers_exactly_once(self):
        # Runs on happens-before shims when REPRO_SAN=1 (CI race job).
        with maybe_sanitized():
            stream = RunStream("t", max_queue=2048)
            sub = stream.subscribe()
            seen = []

            def consume():
                while True:
                    sub.wait(1.0)
                    batch = sub.pop_ready()
                    seen.extend(batch)
                    if any(ev.terminal for ev in batch):
                        return

            consumer = threading.Thread(target=consume)
            consumer.start()
            publish_n(stream, 2000)
            finish_stream(stream, cached=False, runs=["scenario3"])
            consumer.join(timeout=10.0)
            assert not consumer.is_alive()
        assert [ev.seq for ev in seen] == list(range(1, 2002))


class TestStreamHub:
    def test_create_and_get(self):
        hub = StreamHub()
        stream = hub.create("tok")
        assert hub.get("tok") is stream
        assert hub.get("nope") is None
        with pytest.raises(ValueError, match="already exists"):
            hub.create("tok")

    def test_finished_streams_evict_lru_active_never(self):
        hub = StreamHub(keep_finished=2)
        live = hub.create("live")
        for i in range(4):
            done = hub.create(f"done{i}")
            finish_stream(done, cached=False, runs=[])
            hub.create(f"pad{i}")  # trigger eviction checks
        assert hub.get("live") is live        # active: never evicted
        assert hub.get("done0") is None       # oldest finished: gone
        assert hub.get("done1") is None
        assert hub.get("done3") is not None   # newest finished: kept

    def test_get_refreshes_lru_order(self):
        # A touched finished feed moves to the back of the eviction
        # queue: resumed clients keep their replay window alive.
        hub = StreamHub(keep_finished=2)
        for i in range(2):
            finish_stream(hub.create(f"done{i}"), cached=False, runs=[])
        assert hub.get("done0") is not None   # refresh: now newest
        finish_stream(hub.create("done2"), cached=False, runs=[])
        hub.create("pad")                     # trigger eviction
        assert hub.get("done1") is None       # stale one went instead
        assert hub.get("done0") is not None
        assert hub.get("done2") is not None

    def test_live_feed_pinned_under_eviction_pressure(self):
        # keep_finished=0 is maximum pressure: every finished feed is
        # dropped at the next create, the live one survives them all.
        hub = StreamHub(keep_finished=0)
        live = hub.create("live")
        publish_n(live, 3)
        for i in range(5):
            finish_stream(hub.create(f"done{i}"), cached=False, runs=[])
            hub.create(f"pad{i}")
            assert hub.get(f"done{i}") is None
        assert hub.get("live") is live
        assert len(live.history()) == 3       # feed intact, not reset
        finish_stream(live, cached=False, runs=["scenario3"])
        hub.create("after")                   # now it is evictable
        assert hub.get("live") is None

    def test_subscriber_attach_races_eviction(self):
        # A subscriber that attached through hub.get() keeps a working
        # handle even when eviction drops the hub's reference while
        # another thread is churning the registry.  Sanitized in CI.
        with maybe_sanitized():
            hub = StreamHub(keep_finished=1)
            feed = hub.create("feed")
            publish_n(feed, 4)
            finish_stream(feed, cached=False, runs=["scenario3"])

            def churn():
                for i in range(16):
                    finish_stream(hub.create(f"churn{i}"),
                                  cached=False, runs=[])

            stream = hub.get("feed")
            sub = stream.subscribe(after=0)
            churner = threading.Thread(target=churn)
            churner.start()
            churner.join(timeout=10.0)
            assert not churner.is_alive()
            assert hub.get("feed") is None    # evicted from the hub...
            events = sub.pop_ready()          # ...but the handle works
        assert [ev.seq for ev in events] == list(range(1, 6))
        assert events[-1].terminal


class TestRunner:
    def test_expected_run_labels(self):
        assert expected_run_labels({"scenario": ACTIVITY}) == list(
            ACTIVITY_RUN_LABELS)
        assert expected_run_labels({"scenario": 3}) == ["scenario3"]

    def test_vector_tasks_are_refused(self):
        with pytest.raises(StreamUnsupported, match="vector"):
            check_streamable({"backend": "vector"})
        check_streamable({"backend": "reference"})  # fine
        check_streamable({})                        # default: reference

    def test_streamed_payload_byte_identical_to_unstreamed(self):
        task = task_for(scenario=3, seed=9)
        stream = RunStream("t")
        streamed = run_streamed_trial(task, stream)
        plain = run_trial(task_for(scenario=3, seed=9))
        canon = lambda p: json.dumps(p, sort_keys=True)  # noqa: E731
        assert canon(streamed) == canon(plain)

    def test_feed_reassembles_to_the_archived_trace(self):
        # The headline invariant, in-process: concatenated event
        # frames == the payload's archived trace, byte for byte.
        task = task_for(scenario=3, seed=11)
        stream = RunStream("t")
        sub = stream.subscribe()
        payload = run_streamed_trial(task, stream)
        finish_stream(stream, cached=False, runs=list(payload["runs"]))
        feed = reassemble_feed(sub.pop_ready())
        assert set(feed) == set(payload["runs"])
        for label, text in feed.items():
            assert text == payload["runs"][label]["trace"]

    def test_replayed_feed_is_frame_identical_to_live(self):
        task = task_for(scenario=3, seed=13)
        live = RunStream("live")
        live_sub = live.subscribe()
        payload = run_streamed_trial(task, live)
        replayed = RunStream("replay")
        replay_sub = replayed.subscribe()
        replay_payload(payload, replayed)
        strip = lambda evs: [(e.kind, e.run, e.time, e.data)  # noqa: E731
                             for e in evs]
        assert strip(replay_sub.pop_ready()) == strip(
            live_sub.pop_ready())

    def test_activity_feed_carries_all_five_runs(self):
        # A whole-activity feed outgrows the default live queue, so
        # this subscriber asks for headroom (a real client would drain
        # concurrently or resume from its cursor instead).
        task = task_for(scenario=0, seed=7)
        stream = RunStream("t", max_queue=65536)
        sub = stream.subscribe()
        payload = run_streamed_trial(task, stream)
        finish_stream(stream, cached=False, runs=list(payload["runs"]))
        frames = []
        while True:
            batch = sub.pop_ready()
            if not batch:
                break
            frames.extend(batch)
        assert sub.dropped == 0
        feed = reassemble_feed(frames)
        assert list(feed) == list(ACTIVITY_RUN_LABELS)
        for label in ACTIVITY_RUN_LABELS:
            assert feed[label] == payload["runs"][label]["trace"]

    def test_fail_stream_ends_with_an_error_frame(self):
        stream = RunStream("t")
        sub = stream.subscribe()
        fail_stream(stream, "ValueError: boom")
        (frame,) = sub.pop_ready()
        assert frame.kind == "error" and frame.terminal
        assert frame.data["message"] == "ValueError: boom"
