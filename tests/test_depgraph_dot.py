"""Tests for repro.depgraph.dot — DOT export."""

import pytest

from repro.depgraph.dot import schedule_to_dot_notes, to_dot
from repro.depgraph.flag_dags import jordan_reference_dag
from repro.depgraph.graph import TaskGraph
from repro.depgraph.schedule_dag import list_schedule


class TestToDot:
    def test_basic_structure(self):
        dot = to_dot(jordan_reference_dag())
        assert dot.startswith("digraph depgraph {")
        assert dot.endswith("}")
        assert '"black_stripe" -> "red_triangle";' in dot
        assert '"red_triangle" -> "white_star";' in dot

    def test_every_task_declared(self):
        g = jordan_reference_dag()
        dot = to_dot(g)
        for task in g.tasks:
            assert f'"{task}"' in dot

    def test_weights_shown(self):
        dot = to_dot(jordan_reference_dag(), show_weights=True)
        assert "\\n(" in dot

    def test_critical_path_highlighted(self):
        dot = to_dot(jordan_reference_dag(), highlight_critical_path=True)
        assert "color=red" in dot
        assert "penwidth=2" in dot

    def test_invalid_rankdir(self):
        with pytest.raises(ValueError, match="rankdir"):
            to_dot(jordan_reference_dag(), rankdir="XX")

    def test_quotes_escaped(self):
        g = TaskGraph.from_edges([('say "hi"', "b")])
        dot = to_dot(g)
        assert '\\"hi\\"' in dot

    def test_node_colors(self):
        dot = to_dot(jordan_reference_dag(),
                     node_colors={"white_star": "#ff0000"})
        assert 'fillcolor="#ff0000"' in dot


class TestScheduleNotes:
    def test_annotated_export(self):
        g = jordan_reference_dag()
        sched = list_schedule(g, 2)
        dot = schedule_to_dot_notes(g, sched)
        assert "digraph" in dot
        # Every task gets a processor/time comment.
        for task in g.tasks:
            assert f"// {task}: P" in dot
