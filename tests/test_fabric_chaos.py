"""Tests for repro.fabric.chaos — the scripted-failure vocabulary."""

import pytest

from repro.fabric import (
    ChaosError,
    ChaosPlan,
    DroppedResponse,
    SlowStart,
    WorkerCrash,
    WorkerStall,
)
from repro.fabric.worker import (
    crashes_on,
    drops_response,
    stall_before,
    startup_delay,
)


class TestEventValidation:
    def test_valid_events_construct(self):
        WorkerCrash(worker="w0", on_lease=1)
        WorkerStall(worker="w1", on_lease=2, stall_s=0.5)
        SlowStart(worker="w2", delay_s=0.0)
        DroppedResponse(worker="r0", on_lease=3)

    @pytest.mark.parametrize("build", [
        lambda: WorkerCrash(worker="", on_lease=1),
        lambda: WorkerCrash(worker="w0", on_lease=0),
        lambda: WorkerCrash(worker="w0", on_lease=True),
        lambda: WorkerStall(worker="w0", on_lease=1, stall_s=-1.0),
        lambda: SlowStart(worker="w0", delay_s=-0.1),
        lambda: DroppedResponse(worker="w0", on_lease=-2),
    ])
    def test_bad_events_rejected(self, build):
        with pytest.raises(ChaosError):
            build()


class TestChaosPlan:
    def test_for_worker_filters_by_name(self):
        plan = ChaosPlan.of([
            WorkerCrash(worker="w0", on_lease=1),
            WorkerStall(worker="w1", on_lease=1, stall_s=1.0),
            SlowStart(worker="w0", delay_s=0.2),
        ])
        assert len(plan) == 3
        mine = plan.for_worker("w0")
        assert [type(e).__name__ for e in mine] == ["WorkerCrash",
                                                    "SlowStart"]
        assert plan.for_worker("w9") == []

    def test_duplicate_events_rejected(self):
        with pytest.raises(ChaosError, match="duplicate"):
            ChaosPlan.of([WorkerCrash(worker="w0", on_lease=1),
                          WorkerCrash(worker="w0", on_lease=1)])

    def test_non_events_rejected(self):
        with pytest.raises(ChaosError, match="not a chaos event"):
            ChaosPlan.of(["crash w0"])

    def test_empty_plan_is_fine(self):
        assert len(ChaosPlan()) == 0
        assert ChaosPlan().for_worker("w0") == []


class TestWorkerScriptHelpers:
    """The predicates the worker loop keys its chaos off."""

    SCRIPT = [
        SlowStart(worker="w0", delay_s=0.25),
        WorkerCrash(worker="w0", on_lease=3),
        WorkerStall(worker="w0", on_lease=2, stall_s=1.5),
        DroppedResponse(worker="w0", on_lease=1),
    ]

    def test_startup_delay_sums_slow_starts(self):
        assert startup_delay(self.SCRIPT) == pytest.approx(0.25)
        assert startup_delay([]) == 0.0

    def test_crash_is_ordinal_exact(self):
        assert not crashes_on(self.SCRIPT, 1)
        assert not crashes_on(self.SCRIPT, 2)
        assert crashes_on(self.SCRIPT, 3)

    def test_stall_is_ordinal_exact(self):
        assert stall_before(self.SCRIPT, 1) == 0.0
        assert stall_before(self.SCRIPT, 2) == pytest.approx(1.5)

    def test_drop_is_ordinal_exact(self):
        assert drops_response(self.SCRIPT, 1)
        assert not drops_response(self.SCRIPT, 2)
