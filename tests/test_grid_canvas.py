"""Tests for repro.grid.canvas."""

import numpy as np
import pytest

from repro.grid.canvas import Canvas, CanvasError
from repro.grid.palette import Color
from repro.grid.regions import Rect, horizontal_stripe


class TestConstruction:
    def test_starts_blank(self):
        c = Canvas(4, 6)
        assert c.n_cells == 24
        assert c.n_colored() == 0
        assert c.fraction_colored() == 0.0

    def test_rejects_empty_grid(self):
        with pytest.raises(CanvasError):
            Canvas(0, 5)
        with pytest.raises(CanvasError):
            Canvas(5, -1)


class TestPaint:
    def test_paint_records_color(self):
        c = Canvas(3, 3)
        c.paint((1, 1), Color.RED)
        assert c.color_at((1, 1)) is Color.RED
        assert c.is_colored((1, 1))
        assert c.n_colored() == 1

    def test_paint_records_stroke_metadata(self):
        c = Canvas(3, 3)
        s = c.paint((0, 0), Color.BLUE, agent="P1", time=2.5, coverage=0.7)
        assert s.agent == "P1"
        assert s.time == 2.5
        assert s.coverage == 0.7
        assert c.history == [s]

    def test_paint_out_of_range_raises(self):
        c = Canvas(3, 3)
        with pytest.raises(CanvasError, match="outside"):
            c.paint((3, 0), Color.RED)

    def test_paint_blank_raises(self):
        c = Canvas(3, 3)
        with pytest.raises(CanvasError, match="BLANK"):
            c.paint((0, 0), Color.BLANK)

    def test_overpaint_forbidden_by_default(self):
        c = Canvas(3, 3)
        c.paint((0, 0), Color.RED)
        with pytest.raises(CanvasError, match="already colored"):
            c.paint((0, 0), Color.BLUE)

    def test_overpaint_allowed_when_enabled(self):
        c = Canvas(3, 3, allow_overpaint=True)
        c.paint((0, 0), Color.RED)
        c.paint((0, 0), Color.BLUE)
        assert c.color_at((0, 0)) is Color.BLUE
        assert len(c.history) == 2

    def test_coverage_bounds(self):
        c = Canvas(3, 3)
        with pytest.raises(CanvasError, match="coverage"):
            c.paint((0, 0), Color.RED, coverage=0.0)
        with pytest.raises(CanvasError, match="coverage"):
            c.paint((0, 0), Color.RED, coverage=1.5)


class TestPaintRegion:
    def test_fills_region(self):
        c = Canvas(8, 12)
        n = c.paint_region(horizontal_stripe(0, 4), Color.RED)
        assert n == 24
        assert c.color_counts() == {Color.RED: 24}

    def test_overlap_check(self):
        c = Canvas(8, 12)
        c.paint_region(Rect(0, 0, 0.5, 1.0), Color.RED)
        with pytest.raises(CanvasError, match="overlaps"):
            c.paint_region(Rect(0.25, 0, 0.75, 1.0), Color.BLUE)

    def test_history_recorded_per_cell(self):
        c = Canvas(4, 4)
        c.paint_region(Rect(0, 0, 0.5, 0.5), Color.GREEN, agent="lib")
        assert len(c.history) == 4
        assert all(s.agent == "lib" for s in c.history)


class TestQueries:
    def test_color_counts_multiple(self):
        c = Canvas(8, 12)
        for i, color in enumerate(
            (Color.RED, Color.BLUE, Color.YELLOW, Color.GREEN)
        ):
            c.paint_region(horizontal_stripe(i, 4), color)
        assert all(v == 24 for v in c.color_counts().values())

    def test_matches_exact(self):
        c = Canvas(2, 2)
        c.paint((0, 0), Color.RED)
        target = np.array([[1, 0], [0, 0]], dtype=np.int8)
        assert c.matches(target, ignore_blank_target=False)

    def test_matches_ignores_blank_target(self):
        c = Canvas(2, 2)
        c.paint((0, 0), Color.RED)
        c.paint((1, 1), Color.BLUE)  # extra paint where target is blank
        target = np.array([[1, 0], [0, 0]], dtype=np.int8)
        assert c.matches(target)
        assert not c.matches(target, ignore_blank_target=False)

    def test_matches_shape_mismatch_raises(self):
        c = Canvas(2, 2)
        with pytest.raises(CanvasError):
            c.matches(np.zeros((3, 3), dtype=np.int8))

    def test_diff_lists_mismatches(self):
        c = Canvas(2, 2)
        c.paint((0, 0), Color.RED)
        target = np.array([[2, 0], [0, 0]], dtype=np.int8)
        assert c.diff(target) == [(0, 0)]

    def test_mean_coverage(self):
        c = Canvas(2, 2)
        assert c.mean_coverage() == 0.0
        c.paint((0, 0), Color.RED, coverage=0.5)
        c.paint((0, 1), Color.RED, coverage=1.0)
        assert c.mean_coverage() == pytest.approx(0.75)

    def test_agent_cell_counts(self):
        c = Canvas(2, 2)
        c.paint((0, 0), Color.RED, agent="P1")
        c.paint((0, 1), Color.RED, agent="P1")
        c.paint((1, 0), Color.BLUE, agent="P2")
        assert c.agent_cell_counts() == {"P1": 2, "P2": 1}

    def test_copy_blank_preserves_config(self):
        c = Canvas(3, 4, allow_overpaint=True)
        c.paint((0, 0), Color.RED)
        fresh = c.copy_blank()
        assert fresh.rows == 3 and fresh.cols == 4
        assert fresh.allow_overpaint
        assert fresh.n_colored() == 0

    def test_snapshot_is_independent(self):
        c = Canvas(2, 2)
        snap = c.snapshot()
        c.paint((0, 0), Color.RED)
        assert snap[0, 0] == 0
