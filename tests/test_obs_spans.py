"""Tests for repro.obs.spans — span nesting correctness."""

import pytest

from repro.obs import SpanBuilder, SpanError, build_spans
from repro.schedule import get_scenario, run_scenario
from repro.sim import Event, EventKind


def ev(time, seq, kind, agent=None, **data):
    """Shorthand for hand-built engine events."""
    return Event(time=time, seq=seq, kind=kind, agent=agent, data=data)


class TestManualSpans:
    def test_begin_end_roundtrip(self):
        b = SpanBuilder()
        sid = b.begin("process:P1", "process", "P1", 0.0)
        span = b.end(sid, 5.0)
        assert span.sid == sid
        assert span.start == 0.0 and span.end == 5.0
        assert span.duration == 5.0
        assert not span.open and not span.is_instant

    def test_parent_is_innermost_open_on_same_track(self):
        b = SpanBuilder()
        outer = b.begin("process:P1", "process", "P1", 0.0)
        inner = b.begin("hold:red", "hold", "P1", 1.0)
        other = b.begin("process:P2", "process", "P2", 1.0)
        assert b.spans[inner].parent == outer
        assert b.spans[other].parent is None  # different track
        leaf = b.begin("stroke", "stroke", "P1", 2.0)
        assert b.spans[leaf].parent == inner

    def test_lifo_unwind_closes_abandoned_inner_spans(self):
        b = SpanBuilder()
        outer = b.begin("process:P1", "process", "P1", 0.0)
        inner = b.begin("wait:red", "wait", "P1", 1.0)
        # Ending the outer span force-closes the still-open inner one.
        b.end(outer, 9.0)
        assert b.spans[inner].end == 9.0
        assert b.spans[inner].tags.get("unwound") is True

    def test_end_unknown_and_double_end_raise(self):
        b = SpanBuilder()
        with pytest.raises(SpanError):
            b.end(0, 1.0)
        sid = b.begin("x", "process", "P1", 0.0)
        b.end(sid, 1.0)
        with pytest.raises(SpanError):
            b.end(sid, 2.0)

    def test_instant_is_zero_duration_with_parent(self):
        b = SpanBuilder()
        outer = b.begin("process:P1", "process", "P1", 0.0)
        sid = b.instant("handoff", "handoff", "P1", 3.0)
        span = b.spans[sid]
        assert span.is_instant and span.duration == 0.0
        assert span.parent == outer

    def test_finish_closes_everything(self):
        b = SpanBuilder()
        b.begin("process:P1", "process", "P1", 0.0)
        b.begin("wait:red", "wait", "P1", 1.0)
        closed = b.finish(7.0)
        assert len(closed) == 2
        assert all(s.end == 7.0 for s in closed)
        assert all(s.tags.get("unclosed") for s in closed)


class TestEventDriven:
    def test_process_wait_hold_stroke_nesting(self):
        events = [
            ev(0.0, 0, EventKind.PROCESS_START, "P1"),
            ev(0.0, 1, EventKind.RESOURCE_REQUEST, "P1", resource="red"),
            ev(2.0, 2, EventKind.RESOURCE_ACQUIRE, "P1", resource="red"),
            ev(2.0, 3, EventKind.STROKE_START, "P1", cell=[0, 0]),
            ev(4.0, 4, EventKind.STROKE_END, "P1", cell=[0, 0]),
            ev(4.0, 5, EventKind.RESOURCE_RELEASE, "P1", resource="red"),
            ev(4.0, 6, EventKind.PROCESS_DONE, "P1"),
        ]
        spans = build_spans(events)
        by_cat = {s.category: s for s in spans}
        proc, wait = by_cat["process"], by_cat["wait"]
        hold, stroke = by_cat["hold"], by_cat["stroke"]
        assert wait.parent == proc.sid
        assert hold.parent == proc.sid
        assert stroke.parent == hold.sid
        assert (wait.start, wait.end) == (0.0, 2.0)
        assert (hold.start, hold.end) == (2.0, 4.0)
        assert (stroke.start, stroke.end) == (2.0, 4.0)
        assert (proc.start, proc.end) == (0.0, 4.0)
        assert all(s.end is not None for s in spans)

    def test_re_request_closes_prior_wait_as_requeued(self):
        events = [
            ev(0.0, 0, EventKind.PROCESS_START, "P1"),
            ev(0.0, 1, EventKind.RESOURCE_REQUEST, "P1", resource="red"),
            # A stall dropped the queue slot; the worker asks again.
            ev(3.0, 2, EventKind.RESOURCE_REQUEST, "P1", resource="red"),
            ev(5.0, 3, EventKind.RESOURCE_ACQUIRE, "P1", resource="red"),
            ev(5.0, 4, EventKind.RESOURCE_RELEASE, "P1", resource="red"),
            ev(5.0, 5, EventKind.PROCESS_DONE, "P1"),
        ]
        spans = build_spans(events)
        waits = [s for s in spans if s.category == "wait"]
        assert len(waits) == 2
        assert waits[0].end == 3.0 and waits[0].tags.get("requeued") is True
        assert waits[1].end == 5.0 and "requeued" not in waits[1].tags

    def test_killed_process_is_tagged(self):
        events = [
            ev(0.0, 0, EventKind.PROCESS_START, "P1"),
            ev(6.0, 1, EventKind.PROCESS_KILLED, "P1", reason="dropout"),
        ]
        spans = build_spans(events)
        proc = spans[0]
        assert proc.end == 6.0
        assert proc.tags.get("killed") is True
        assert proc.tags.get("reason") == "dropout"

    def test_fault_and_recovery_instants(self):
        events = [
            ev(1.0, 0, EventKind.FAULT_INJECTED, "P1", fault="stall"),
            ev(2.0, 1, EventKind.OP_REASSIGNED, "P2", n_ops=3),
        ]
        spans = build_spans(events)
        assert spans[0].name == "fault:stall" and spans[0].is_instant
        assert spans[1].category == "recovery" and spans[1].is_instant


class TestScenarioNesting:
    """The builder against a real scenario-4 event stream."""

    @pytest.fixture
    def scenario4_spans(self, mauritius_spec, team4, rng):
        result = run_scenario(get_scenario(4), mauritius_spec, team4, rng)
        return build_spans(result.trace.events)

    def test_all_spans_closed(self, scenario4_spans):
        assert scenario4_spans
        assert all(s.end is not None for s in scenario4_spans)
        assert all(s.end >= s.start for s in scenario4_spans)

    def test_every_stroke_nests_under_its_process(self, scenario4_spans):
        spans = scenario4_spans
        procs = {s.track: s.sid for s in spans if s.category == "process"}
        strokes = [s for s in spans if s.category == "stroke"]
        assert len(strokes) == 96  # every cell of the 8x12 grid
        for stroke in strokes:
            sid = stroke.parent
            while sid is not None and spans[sid].category != "process":
                sid = spans[sid].parent
            assert sid == procs[stroke.track]

    def test_strokes_sit_inside_holds(self, scenario4_spans):
        spans = scenario4_spans
        for stroke in (s for s in spans if s.category == "stroke"):
            parent = spans[stroke.parent]
            assert parent.category == "hold"
            assert parent.track == stroke.track
            assert parent.start <= stroke.start
            assert parent.end >= stroke.end

    def test_wait_ends_where_hold_begins(self, scenario4_spans):
        spans = scenario4_spans
        holds = [s for s in spans if s.category == "hold"]
        assert holds
        for hold in holds:
            waits = [s for s in spans
                     if s.category == "wait" and s.track == hold.track
                     and s.tags.get("resource") == hold.tags.get("resource")
                     and s.end == hold.start]
            assert waits, f"hold at {hold.start} has no closing wait"

    def test_identical_seed_identical_spans(self, mauritius_spec):
        import numpy as np
        from repro.agents import make_team

        def spans_for(seed):
            team = make_team("t", 4, np.random.default_rng(seed),
                             colors=list(mauritius_spec.colors_used()))
            r = run_scenario(get_scenario(4), mauritius_spec, team,
                             np.random.default_rng(seed))
            return build_spans(r.trace.events)

        a, b = spans_for(5), spans_for(5)
        assert [(s.name, s.track, s.start, s.end, s.parent) for s in a] == \
               [(s.name, s.track, s.start, s.end, s.parent) for s in b]
