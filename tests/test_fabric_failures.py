"""Fault-tolerance acceptance tests: the fabric vs. dying workers.

The scripted chaos harness (crash on lease, stall, dropped response)
and the real thing — SIGKILL from outside, mid-sweep — all under the
headline invariant: results stay byte-identical to a clean serial
``run_sweep``, and recovery bookkeeping (lease counts, retries,
hedges, duplicates) is exact.
"""

import os
import signal
import threading
import time

import pytest

from repro.fabric import (
    ChaosPlan,
    DroppedResponse,
    FabricConfig,
    FabricCoordinator,
    FabricError,
    WorkerCrash,
    WorkerStall,
    run_fabric_sweep,
)
from repro.obs import MetricsRegistry
from repro.sweep import SweepSpec, run_sweep

SPEC = SweepSpec(flags=("poland",), scenarios=(3, 4), team_sizes=(4, 5),
                 n_trials=1, seed=17)


def assert_identical(a, b):
    """Byte-identity: every trial's every run, traces included."""
    assert len(a.cells) == len(b.cells)
    for ca, cb in zip(a.cells, b.cells):
        assert ca.cell == cb.cell
        assert ca.trials == cb.trials  # frozen dataclasses: trace bytes


class TestScriptedChaos:
    def test_crashed_worker_cell_is_retried_elsewhere(self):
        registry = MetricsRegistry()
        chaos = ChaosPlan.of([WorkerCrash(worker="w0", on_lease=1)])
        coordinator = FabricCoordinator(
            SPEC,
            FabricConfig(workers=2, retry_base_s=0.01, retry_cap_s=0.05,
                         hedge_after_s=None),
            chaos=chaos, registry=registry)
        result = coordinator.run()
        assert_identical(run_sweep(SPEC), result)
        assert coordinator.stats.worker_deaths == 1
        assert coordinator.stats.retries == 1
        assert registry.counter("fabric_retries_total").value() == 1
        assert registry.counter("fabric_leases_total").value(
            kind="retry") == 1
        assert registry.gauge("fabric_worker_state").value(
            worker="w0") == 0

    def test_stalled_worker_is_hedged_around(self):
        registry = MetricsRegistry()
        chaos = ChaosPlan.of([WorkerStall(worker="w0", on_lease=1,
                                          stall_s=20.0)])
        coordinator = FabricCoordinator(
            SPEC,
            FabricConfig(workers=2, hedge_after_s=0.2,
                         heartbeat_timeout_s=60.0),
            chaos=chaos, registry=registry)
        result = coordinator.run()
        assert_identical(run_sweep(SPEC), result)
        assert coordinator.stats.hedges >= 1
        assert registry.counter("fabric_hedges_total").value() >= 1
        # The stalled worker never finished; nothing was duplicated.
        assert coordinator.stats.worker_deaths == 0

    def test_dropped_response_recovered_by_silence_retry(self):
        # Hedging off: only the heartbeat-silence path can save this.
        chaos = ChaosPlan.of([DroppedResponse(worker="w0", on_lease=1)])
        coordinator = FabricCoordinator(
            SPEC,
            FabricConfig(workers=2, hedge_after_s=None,
                         heartbeat_timeout_s=0.4, retry_base_s=0.01,
                         retry_cap_s=0.05),
            chaos=chaos)
        result = coordinator.run()
        assert_identical(run_sweep(SPEC), result)
        assert coordinator.stats.retries >= 1
        assert coordinator.stats.worker_deaths == 0

    def test_dropped_response_recovered_by_hedge(self):
        chaos = ChaosPlan.of([DroppedResponse(worker="w0", on_lease=1)])
        coordinator = FabricCoordinator(
            SPEC,
            FabricConfig(workers=2, hedge_after_s=0.2,
                         heartbeat_timeout_s=60.0),
            chaos=chaos)
        result = coordinator.run()
        assert_identical(run_sweep(SPEC), result)
        assert coordinator.stats.hedges >= 1

    def test_compound_chaos_still_byte_identical(self):
        chaos = ChaosPlan.of([
            WorkerCrash(worker="w0", on_lease=1),
            WorkerStall(worker="w1", on_lease=2, stall_s=10.0),
            DroppedResponse(worker="w2", on_lease=2),
        ])
        result = run_fabric_sweep(
            SPEC,
            FabricConfig(workers=3, retry_base_s=0.01, retry_cap_s=0.05,
                         hedge_after_s=0.25, heartbeat_timeout_s=1.0),
            chaos=chaos)
        assert_identical(run_sweep(SPEC), result)

    def test_all_workers_crashing_is_a_fabric_error(self):
        chaos = ChaosPlan.of([WorkerCrash(worker="w0", on_lease=1),
                              WorkerCrash(worker="w1", on_lease=1)])
        with pytest.raises(FabricError, match="died|failed"):
            run_fabric_sweep(
                SPEC,
                FabricConfig(workers=2, retry_base_s=0.01,
                             retry_cap_s=0.05, max_attempts=3,
                             hedge_after_s=None),
                chaos=chaos)


class TestSigkillMidSweep:
    """The real thing: SIGKILL a worker process from outside."""

    def test_sigkill_in_flight_cell_re_leased_exactly_once(self):
        # A long scripted stall guarantees w0's first lease is still
        # in flight when the signal lands; hedging is off so lease
        # accounting stays exact.
        chaos = ChaosPlan.of([WorkerStall(worker="w0", on_lease=1,
                                          stall_s=60.0)])
        coordinator = FabricCoordinator(
            SPEC,
            FabricConfig(workers=2, retry_base_s=0.01, retry_cap_s=0.05,
                         hedge_after_s=None, heartbeat_timeout_s=60.0),
            chaos=chaos)

        outcome = {}

        def drive():
            outcome["result"] = coordinator.run()

        thread = threading.Thread(target=drive)
        thread.start()
        try:
            deadline = time.time() + 30.0
            while time.time() < deadline:
                victim_cell = coordinator.current_cell("w0")
                if victim_cell is not None:
                    break
                time.sleep(0.01)
            else:
                pytest.fail("w0 never took a lease")
            time.sleep(0.1)  # let the worker enter its stall
            os.kill(coordinator.pid("w0"), signal.SIGKILL)
        finally:
            thread.join(timeout=60.0)
        assert not thread.is_alive()
        assert "result" in outcome, "fabric run died"

        assert_identical(run_sweep(SPEC), outcome["result"])
        stats = coordinator.stats
        assert stats.worker_deaths == 1
        # The killed worker's in-flight cell was re-leased exactly
        # once; every other cell needed exactly one lease.
        assert stats.attempts[victim_cell] == 2
        others = {k: v for k, v in stats.attempts.items()
                  if k != victim_cell}
        assert set(others.values()) == {1}
        assert stats.duplicates == 0
