"""Concurrent StoreTier tests (the ISSUE's third satellite).

Two threads hammering one tier, and two tiers on two ``ResultStore``
connections sharing one database file: payloads must come back
byte-identical and the tier's hit/put counters must be exact — the
counters are now guarded by ``StoreTier._stats_lock``, and an
always-sanitized audit proves that lock actually orders the updates.
Each scenario also runs under :func:`repro.races.maybe_sanitized`, so
the CI ``race`` job replays it on happens-before shims.
"""

import json
import threading

from repro.races import RaceSanitizer, maybe_sanitized
from repro.store import ResultStore, StoreTier

N_DIGESTS = 24


def payload(i):
    return {"cell": f"c{i}", "speedup": 1.0 + i / 8, "trials": [i, i + 1]}


def canonical(obj):
    return json.dumps(obj, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def in_threads(*targets):
    threads = [threading.Thread(target=t) for t in targets]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


class TestSharedTier:
    def test_two_threads_one_tier_counters_exact(self, tmp_path):
        # cache=None pins the arithmetic: every get is a store hit, so
        # the guarded counters must land on exact totals — a lost
        # update (the pre-lock bug) would undercount.
        with maybe_sanitized():
            with ResultStore(tmp_path / "s.db") as store:
                tier = StoreTier(store)
                for i in range(N_DIGESTS):
                    tier.put(f"d{i}", payload(i))
                got = {}

                def reader(lo, hi):
                    for i in range(lo, hi):
                        got[i] = tier.get(f"d{i}")

                half = N_DIGESTS // 2
                in_threads(lambda: reader(0, half),
                           lambda: reader(half, N_DIGESTS))
                assert tier.store_puts == N_DIGESTS
                assert tier.store_hits == N_DIGESTS
                for i in range(N_DIGESTS):
                    assert canonical(got[i]) == canonical(payload(i))

    def test_two_threads_interleaved_puts_then_gets(self, tmp_path):
        with maybe_sanitized():
            with ResultStore(tmp_path / "s.db") as store:
                tier = StoreTier(store)

                def writer(lo, hi):
                    for i in range(lo, hi):
                        tier.put(f"d{i}", payload(i))

                half = N_DIGESTS // 2
                in_threads(lambda: writer(0, half),
                           lambda: writer(half, N_DIGESTS))
                assert tier.store_puts == N_DIGESTS
                for i in range(N_DIGESTS):
                    assert canonical(tier.get(f"d{i}")) == canonical(
                        payload(i))


class TestSharedDatabaseFile:
    def test_two_connections_one_file(self, tmp_path):
        # Two ResultStore connections (sqlite allows it: each has its
        # own connection with a busy timeout) on one file, each behind
        # its own tier on its own thread; disjoint writes, then both
        # read everything — byte-identical through either connection.
        db = tmp_path / "shared.db"
        with maybe_sanitized():
            with ResultStore(db) as a, ResultStore(db) as b:
                tier_a, tier_b = StoreTier(a), StoreTier(b)
                half = N_DIGESTS // 2

                def writer(tier, lo, hi):
                    for i in range(lo, hi):
                        tier.put(f"d{i}", payload(i))

                in_threads(lambda: writer(tier_a, 0, half),
                           lambda: writer(tier_b, half, N_DIGESTS))

                seen = {"a": {}, "b": {}}

                def reader(key, tier):
                    for i in range(N_DIGESTS):
                        seen[key][i] = canonical(tier.get(f"d{i}"))

                in_threads(lambda: reader("a", tier_a),
                           lambda: reader("b", tier_b))
                for i in range(N_DIGESTS):
                    want = canonical(payload(i))
                    assert seen["a"][i] == want
                    assert seen["b"][i] == want
                assert tier_a.store_hits == N_DIGESTS
                assert tier_b.store_hits == N_DIGESTS


class TestAuditedCounters:
    def test_stats_lock_orders_counter_updates(self, tmp_path):
        # Always-on sanitizer audit (no REPRO_SAN needed): the tier's
        # counters are registered shared state, two reader threads hit
        # the store concurrently, and the report must be clean — the
        # regression the _stats_lock fix exists for.
        san = RaceSanitizer()
        with san.patched():
            with ResultStore(tmp_path / "s.db") as store:
                audited = san.audited_class(
                    StoreTier, "store_hits", "store_puts")
                tier = audited(store)
                for i in range(8):
                    tier.put(f"d{i}", payload(i))

                def reader(lo, hi):
                    for i in range(lo, hi):
                        tier.get(f"d{i}")

                in_threads(lambda: reader(0, 4), lambda: reader(4, 8))
                assert tier.store_hits == 8
        report = san.report()
        assert report.ok, report.format()
