"""End-to-end tests for live streaming over repro.serve (SSE).

The headline invariant, pinned here at the HTTP boundary: the
concatenated streamed feed of a seeded run is **byte-identical** to
the archived event log of that same run — cold, cache-hit-replayed,
or resumed from a mid-feed disconnect at an arbitrary cursor.  Plus
the protocol edges: 422 for backends with nothing to stream, 404 for
unknown tokens, heartbeat comments on idle feeds, counted drops for
slow subscribers, and graceful drain delivering a terminal frame to
every attached subscriber.
"""

import http.client
import socket
import threading
import urllib.parse

import pytest

from repro.serve import BackgroundServer, ServeConfig, ServeError
from repro.serve.protocol import RunRequest
from repro.stream import (
    StreamEvent,
    decode_sse_lines,
    feed_makespans,
    reassemble_feed,
)
from repro.sweep.executor import run_trial


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    """One live streaming-enabled server shared across this module."""
    cache_dir = tmp_path_factory.mktemp("stream-cache")
    config = ServeConfig(cache_dir=str(cache_dir), batch_window_s=0.005)
    with BackgroundServer(config) as bg:
        yield bg


def archived_runs(body):
    """The in-process archived event logs for a request body."""
    payload = run_trial(RunRequest.from_body(dict(body)).task())
    return {label: run["trace"] for label, run in payload["runs"].items()}


def raw_sse(server, token, *, after=None, max_bytes=65536, timeout=5.0):
    """One raw SSE connection's bytes (headers checked, body returned)."""
    conn = http.client.HTTPConnection("127.0.0.1", server.port,
                                      timeout=timeout)
    try:
        headers = {"Accept": "text/event-stream"}
        if after is not None:
            headers["Last-Event-ID"] = str(after)
        conn.request("GET", "/stream?" + urllib.parse.urlencode(
            {"run": token}), headers=headers)
        response = conn.getresponse()
        assert response.status == 200
        assert response.getheader("Content-Type") == "text/event-stream"
        chunks = []
        total = 0
        while total < max_bytes:
            chunk = response.read(4096)
            if not chunk:
                break
            chunks.append(chunk)
            total += len(chunk)
        return b"".join(chunks)
    finally:
        conn.close()


class TestStreamedRun:
    BODY = {"flag": "poland", "scenario": 3, "seed": 61}

    def test_cold_stream_byte_identical_to_archive(self, server):
        client = server.client()
        reply = client.run(stream=True, **self.BODY)
        assert reply["cached"] is False
        assert reply["runs"] == ["scenario3"]
        frames = list(client.stream(reply["stream"]))
        assert frames[-1].kind == "end"
        assert frames[-1].data["status"] == "ok"
        assert reassemble_feed(frames) == archived_runs(self.BODY)

    def test_warm_stream_replays_identical_event_frames(self, server):
        client = server.client()
        cold = client.run(stream=True, flag="poland", scenario=3,
                          seed=62)
        cold_frames = list(client.stream(cold["stream"]))
        warm = client.run(stream=True, flag="poland", scenario=3,
                          seed=62)
        assert warm["cached"] is True
        warm_frames = list(client.stream(warm["stream"]))
        strip = lambda evs: [(e.kind, e.run, e.time, e.data)  # noqa: E731
                             for e in evs if e.kind == "event"]
        assert strip(warm_frames) == strip(cold_frames)
        assert warm_frames[-1].data["cached"] is True
        assert reassemble_feed(warm_frames) == archived_runs(
            {"flag": "poland", "scenario": 3, "seed": 62})

    def test_resume_from_mid_feed_disconnect(self, server):
        # Read part of the feed, drop the connection at an arbitrary
        # cursor, reconnect with Last-Event-ID — the stitched feed
        # must still be byte-identical to the archive.
        body = {"flag": "poland", "scenario": 4, "seed": 63}
        client = server.client()
        reply = client.run(stream=True, **body)
        head = []
        for event in client.stream(reply["stream"]):
            head.append(event)
            if len(head) == 137:  # an arbitrary mid-run cursor
                break
        cursor = head[-1].seq
        tail = list(client.stream(reply["stream"], after=cursor))
        assert tail[0].seq == cursor + 1   # no gap, no overlap
        assert tail[-1].terminal
        assert reassemble_feed(head + tail) == archived_runs(body)

    def test_resume_replays_overlap_and_client_dedupes(self, server):
        body = {"flag": "poland", "scenario": 3, "seed": 64}
        client = server.client()
        reply = client.run(stream=True, **body)
        full = list(client.stream(reply["stream"]))
        # Raw reconnect from an earlier cursor replays frames with
        # their original seq; reassembly dedupes on it.
        raw = raw_sse(server, reply["stream"], after=5,
                      max_bytes=1 << 22)
        replayed = list(decode_sse_lines(
            raw.decode("utf-8").split("\n")))
        assert replayed[0].seq == 6
        assert reassemble_feed(full + replayed) == archived_runs(body)

    def test_whole_activity_streams_all_five_runs(self, server):
        body = {"flag": "mauritius", "scenario": 0, "seed": 65}
        client = server.client()
        reply = client.run(stream=True, **body)
        assert reply["runs"] == ["scenario1", "scenario1_repeat",
                                 "scenario2", "scenario3", "scenario4"]
        frames = list(client.stream(reply["stream"]))
        feed = reassemble_feed(frames)
        assert feed == archived_runs(body)
        makespans = feed_makespans(frames)
        assert set(makespans) == set(reply["runs"])
        assert makespans["scenario3"] < makespans["scenario1"]

    def test_streamed_run_still_persists_to_the_cache(self, server):
        body = {"flag": "poland", "scenario": 3, "seed": 66}
        client = server.client()
        reply = client.run(stream=True, **body)
        list(client.stream(reply["stream"]))
        plain = client.run(**body)
        assert plain["cached"] is True
        assert {label: run["trace"]
                for label, run in plain["trial"]["runs"].items()
                } == archived_runs(body)


class TestStreamProtocolEdges:
    def test_explicit_vector_backend_is_422_stream_unsupported(
            self, server):
        with pytest.raises(ServeError) as err:
            server.client().run(flag="poland", scenario=3, seed=67,
                                stream=True, backend="vector")
        assert (err.value.status, err.value.code) == (
            422, "stream_unsupported")

    def test_unknown_token_is_404_stream_not_found(self, server):
        with pytest.raises(ServeError) as err:
            list(server.client().stream("feedcafe" * 4))
        assert (err.value.status, err.value.code) == (
            404, "stream_not_found")

    def test_missing_run_param_is_400(self, server):
        conn = http.client.HTTPConnection("127.0.0.1", server.port,
                                          timeout=5.0)
        try:
            conn.request("GET", "/stream")
            assert conn.getresponse().status == 400
        finally:
            conn.close()

    def test_bad_cursor_is_400(self, server):
        reply = server.client().run(flag="poland", scenario=3, seed=68,
                                    stream=True)
        conn = http.client.HTTPConnection("127.0.0.1", server.port,
                                          timeout=5.0)
        try:
            conn.request("GET", "/stream?" + urllib.parse.urlencode(
                {"run": reply["stream"], "after": "minus-one"}))
            assert conn.getresponse().status == 400
        finally:
            conn.close()

    def test_stream_metrics_are_exposed(self, server):
        server.client().run(flag="poland", scenario=3, seed=69,
                            stream=True)
        text = server.client().metrics()
        assert "serve_streams_total" in text
        assert "stream_frames_published_total" in text


class TestHeartbeatAndDrain:
    def test_idle_feed_carries_keepalive_comments(self, tmp_path):
        config = ServeConfig(cache_dir=str(tmp_path / "cache"),
                             stream_heartbeat_s=0.05)
        with BackgroundServer(config) as bg:
            # A hub stream nothing publishes into: the SSE writer has
            # only heartbeats to send.
            bg.server.handlers.hub.create("idletok")
            raw = raw_sse(bg, "idletok", max_bytes=64, timeout=5.0)
            assert b": keepalive" in raw

    def test_drain_with_inflight_stream_delivers_terminal_end(
            self, tmp_path):
        # Satellite guarantee: shutdown mid-run waits for streamed
        # compute, and the attached subscriber's feed still closes
        # with its terminal frame.
        config = ServeConfig(cache_dir=str(tmp_path / "cache"),
                             batch_window_s=0.005)
        frames = []
        attached = threading.Event()
        with BackgroundServer(config) as bg:
            client = bg.client()
            reply = client.run(flag="mauritius", scenario=0, seed=70,
                               stream=True)

            def collect():
                for event in client.stream(reply["stream"]):
                    frames.append(event)
                    attached.set()

            collector = threading.Thread(target=collect)
            collector.start()
            assert attached.wait(10.0)
            # Exit the context (SIGTERM-equivalent drain) while the
            # activity run is still streaming.
        collector.join(timeout=15.0)
        assert not collector.is_alive()
        assert frames[-1].kind == "end"
        assert reassemble_feed(frames) == archived_runs(
            {"flag": "mauritius", "scenario": 0, "seed": 70})

    def test_drain_sends_bye_on_a_feed_that_never_ends(self, tmp_path):
        # Defense in depth: a subscriber on a feed with no terminal
        # frame is released with a synthetic contiguous `bye`.
        config = ServeConfig(cache_dir=str(tmp_path / "cache"))
        got = {}

        with BackgroundServer(config) as bg:
            stream = bg.server.handlers.hub.create("forevertok")
            stream.publish("run_start", run="scenario3", time=0.0)

            def read():
                raw = raw_sse(bg, "forevertok", max_bytes=1 << 16,
                              timeout=10.0)
                got["frames"] = list(decode_sse_lines(
                    raw.decode("utf-8").split("\n")))

            reader = threading.Thread(target=read)
            reader.start()
            # Give the SSE writer a beat to attach before draining.
            import time
            for _ in range(100):
                if stream.subscriber_count:
                    break
                time.sleep(0.01)
        reader.join(timeout=15.0)
        assert not reader.is_alive()
        kinds = [f.kind for f in got["frames"]]
        assert kinds == ["run_start", "bye"]
        assert got["frames"][1].seq == got["frames"][0].seq + 1


class TestSigtermDrain:
    def test_sigterm_with_attached_subscriber_exits_0(self, tmp_path):
        """A real SIGTERM mid-stream: the feed ends with a terminal
        frame, the server drains, and the process exits 0."""
        import os
        import pathlib
        import re
        import signal
        import subprocess
        import sys as _sys

        from repro.serve.client import ServeClient

        repo = pathlib.Path(__file__).resolve().parent.parent
        proc = subprocess.Popen(
            [_sys.executable, "-m", "repro", "serve", "--port", "0",
             "--cache-dir", str(tmp_path / "cache")],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            env={**os.environ, "PYTHONPATH": "src"}, cwd=repo)
        frames = []
        try:
            line = proc.stdout.readline()
            match = re.search(r"http://([\d.]+):(\d+)", line)
            assert match, line
            client = ServeClient(match.group(1), int(match.group(2)))
            reply = client.run(flag="mauritius", scenario=0, seed=81,
                               stream=True)
            attached = threading.Event()

            def collect():
                for event in client.stream(reply["stream"]):
                    frames.append(event)
                    attached.set()

            collector = threading.Thread(target=collect)
            collector.start()
            assert attached.wait(10.0)
            proc.send_signal(signal.SIGTERM)
            out = proc.communicate(timeout=30)[0]
            collector.join(timeout=15.0)
            assert not collector.is_alive()
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0
        assert "SIGTERM received" in out
        assert "drained, bye" in out
        assert "Traceback" not in out
        assert frames and frames[-1].terminal
        assert frames[-1].kind == "end"  # compute drained, not cut
        assert reassemble_feed(frames) == archived_runs(
            {"flag": "mauritius", "scenario": 0, "seed": 81})


class TestSlowSubscriber:
    def test_slow_subscriber_drops_are_counted_not_blocking(
            self, tmp_path):
        # A tiny per-subscriber queue plus a reader that never drains:
        # the run must still finish promptly (publish never blocks)
        # and the drops must be surfaced on /metrics.
        config = ServeConfig(cache_dir=str(tmp_path / "cache"),
                             stream_queue=16, batch_window_s=0.005)
        with BackgroundServer(config) as bg:
            client = bg.client()
            reply = client.run(flag="poland", scenario=0, seed=71,
                               stream=True)
            # Attach a raw socket subscriber that reads nothing.
            stuck = socket.create_connection(
                ("127.0.0.1", bg.port), timeout=10.0)
            stuck.sendall(
                b"GET /stream?run=" + reply["stream"].encode()
                + b" HTTP/1.1\r\nHost: x\r\n\r\n")
            # A healthy client still gets the complete feed by
            # resuming from its cursor when it falls behind.
            frames = list(client.stream(reply["stream"]))
            assert frames[-1].kind == "end"
            assert reassemble_feed(frames) == archived_runs(
                {"flag": "poland", "scenario": 0, "seed": 71})
            text = client.metrics()
            stuck.close()
        dropped = [line for line in text.splitlines()
                   if line.startswith("stream_dropped_frames_total ")]
        assert dropped and float(dropped[0].split()[1]) > 0


class TestStreamedAdmission:
    def test_streamed_compute_holds_an_admission_slot(self, tmp_path):
        # max_queue=1: with a streamed run in flight, a second request
        # must bounce with 429 until the drive task releases the slot.
        config = ServeConfig(cache_dir=str(tmp_path / "cache"),
                             max_pending=1, batch_window_s=0.005)
        with BackgroundServer(config) as bg:
            client = bg.client()
            reply = client.run(flag="mauritius", scenario=0, seed=72,
                               stream=True)
            saw_429 = False
            try:
                client.run(flag="poland", scenario=3, seed=73)
            except ServeError as err:
                saw_429 = err.status == 429
            frames = list(client.stream(reply["stream"]))
            assert frames[-1].kind == "end"
            # The slot frees once the feed ends; now the request fits.
            after = client.run(flag="poland", scenario=3, seed=73)
            assert "scenario3" in after["trial"]["runs"]
        assert saw_429
