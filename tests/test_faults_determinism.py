"""Determinism regression tests for fault injection.

Two properties carry the whole subsystem:

1. Same seed + same FaultPlan => byte-identical traces (replays are
   exact, so classroom chaos demos are reproducible).
2. A fault-free plan (empty) produces a trace byte-identical to passing
   no plan at all — the resilient worker path is a strict superset of
   the clean path, not a parallel implementation that drifts.
"""

import json

import numpy as np
import pytest

from repro.agents import make_team
from repro.faults import (
    FaultPlan,
    RecoveryConfig,
    RecoveryPolicy,
    StudentDropout,
    sample_plan,
)
from repro.flags import mauritius
from repro.flags.compiler import compile_flag
from repro.schedule import get_scenario, run_scenario
from repro.sim.export import export_events


def run(plan, seed=11, scenario=4, policy=RecoveryPolicy.REDISTRIBUTE):
    spec = mauritius()
    team = make_team("team", 4, np.random.default_rng(seed),
                     colors=list(spec.colors_used()))
    rng = np.random.default_rng(seed)
    return run_scenario(get_scenario(scenario), spec, team, rng,
                        fault_plan=plan,
                        recovery=RecoveryConfig(policy=policy))


def trace_bytes(result):
    return json.dumps(export_events(result.trace.events),
                      sort_keys=True).encode()


def make_plan(seed=11):
    program = compile_flag(mauritius())
    colors = sorted({op.color for op in program.ops}, key=int)
    return sample_plan(np.random.default_rng(seed), n_workers=4,
                       colors=colors, horizon=190.0,
                       n_dropouts=1, n_implement_failures=1, n_stalls=1)


class TestByteIdentity:
    def test_same_seed_same_plan_identical_traces(self):
        plan = make_plan()
        assert trace_bytes(run(plan)) == trace_bytes(run(plan))

    @pytest.mark.parametrize("policy", list(RecoveryPolicy))
    def test_identity_holds_under_every_policy(self, policy):
        plan = make_plan()
        a = run(plan, policy=policy)
        b = run(plan, policy=policy)
        assert trace_bytes(a) == trace_bytes(b)
        assert np.array_equal(a.canvas.codes, b.canvas.codes)
        assert a.true_makespan == b.true_makespan
        assert a.faults.summary() == b.faults.summary()

    def test_empty_plan_matches_no_plan_exactly(self):
        clean = run(None)
        empty = run(FaultPlan())
        assert trace_bytes(clean) == trace_bytes(empty)
        assert clean.true_makespan == empty.true_makespan
        assert clean.measured_time == empty.measured_time
        assert np.array_equal(clean.canvas.codes, empty.canvas.codes)

    def test_empty_plan_matches_no_plan_on_uncontended_scenario(self):
        clean = run(None, scenario=3)
        empty = run(FaultPlan(), scenario=3)
        assert trace_bytes(clean) == trace_bytes(empty)

    def test_different_seeds_differ(self):
        plan = make_plan()
        assert trace_bytes(run(plan, seed=11)) != trace_bytes(
            run(plan, seed=12))

    def test_faults_actually_change_the_trace(self):
        plan = FaultPlan.of([StudentDropout(at=60.0, worker=3)])
        assert trace_bytes(run(None)) != trace_bytes(run(plan))

    def test_empty_plan_reports_zero_faults(self):
        r = run(FaultPlan())
        assert r.faults is not None
        assert r.faults.faults_fired == 0
        assert r.faults.summary()["ops_abandoned"] == 0
