"""Backend wiring through the sweep executor, serve API, and fabric.

The contract tests (``test_backend_contract.py``) pin selection rules
and the parity suite (``test_vector_parity.py``) pins per-trial bytes;
these tests pin the *plumbing*: ``run_sweep(backend=...)``, cache
address separation, the serve protocol's ``"backend"`` field, and
vector leases on the fabric.
"""

from __future__ import annotations

import pytest

from repro.fabric import FabricConfig, run_fabric_sweep
from repro.serve.client import ServeError
from repro.serve.server import BackgroundServer, ServeConfig
from repro.sim.backend import BackendError
from repro.sweep.executor import cell_address, run_sweep
from repro.sweep.spec import SweepSpec

SPEC = SweepSpec(flags=("mauritius", "japan"), scenarios=(1, 3),
                 team_sizes=(6,), n_trials=3, seed=11, rows=6, cols=8)


def _metrics(result):
    return [
        (c.cell.key(), t.trial, label,
         r.true_makespan, r.measured_time, r.correct, r.n_workers)
        for c in result.cells for t in c.trials
        for label, r in t.runs.items()
    ]


class TestSweepBackend:
    def test_vector_matches_reference_metrics(self):
        ref = run_sweep(SPEC)
        vec = run_sweep(SPEC, backend="vector")
        assert _metrics(vec) == _metrics(ref)
        assert vec.computed_trials == ref.computed_trials

    def test_vector_payloads_carry_no_trace(self):
        vec = run_sweep(SPEC, backend="vector")
        assert all(r.trace is None for c in vec.cells
                   for t in c.trials for r in t.runs.values())

    def test_parallel_vector_equals_serial(self):
        serial = run_sweep(SPEC, backend="vector")
        parallel = run_sweep(SPEC, backend="vector", workers=2)
        assert _metrics(parallel) == _metrics(serial)

    def test_unknown_backend_raises(self):
        with pytest.raises(BackendError):
            run_sweep(SPEC, backend="warp")

    def test_reference_address_unchanged_by_backend_param(self):
        # Pre-backend caches must stay warm: the reference address is
        # byte-identical with and without the (default) backend arg.
        cell = SPEC.cells()[0]
        legacy = cell_address(cell, SPEC, observe=False)
        assert cell_address(cell, SPEC, observe=False,
                            backend="reference") == legacy
        assert cell_address(cell, SPEC, observe=False,
                            backend="vector") != legacy

    def test_cache_separation_and_warm_hits(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cold_ref = run_sweep(SPEC, cache_dir=cache_dir)
        cold_vec = run_sweep(SPEC, backend="vector", cache_dir=cache_dir)
        # Vector results never collide with reference entries ...
        assert cold_vec.cached_trials == 0
        assert cold_vec.computed_trials == cold_ref.computed_trials
        # ... and both warm up independently.
        warm_ref = run_sweep(SPEC, cache_dir=cache_dir)
        warm_vec = run_sweep(SPEC, backend="vector", cache_dir=cache_dir)
        for warm, cold in ((warm_ref, cold_ref), (warm_vec, cold_vec)):
            assert warm.computed_trials == 0
            assert warm.cached_trials == SPEC.n_cells * SPEC.n_trials
            assert _metrics(warm) == _metrics(cold)

    def test_auto_with_observer_falls_back_to_reference(self):
        result = run_sweep(SPEC, backend="auto", observe=True)
        assert all(r.obs is not None and r.trace is not None
                   for c in result.cells for t in c.trials
                   for r in t.runs.values())


class TestServeBackend:
    @pytest.fixture(scope="class")
    def server(self):
        with BackgroundServer(ServeConfig()) as bg:
            yield bg

    def test_run_vector_parity_and_no_trace(self, server):
        client = server.client()
        kwargs = dict(flag="mauritius", scenario=3, seed=9, team_size=6,
                      rows=6, cols=8)
        ref = client.run(**kwargs)["trial"]["runs"]["scenario3"]
        vec = client.run(backend="vector",
                         **kwargs)["trial"]["runs"]["scenario3"]
        for metric in ("true_makespan", "measured_time", "correct"):
            assert vec[metric] == ref[metric]
        assert "trace" in ref and "trace" not in vec

    def test_task_backend_field(self, server):
        client = server.client()
        cell = SPEC.cells()[0].key_dict()
        ref = client.task(cell, seed=9, n_trials=2, trial=1)
        vec = client.task(cell, seed=9, n_trials=2, trial=1,
                          backend="vector")
        ref_run = ref["trial"]["runs"]["scenario1"]
        vec_run = vec["trial"]["runs"]["scenario1"]
        assert vec_run["measured_time"] == ref_run["measured_time"]

    def test_sweep_backend_field(self, server):
        client = server.client()
        kwargs = dict(flags=["mauritius"], scenarios=[3], team_sizes=[6],
                      rows=6, cols=8, n_trials=2, seed=4)
        ref = client.sweep(**kwargs)
        vec = client.sweep(backend="vector", **kwargs)
        assert vec["rows"] == ref["rows"]
        assert vec["computed_trials"] == ref["computed_trials"]

    def test_unknown_backend_is_400(self, server):
        with pytest.raises(ServeError) as err:
            server.client().run(flag="mauritius", backend="warp")
        assert err.value.status == 400
        assert err.value.code == "bad_field"

    def test_unsupported_explicit_vector_is_422(self, server):
        with pytest.raises(ServeError) as err:
            server.client().run(flag="mauritius", scenario=3, team_size=6,
                                backend="vector", observe=True)
        assert err.value.status == 422
        assert err.value.code == "backend_unsupported"

    def test_auto_falls_back_for_observers(self, server):
        reply = server.client().run(flag="mauritius", scenario=3,
                                    team_size=6, backend="auto",
                                    observe=True)
        run = reply["trial"]["runs"]["scenario3"]
        assert "trace" in run and "obs" in run


class TestFabricBackend:
    def test_vector_leases_match_reference_metrics(self):
        ref = run_sweep(SPEC)
        fab = run_fabric_sweep(
            SPEC, FabricConfig(workers=2, hedge_after_s=None),
            backend="vector")
        assert _metrics(fab) == _metrics(ref)
        assert all(t.runs[label].trace is None
                   for c in fab.cells for t in c.trials
                   for label in t.runs)
