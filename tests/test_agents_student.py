"""Tests for repro.agents.student — the service-time model."""

import numpy as np
import pytest

from repro.agents.implements import CRAYON, DAUBER, THICK_MARKER
from repro.agents.student import (
    FillStyle,
    StudentProcessor,
    StudentProfile,
    TimerStudent,
    sample_profile,
)


@pytest.fixture
def student():
    return StudentProcessor("P1", StudentProfile())


class TestFillStyle:
    def test_time_coverage_tradeoff(self):
        """Section IV: full coverage is slow, minimal is fast but sparse."""
        assert FillStyle.FULL.time_factor > FillStyle.SCRIBBLE.time_factor
        assert FillStyle.SCRIBBLE.time_factor > FillStyle.MINIMAL.time_factor
        assert FillStyle.FULL.coverage > FillStyle.SCRIBBLE.coverage
        assert FillStyle.SCRIBBLE.coverage > FillStyle.MINIMAL.coverage


class TestProfileValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            StudentProfile(base_cell_time=0)
        with pytest.raises(ValueError):
            StudentProfile(sigma=-0.1)
        with pytest.raises(ValueError):
            StudentProfile(warmup_tau=0)
        with pytest.raises(ValueError):
            StudentProfile(handoff_time=-1)


class TestWarmup:
    def test_fresh_student_is_slow(self, student):
        """Warmup penalty applies fully at zero experience."""
        assert student.warmup_factor() == pytest.approx(
            1.0 + student.profile.warmup_penalty
        )

    def test_warmup_decays_with_experience(self, student, rng):
        t_fresh = student.expected_cell_time(THICK_MARKER)
        for _ in range(200):
            student.stroke_time(THICK_MARKER, rng)
        student.begin_scenario()  # clear fatigue, keep experience
        t_warm = student.expected_cell_time(THICK_MARKER)
        assert t_warm < t_fresh
        assert student.warmup_factor() < 1.01

    def test_warmup_factor_monotone_nonincreasing(self, rng):
        s = StudentProcessor("P", StudentProfile())
        factors = []
        for _ in range(50):
            factors.append(s.warmup_factor())
            s.stroke_time(THICK_MARKER, rng)
        assert all(a >= b for a, b in zip(factors, factors[1:]))


class TestFatigue:
    def test_fatigue_grows_within_scenario(self, student, rng):
        student.lifetime_cells = 10_000  # kill warmup
        base = student.expected_cell_time(THICK_MARKER)
        for _ in range(100):
            student.stroke_time(THICK_MARKER, rng)
        assert student.expected_cell_time(THICK_MARKER) > base

    def test_begin_scenario_resets_fatigue(self, student, rng):
        for _ in range(50):
            student.stroke_time(THICK_MARKER, rng)
        student.begin_scenario()
        assert student.fatigue_factor() == 1.0
        assert student.lifetime_cells == 50  # experience persists


class TestStrokeTime:
    def test_positive_durations(self, student, rng):
        for _ in range(100):
            d, cov, _ = student.stroke_time(THICK_MARKER, rng)
            assert d > 0
            assert 0 < cov <= 1

    def test_implement_ordering_in_expectation(self, rng):
        """Dauber strokes are faster than crayon strokes on average."""
        means = {}
        for impl in (DAUBER, CRAYON):
            s = StudentProcessor("P", StudentProfile(warmup_penalty=0.0))
            times = [s.stroke_time(impl, rng)[0] for _ in range(300)]
            means[impl.name] = np.mean(times)
        assert means["dauber"] < means["crayon"]

    def test_sample_mean_close_to_expected(self, rng):
        s = StudentProcessor(
            "P", StudentProfile(warmup_penalty=0.0, fatigue_rate=0.0)
        )
        expected = s.expected_cell_time(THICK_MARKER)
        times = [s.stroke_time(THICK_MARKER, rng)[0] for _ in range(3000)]
        assert np.mean(times) == pytest.approx(expected, rel=0.05)

    def test_style_affects_duration(self, rng):
        fast = StudentProcessor("a", StudentProfile(warmup_penalty=0))
        slow = StudentProcessor("b", StudentProfile(warmup_penalty=0))
        t_min = np.mean([fast.stroke_time(THICK_MARKER, rng,
                                          FillStyle.MINIMAL)[0]
                         for _ in range(200)])
        t_full = np.mean([slow.stroke_time(THICK_MARKER, rng,
                                           FillStyle.FULL)[0]
                          for _ in range(200)])
        assert t_full > 2 * t_min

    def test_crayon_faults_occur(self, rng):
        s = StudentProcessor("P", StudentProfile())
        faults = [s.stroke_time(CRAYON, rng)[2] for _ in range(2000)]
        n_faults = sum(1 for f in faults if f is not None)
        assert n_faults > 0
        assert all(f == CRAYON.repair_time for f in faults if f is not None)


class TestHandoff:
    def test_handoff_time_positive(self, student, rng):
        for _ in range(20):
            assert student.handoff_time(rng) > 0

    def test_zero_handoff_profile(self, rng):
        s = StudentProcessor("P", StudentProfile(handoff_time=0.0))
        assert s.handoff_time(rng) == 0.0


class TestTimerStudent:
    def test_measurement_noisy_but_unbiased(self, rng):
        timer = TimerStudent("timer", reaction_sigma=0.3)
        true = 100.0
        readings = [timer.measure(true, rng) for _ in range(2000)]
        assert np.mean(readings) == pytest.approx(true, abs=0.5)
        assert np.std(readings) > 0.1

    def test_never_negative(self, rng):
        timer = TimerStudent("timer", reaction_sigma=5.0)
        assert all(timer.measure(0.1, rng) >= 0.0 for _ in range(200))


class TestSampleProfile:
    def test_profiles_vary(self, rng):
        profiles = [sample_profile(rng) for _ in range(20)]
        base_times = {p.base_cell_time for p in profiles}
        assert len(base_times) > 10

    def test_profiles_always_valid(self, rng):
        for _ in range(200):
            p = sample_profile(rng)
            assert p.base_cell_time >= 0.8
            assert p.warmup_tau > 0
