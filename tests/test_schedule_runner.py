"""Tests for repro.schedule.runner — the core scenario executor."""

import numpy as np
import pytest

from repro.agents import ImplementKit, make_team
from repro.agents.implements import THICK_MARKER
from repro.flags import compile_flag, mauritius, scenario_partition, single
from repro.grid.palette import MAURITIUS_STRIPES, Color
from repro.schedule.runner import (
    AcquirePolicy,
    marker_name,
    replay_many,
    run_partition,
)
from repro.sim.events import EventKind


@pytest.fixture
def prog():
    return compile_flag(mauritius())


def fresh_team(seed=0, n=4, copies=1):
    rng = np.random.default_rng(seed)
    return make_team("t", n, rng, colors=list(MAURITIUS_STRIPES),
                     copies=copies)


class TestRunPartition:
    def test_single_worker_correct(self, prog):
        team = fresh_team()
        r = run_partition(single(prog), team, np.random.default_rng(0))
        assert r.correct
        assert r.n_workers == 1
        assert r.true_makespan > 0
        assert r.canvas.n_colored() == prog.n_ops

    def test_every_stroke_logged(self, prog):
        team = fresh_team()
        r = run_partition(single(prog), team, np.random.default_rng(0))
        starts = r.trace.of_kind(EventKind.STROKE_START)
        ends = r.trace.of_kind(EventKind.STROKE_END)
        assert len(starts) == len(ends) == prog.n_ops

    def test_scenario3_no_waiting(self, prog):
        """One stripe per worker: four distinct implements, zero contention."""
        team = fresh_team()
        r = run_partition(scenario_partition(prog, 3), team,
                          np.random.default_rng(0))
        assert r.correct
        assert r.trace.total_wait_fraction() == 0.0

    def test_scenario4_has_waiting(self, prog):
        team = fresh_team()
        r = run_partition(scenario_partition(prog, 4), team,
                          np.random.default_rng(0))
        assert r.correct
        assert r.trace.total_wait_fraction() > 0.05

    def test_duplicate_implements_reduce_waiting(self, prog):
        r1 = run_partition(scenario_partition(prog, 4), fresh_team(seed=1),
                           np.random.default_rng(1))
        r4 = run_partition(scenario_partition(prog, 4),
                           fresh_team(seed=1, copies=4),
                           np.random.default_rng(1))
        assert r4.trace.total_wait_fraction() < r1.trace.total_wait_fraction()

    def test_measured_time_close_to_true(self, prog):
        team = fresh_team()
        r = run_partition(single(prog), team, np.random.default_rng(0))
        assert abs(r.measured_time - r.true_makespan) < 5.0

    def test_release_per_stroke_policy_slower(self, prog):
        """Thrashing: releasing after every cell forces constant handoffs."""
        r_hold = run_partition(scenario_partition(prog, 4),
                               fresh_team(seed=2), np.random.default_rng(2),
                               policy=AcquirePolicy.HOLD_COLOR_RUN)
        r_thrash = run_partition(scenario_partition(prog, 4),
                                 fresh_team(seed=2), np.random.default_rng(2),
                                 policy=AcquirePolicy.RELEASE_PER_STROKE)
        assert r_thrash.correct
        assert r_thrash.true_makespan > r_hold.true_makespan

    def test_determinism(self, prog):
        def run(seed):
            r = run_partition(scenario_partition(prog, 4), fresh_team(seed),
                              np.random.default_rng(seed))
            return r.true_makespan

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_handoffs_logged_in_scenario4(self, prog):
        team = fresh_team()
        r = run_partition(scenario_partition(prog, 4), team,
                          np.random.default_rng(0))
        assert len(r.trace.handoffs()) > 0

    def test_no_handoffs_in_scenario3(self, prog):
        team = fresh_team()
        r = run_partition(scenario_partition(prog, 3), team,
                          np.random.default_rng(0))
        assert r.trace.handoffs() == []

    def test_agent_attribution_on_canvas(self, prog):
        team = fresh_team()
        r = run_partition(scenario_partition(prog, 3), team,
                          np.random.default_rng(0))
        counts = r.canvas.agent_cell_counts()
        assert len(counts) == 4
        assert all(v == 24 for v in counts.values())


class TestMarkerName:
    def test_names(self):
        assert marker_name(Color.RED) == "red_marker"
        assert marker_name(Color.BLACK) == "black_marker"


class TestReplayMany:
    @staticmethod
    def replay(prog, n_trials, seed):
        return replay_many(
            make_partition=lambda: single(prog),
            team_factory=lambda rng: make_team(
                "t", 1, rng, colors=list(MAURITIUS_STRIPES)
            ),
            n_trials=n_trials,
            seed=seed,
        )

    def test_independent_trials(self, prog):
        results = self.replay(prog, 3, 11)
        assert len(results) == 3
        times = [r.true_makespan for r in results]
        assert len(set(times)) == 3  # different teams, different times
        assert all(r.correct for r in results)

    def test_reproducible(self, prog):
        a = self.replay(prog, 3, 11)
        b = self.replay(prog, 3, 11)
        assert [r.true_makespan for r in a] == [r.true_makespan for r in b]

    def test_no_cross_batch_seed_collisions(self, prog):
        """Regression: trial streams used to derive as ``seed + t``, so
        batch seed=11 trial 2 was the SAME stream as batch seed=13
        trial 0 — "independent replications" silently duplicated each
        other.  SeedSequence spawning must keep all batches disjoint."""
        batch_a = self.replay(prog, 3, 11)
        batch_b = self.replay(prog, 3, 13)
        times_a = [r.true_makespan for r in batch_a]
        times_b = [r.true_makespan for r in batch_b]
        assert not set(times_a) & set(times_b)


class TestStrictCorrectness:
    def test_lenient_ignores_blank_target_cells(self, prog):
        """Default grading applies Section V-C lenience: a cell the target
        leaves blank may hold anything (paper is already white)."""
        from repro.flags.compiler import execute
        target = execute(prog).codes.copy()
        target[0, 0] = 0  # carve a blank cell out of the target
        lenient = run_partition(single(prog), fresh_team(),
                                np.random.default_rng(0), target=target)
        strict = run_partition(single(prog), fresh_team(),
                               np.random.default_rng(0), target=target,
                               strict=True)
        assert lenient.correct          # painted cell forgiven
        assert not strict.correct       # exact equality demanded

    def test_strict_passes_on_exact_match(self, prog):
        r = run_partition(single(prog), fresh_team(),
                          np.random.default_rng(0), strict=True)
        assert r.correct
