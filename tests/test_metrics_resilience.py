"""Tests for the resilience metrics (makespan inflation, coverage loss,
recovery latency)."""

import numpy as np
import pytest

from repro.agents import make_team
from repro.faults import (
    FaultPlan,
    ImplementFailure,
    RecoveryConfig,
    RecoveryPolicy,
    StudentDropout,
)
from repro.flags import mauritius
from repro.grid.canvas import Canvas
from repro.grid.palette import Color
from repro.metrics import MetricError, resilience_report, target_coverage
from repro.schedule import get_scenario, run_scenario


def run(plan, policy=RecoveryPolicy.REDISTRIBUTE, seed=7):
    spec = mauritius()
    team = make_team("team", 4, np.random.default_rng(seed),
                     colors=list(spec.colors_used()))
    rng = np.random.default_rng(seed)
    return run_scenario(get_scenario(4), spec, team, rng,
                        fault_plan=plan,
                        recovery=RecoveryConfig(policy=policy))


class TestTargetCoverage:
    def test_full_coverage(self):
        canvas = Canvas(2, 2)
        target = np.full((2, 2), int(Color.RED), dtype=np.int8)
        for r in range(2):
            for c in range(2):
                canvas.paint((r, c), Color.RED)
        assert target_coverage(canvas, target) == 1.0

    def test_half_coverage(self):
        canvas = Canvas(1, 2)
        target = np.full((1, 2), int(Color.RED), dtype=np.int8)
        canvas.paint((0, 0), Color.RED)
        assert target_coverage(canvas, target) == 0.5

    def test_blank_target_cells_ignored(self):
        canvas = Canvas(1, 2)
        target = np.array([[int(Color.RED), 0]], dtype=np.int8)
        canvas.paint((0, 0), Color.RED)
        assert target_coverage(canvas, target) == 1.0

    def test_all_blank_target_counts_as_covered(self):
        canvas = Canvas(1, 1)
        assert target_coverage(canvas, np.zeros((1, 1), dtype=np.int8)) == 1.0

    def test_shape_mismatch_rejected(self):
        canvas = Canvas(2, 2)
        with pytest.raises(MetricError):
            target_coverage(canvas, np.zeros((3, 3), dtype=np.int8))


class TestResilienceReport:
    def test_abandon_reports_coverage_loss(self):
        baseline = run(FaultPlan())
        faulted = run(FaultPlan.of([StudentDropout(at=60.0, worker=3)]),
                      policy=RecoveryPolicy.ABANDON)
        rep = resilience_report(baseline, faulted)
        assert rep.baseline_coverage == 1.0
        assert rep.faulted_coverage < 1.0
        assert rep.coverage_loss > 0.0
        assert rep.ops_abandoned > 0
        assert rep.faults_fired == 1

    def test_redistribute_reports_inflation_not_loss(self):
        baseline = run(FaultPlan())
        faulted = run(FaultPlan.of([StudentDropout(at=60.0, worker=3)]))
        rep = resilience_report(baseline, faulted)
        assert rep.coverage_loss == 0.0
        assert rep.makespan_inflation > 1.0
        assert rep.ops_reassigned > 0

    def test_spare_reports_recovery_latency(self):
        baseline = run(FaultPlan())
        faulted = run(
            FaultPlan.of([ImplementFailure(at=30.0, color=Color.RED)]),
            policy=RecoveryPolicy.SPARE_WITH_DELAY)
        rep = resilience_report(baseline, faulted)
        assert rep.coverage_loss == 0.0
        assert rep.mean_recovery_latency > 0.0
        assert rep.max_recovery_latency >= rep.mean_recovery_latency

    def test_clean_vs_clean_is_the_identity(self):
        baseline = run(FaultPlan())
        rep = resilience_report(baseline, run(FaultPlan()))
        assert rep.makespan_inflation == 1.0
        assert rep.coverage_loss == 0.0
        assert rep.faults_fired == 0

    def test_faulty_baseline_rejected(self):
        faulted = run(FaultPlan.of([StudentDropout(at=60.0, worker=3)]))
        with pytest.raises(MetricError, match="clean baseline"):
            resilience_report(faulted, faulted)

    def test_summary_roundtrip(self):
        baseline = run(FaultPlan())
        faulted = run(FaultPlan.of([StudentDropout(at=60.0, worker=3)]))
        s = resilience_report(baseline, faulted).summary()
        assert set(s) >= {"makespan_inflation", "coverage_loss",
                          "faults_fired", "ops_reassigned"}
