"""Error-path coverage: the failure branches the happy paths never hit."""

import numpy as np
import pytest

from repro.sim.engine import Simulator, Timeout
from repro.sim.events import Event, EventKind
from repro.sim.trace import Trace, TraceError
from repro.viz.gantt import render_agent_loads, render_gantt


class TestTraceErrorPaths:
    def test_release_without_acquire_rejected(self):
        tr = Trace([Event(time=1.0, seq=0,
                          kind=EventKind.RESOURCE_RELEASE,
                          agent="P1", data={"resource": "m"})])
        with pytest.raises(TraceError, match="RELEASE without ACQUIRE"):
            tr.resource_holders_timeline("m")

    def test_resource_utilization_empty_trace(self):
        assert Trace([]).resource_utilization("m") == 0.0

    def test_events_sorted_on_construction(self):
        events = [
            Event(time=2.0, seq=1, kind=EventKind.NOTE, agent="b", data={}),
            Event(time=1.0, seq=0, kind=EventKind.NOTE, agent="a", data={}),
        ]
        tr = Trace(events)
        assert [e.time for e in tr.events] == [1.0, 2.0]


class TestGanttEdgeCases:
    def test_loads_with_no_agents(self):
        assert render_agent_loads(Trace([])) == "(no working agents)"

    def test_gantt_tiny_width(self):
        sim = Simulator()

        def w(name):
            sim.log(EventKind.STROKE_START, agent=name, color="red")
            yield Timeout(1.0)
            sim.log(EventKind.STROKE_END, agent=name, color="red")

        sim.add_process("P1", w("P1"))
        sim.run()
        out = render_gantt(Trace(sim.events), width=5)
        assert "P1" in out


class TestMetricErrorPaths:
    def test_speedup_curve_empty_dag(self):
        from repro.depgraph.graph import TaskGraph
        from repro.depgraph.schedule_dag import list_schedule
        g = TaskGraph()
        sched = list_schedule(g, 2)
        assert sched.makespan == 0.0
        assert sched.utilization() == 0.0

    def test_quality_frontier_empty(self):
        from repro.metrics.quality import speed_quality_frontier
        assert speed_quality_frontier({}) == []

    def test_scaling_point_validation(self):
        from repro.metrics.scalability import ScalingCurve, ScalingPoint
        from repro.metrics.speedup import MetricError
        with pytest.raises(MetricError):
            ScalingCurve("strong", [ScalingPoint(3, 1.0, -1)])


class TestCliErrorPaths:
    def test_scenario_unknown_flag(self):
        from repro.cli import main
        with pytest.raises(KeyError):
            main(["scenario", "narnia", "1"])

    def test_depgraph_unknown_flag(self):
        from repro.cli import main
        with pytest.raises(KeyError):
            main(["depgraph", "narnia"])

    def test_parser_rejects_bad_scenario_number(self):
        from repro.cli import build_parser
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenario", "mauritius", "9"])


class TestDesignerErrorPaths:
    def test_empty_stripes_rejected(self):
        from repro.flags.designer import DesignError, FlagDesigner
        with pytest.raises(DesignError):
            FlagDesigner("x").hstripes([])
        with pytest.raises(DesignError):
            FlagDesigner("x").vstripes([])

    def test_nameless_flag_rejected(self):
        from repro.flags.designer import DesignError, FlagDesigner
        with pytest.raises(DesignError):
            FlagDesigner("")


class TestMaterialsErrorPaths:
    def test_dry_run_invalid_scenario_estimates_skipped(self):
        """Unknown scenario numbers fall back to 4 workers, not a crash."""
        from repro.agents import ImplementKit
        from repro.classroom.materials import dry_run
        from repro.flags import mauritius
        kit = ImplementKit.uniform(mauritius().colors_used())
        report = dry_run(mauritius(), kit, scenarios=[1, 9])
        assert "scenario9" in report.estimated_minutes
