"""Property tests: static bounds vs. the whole shipped catalog.

The analyzer's speedup bound is a *promise*: no run of the engine may
beat it. These tests sweep every flag in the catalog across all four
scenarios and check the promise against real simulations, plus the
weaker work-span law against the list scheduler.
"""

import json

import numpy as np
import pytest

from repro.agents import make_team
from repro.analyze import AnalysisReport, analyze_scenario, canonical_dumps
from repro.depgraph import flag_dag, list_schedule
from repro.faults import sample_plan
from repro.flags import available_flags, get_flag
from repro.metrics import speedup
from repro.schedule import get_scenario, run_scenario

ALL_FLAGS = sorted(available_flags())
SCENARIOS = (1, 2, 3, 4)

# Large enough for jordan/great_britain scenario 3 (five active roles).
TEAM_SIZE = 8


def observed_speedup(result):
    trace = result.trace
    t_serial = sum(trace.busy_time(a) for a in trace.agents())
    return speedup(t_serial, trace.makespan())


class TestSpeedupBoundNeverExceeded:
    @pytest.mark.parametrize("flag", ALL_FLAGS)
    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_bound_dominates_measured(self, flag, scenario):
        spec = get_flag(flag)
        report = analyze_scenario(spec, scenario, team_size=TEAM_SIZE)
        assert report.ok

        rng = np.random.default_rng(7)
        team = make_team("team", TEAM_SIZE, rng,
                         colors=list(spec.colors_used()))
        result = run_scenario(get_scenario(scenario), spec, team, rng)
        assert observed_speedup(result) <= report.speedup_bound + 1e-9

    def test_bound_is_tight_somewhere(self):
        # The bound is not vacuous: a serial run achieves it exactly,
        # and scenario 3 on a stripe flag gets most of the way there.
        spec = get_flag("mauritius")
        serial = analyze_scenario(spec, 1, team_size=TEAM_SIZE)
        rng = np.random.default_rng(7)
        team = make_team("team", TEAM_SIZE, rng,
                         colors=list(spec.colors_used()))
        result = run_scenario(get_scenario(1), spec, team, rng)
        assert observed_speedup(result) == pytest.approx(
            serial.speedup_bound)

        striped = analyze_scenario(spec, 3, team_size=TEAM_SIZE)
        rng = np.random.default_rng(7)
        team = make_team("team", TEAM_SIZE, rng,
                         colors=list(spec.colors_used()))
        result = run_scenario(get_scenario(3), spec, team, rng)
        assert observed_speedup(result) > 0.75 * striped.speedup_bound

    @pytest.mark.parametrize("flag", ALL_FLAGS)
    @pytest.mark.parametrize("processors", [1, 2, 4, 8])
    def test_work_span_law_vs_list_scheduler(self, flag, processors):
        graph = flag_dag(get_flag(flag))
        schedule = list_schedule(graph, processors)
        achieved = graph.total_work() / schedule.makespan
        assert achieved <= graph.ideal_speedup_bound() + 1e-9


class TestShippedCatalogAnalyzesClean:
    @pytest.mark.parametrize("flag", ALL_FLAGS)
    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_every_scenario_clean(self, flag, scenario):
        report = analyze_scenario(get_flag(flag), scenario,
                                  team_size=TEAM_SIZE)
        assert report.ok, [i.message for i in report.errors]
        assert report.deadlock_cycle == []

    @pytest.mark.parametrize("flag", ALL_FLAGS)
    def test_sampled_fault_plans_clean(self, flag):
        # sample_plan only emits faults valid for the run it was sized
        # for, so the static checker must agree with it.
        spec = get_flag(flag)
        base = analyze_scenario(spec, 3, team_size=TEAM_SIZE)
        rng = np.random.default_rng(11)
        plan = sample_plan(rng, n_workers=base.n_active_workers,
                           colors=list(spec.colors_used()), horizon=50.0)
        report = analyze_scenario(spec, 3, team_size=TEAM_SIZE,
                                  fault_plan=plan)
        assert report.ok, [i.message for i in report.errors]


class TestReportsRoundTrip:
    @pytest.mark.parametrize("flag", ALL_FLAGS)
    def test_canonical_json_round_trips(self, flag):
        report = analyze_scenario(get_flag(flag), 3, team_size=TEAM_SIZE)
        raw = report.to_json()
        body = json.loads(raw)
        assert canonical_dumps(body) == raw
        assert AnalysisReport.from_dict(body).to_json() == raw
