"""Tests for repro.survey.transitions — the Figure 8 model."""

import numpy as np
import pytest

from repro.data.paper_tables import FIG8_TRANSITIONS, QUIZ_CONCEPTS, QUIZ_N
from repro.survey.transitions import (
    STATES,
    TransitionError,
    analyze_sheets,
    exact_state_counts,
    expected_fractions,
    improvement_summary,
    pre_post_correct_rates,
    simulate_cohort,
)


class TestExactStateCounts:
    def test_counts_sum_to_n(self):
        fr = {"retained": 0.5, "gained": 0.3, "lost": 0.1, "never": 0.1}
        counts = exact_state_counts(fr, 13)
        assert sum(counts.values()) == 13

    def test_matches_fractions_for_round_n(self):
        fr = {"retained": 0.5, "gained": 0.25, "lost": 0.25, "never": 0.0}
        assert exact_state_counts(fr, 8) == {
            "retained": 4, "gained": 2, "lost": 2, "never": 0,
        }

    def test_bad_fractions_rejected(self):
        with pytest.raises(TransitionError):
            exact_state_counts({"retained": 0.5}, 10)


class TestSimulateCohort:
    def test_default_cohort_sizes(self, rng):
        for inst, n in QUIZ_N.items():
            sheets = simulate_cohort(inst, rng)
            assert sheets.n == n

    def test_unknown_institution(self, rng):
        with pytest.raises(TransitionError, match="valid"):
            simulate_cohort("Knox", rng)  # Knox did not run the quiz

    def test_sheets_are_complete_quizzes(self, rng):
        sheets = simulate_cohort("HPU", rng)
        for sheet in sheets.pre + sheets.post:
            assert set(sheet) == set(QUIZ_CONCEPTS)

    @pytest.mark.parametrize("inst", sorted(FIG8_TRANSITIONS))
    def test_exact_mode_recovers_calibration(self, inst, rng):
        """Grading simulated sheets reproduces Figure 8 (within 1/n)."""
        sheets = simulate_cohort(inst, rng, exact=True)
        analysis = analyze_sheets(sheets)
        expected = expected_fractions(inst)
        tol = 1.0 / sheets.n + 1e-9
        for concept in QUIZ_CONCEPTS:
            for state in STATES:
                assert abs(analysis[concept][state]
                           - expected[concept][state]) <= tol, (
                    inst, concept, state
                )

    def test_random_mode_close_for_large_n(self):
        rng = np.random.default_rng(0)
        sheets = simulate_cohort("TNTech", rng, n=5000, exact=False)
        analysis = analyze_sheets(sheets)
        expected = expected_fractions("TNTech")
        for concept in QUIZ_CONCEPTS:
            for state in STATES:
                assert abs(analysis[concept][state]
                           - expected[concept][state]) < 0.03


class TestDerivedSummaries:
    @pytest.fixture(scope="class")
    def usi_analysis(self):
        return expected_fractions("USI")

    def test_improvement_summary(self, usi_analysis):
        imp = improvement_summary(usi_analysis)
        # Contention grew the most at USI (+38.5 gained, 0 lost).
        assert max(imp, key=imp.get) == "contention"
        # Task decomposition lost ground (0 gained, 23.1 lost).
        assert imp["task_decomposition"] < 0

    def test_pre_post_rates(self, usi_analysis):
        rates = pre_post_correct_rates(usi_analysis)
        pre, post = rates["scalability"]
        assert pre == pytest.approx(0.923)
        assert post == pytest.approx(0.923)
        pre_c, post_c = rates["contention"]
        assert post_c > pre_c  # the activity taught contention

    def test_pipelining_weakest_concept(self):
        """Fig 8: pipelining had the lowest initial understanding."""
        for inst in FIG8_TRANSITIONS:
            rates = pre_post_correct_rates(expected_fractions(inst))
            pre_rates = {c: pre for c, (pre, _post) in rates.items()}
            assert pre_rates["pipelining"] <= min(
                pre_rates["task_decomposition"], pre_rates["scalability"]
            )
