"""Tests for the fabric coordinator on healthy fleets.

The headline invariant — fabric results byte-identical to clean serial
``run_sweep`` — plus cache interop (warm re-runs lease nothing), the
metrics surface, work stealing under a slow-start straggler, and the
configuration / pre-flight gates.
"""

import pytest

from repro.fabric import (
    ChaosPlan,
    FabricConfig,
    FabricCoordinator,
    FabricError,
    SlowStart,
    run_fabric_sweep,
)
from repro.obs import MetricsRegistry
from repro.sweep import ResultCache, SweepError, SweepSpec, run_sweep

SPEC = SweepSpec(flags=("poland",), scenarios=(3, 4), n_trials=2, seed=5)


def assert_identical(a, b):
    """Byte-identity: every trial's every run, traces included."""
    assert len(a.cells) == len(b.cells)
    for ca, cb in zip(a.cells, b.cells):
        assert ca.cell == cb.cell
        assert ca.trials == cb.trials  # frozen dataclasses: trace bytes


class TestConfig:
    def test_defaults_are_valid(self):
        config = FabricConfig()
        assert config.workers == 2
        assert config.worker_names == ["w0", "w1"]

    def test_remote_names_follow_locals(self):
        config = FabricConfig(workers=1, remotes=(("h", 1), ("h", 2)))
        assert config.worker_names == ["w0", "r0", "r1"]

    @pytest.mark.parametrize("kwargs", [
        {"workers": -1},
        {"workers": 0},  # no remotes either -> empty fleet
        {"max_attempts": 0},
        {"retry_base_s": 0.0},
        {"retry_cap_s": -1.0},
        {"hedge_after_s": 0.0},
        {"heartbeat_timeout_s": 0.0},
        {"tick_s": 0.0},
    ])
    def test_bad_configs_rejected(self, kwargs):
        with pytest.raises(FabricError):
            FabricConfig(**kwargs)


class TestCleanParity:
    def test_fabric_byte_identical_to_serial(self):
        serial = run_sweep(SPEC)
        fabric = run_fabric_sweep(SPEC, FabricConfig(workers=2))
        assert_identical(serial, fabric)
        assert fabric.all_correct
        assert fabric.computed_trials == serial.computed_trials

    def test_single_worker_fabric_matches_too(self):
        serial = run_sweep(SPEC)
        fabric = run_fabric_sweep(SPEC, FabricConfig(workers=1))
        assert_identical(serial, fabric)

    def test_more_workers_than_cells(self):
        spec = SweepSpec(flags=("poland",), scenarios=(3,), n_trials=1,
                         seed=7)
        fabric = run_fabric_sweep(spec, FabricConfig(workers=3))
        assert_identical(run_sweep(spec), fabric)

    def test_fault_plan_cells_ride_the_fabric(self):
        from repro.faults import FaultPlan, TransientStall
        plan = FaultPlan.of([TransientStall(at=5.0, worker=1,
                                            duration=4.0)])
        spec = SweepSpec(flags=("mauritius",), scenarios=(3,),
                         fault_plans=(("clean", None), ("stall", plan)),
                         n_trials=2, seed=11)
        assert_identical(run_sweep(spec),
                         run_fabric_sweep(spec, FabricConfig(workers=2)))


class TestCacheInterop:
    def test_warm_rerun_leases_nothing(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        first = FabricCoordinator(SPEC, FabricConfig(workers=2),
                                  cache=cache)
        first.run()
        assert first.stats.computed_cells == 2

        warm = FabricCoordinator(SPEC, FabricConfig(workers=2),
                                 cache=cache)
        result = warm.run()
        assert result.computed_trials == 0
        assert result.cached_trials == SPEC.total_trials
        assert warm.stats.leases == 0
        assert warm.stats.cached_cells == 2
        assert_identical(run_sweep(SPEC), result)

    def test_fabric_warms_the_serial_cache_and_back(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        fabric = run_fabric_sweep(SPEC, FabricConfig(workers=2),
                                  cache=cache)
        serial = run_sweep(SPEC, cache=cache)
        assert serial.computed_trials == 0  # fabric entries readable
        assert_identical(fabric, serial)

        spec2 = SweepSpec(flags=("poland",), scenarios=(3,), n_trials=2,
                          seed=6)
        run_sweep(spec2, cache=cache)
        again = FabricCoordinator(spec2, FabricConfig(workers=2),
                                  cache=cache)
        assert again.run().computed_trials == 0  # and the reverse


class TestMetricsAndStats:
    def test_clean_run_metric_surface(self):
        registry = MetricsRegistry()
        coordinator = FabricCoordinator(SPEC, FabricConfig(workers=2),
                                        registry=registry)
        coordinator.run()
        text = registry.render_prometheus()
        for series in ("fabric_leases_total", "fabric_cells_total",
                       "fabric_worker_state"):
            assert series in text, series
        assert registry.counter("fabric_leases_total").value(
            kind="primary") == 2
        assert registry.counter("fabric_cells_total").value(
            source="computed") == 2
        assert coordinator.stats.leases == 2
        assert coordinator.stats.retries == 0
        assert coordinator.stats.duplicates == 0
        assert coordinator.stats.worker_deaths == 0
        # Every computed cell took exactly one lease.
        assert sorted(coordinator.stats.attempts.values()) == [1, 1]

    def test_stats_attempt_keys_are_cell_keys(self):
        coordinator = FabricCoordinator(SPEC, FabricConfig(workers=2))
        coordinator.run()
        assert (set(coordinator.stats.attempts)
                == {c.key() for c in SPEC.cells()})


class TestWorkStealing:
    def test_idle_worker_steals_from_slow_starter(self):
        # w1 shows up late; w0 must steal w1's queued cells to finish.
        spec = SweepSpec(flags=("poland",), scenarios=(3, 4),
                        team_sizes=(4, 5), n_trials=1, seed=13)
        chaos = ChaosPlan.of([SlowStart(worker="w1", delay_s=30.0)])
        registry = MetricsRegistry()
        coordinator = FabricCoordinator(
            spec, FabricConfig(workers=2, hedge_after_s=None),
            chaos=chaos, registry=registry)
        result = coordinator.run()
        assert_identical(run_sweep(spec), result)
        assert coordinator.stats.steals >= 1
        assert coordinator.stats.stolen_cells >= 1
        assert registry.counter("fabric_steals_total").value() >= 1


class TestGates:
    def test_preflight_rejects_before_spawning(self):
        bad = SweepSpec(flags=("mauritius",), scenarios=(3,),
                        team_sizes=(2,))
        with pytest.raises(SweepError, match="static analysis"):
            run_fabric_sweep(bad, FabricConfig(workers=2))

    def test_coordinator_runs_exactly_once(self):
        coordinator = FabricCoordinator(SPEC, FabricConfig(workers=2))
        coordinator.run()
        with pytest.raises(FabricError, match="exactly once"):
            coordinator.run()
