"""Tests for repro.metrics.loadbalance."""

import numpy as np
import pytest

from repro.agents import make_team
from repro.flags import compile_flag, mauritius, scenario_partition
from repro.grid.palette import MAURITIUS_STRIPES
from repro.metrics.loadbalance import (
    coefficient_of_variation,
    finish_time_spread,
    imbalance_percent,
    imbalance_ratio,
    makespan_vs_ideal,
    partition_stroke_imbalance,
    per_worker_report,
    trace_busy_imbalance,
)
from repro.metrics.speedup import MetricError
from repro.schedule.runner import run_partition


class TestImbalanceRatio:
    def test_perfect_balance(self):
        assert imbalance_ratio([10, 10, 10]) == 1.0

    def test_skew(self):
        assert imbalance_ratio([30, 10, 20]) == pytest.approx(1.5)

    def test_all_zero_loads(self):
        assert imbalance_ratio([0, 0]) == 1.0

    def test_validation(self):
        with pytest.raises(MetricError):
            imbalance_ratio([])
        with pytest.raises(MetricError):
            imbalance_ratio([1, -2])

    def test_percent_form(self):
        assert imbalance_percent([30, 10, 20]) == pytest.approx(50.0)


class TestCov:
    def test_zero_for_uniform(self):
        assert coefficient_of_variation([5, 5, 5]) == 0.0

    def test_positive_for_spread(self):
        assert coefficient_of_variation([1, 9]) > 0.5

    def test_zero_mean(self):
        assert coefficient_of_variation([0, 0]) == 0.0


class TestOnRuns:
    @pytest.fixture(scope="class")
    def s3_run(self):
        prog = compile_flag(mauritius())
        team = make_team("t", 4, np.random.default_rng(1),
                         colors=list(MAURITIUS_STRIPES))
        return run_partition(scenario_partition(prog, 3), team,
                             np.random.default_rng(1))

    def test_static_imbalance_perfect_for_scenario3(self):
        prog = compile_flag(mauritius())
        assert partition_stroke_imbalance(scenario_partition(prog, 3)) == 1.0

    def test_busy_imbalance_from_student_variation(self, s3_run):
        """Equal strokes, unequal students: busy imbalance is > 1 but mild."""
        ratio = trace_busy_imbalance(s3_run.trace)
        assert 1.0 < ratio < 2.0

    def test_finish_spread_positive(self, s3_run):
        assert finish_time_spread(s3_run.trace) > 0

    def test_makespan_vs_ideal_at_least_one(self, s3_run):
        assert makespan_vs_ideal(s3_run.trace) >= 1.0

    def test_per_worker_report_rows(self, s3_run):
        report = per_worker_report(s3_run.trace)
        assert len(report) == 4
        for row in report:
            assert row["strokes"] == 24.0
            assert 0.0 <= row["utilization"] <= 1.0

    def test_empty_trace_raises(self):
        from repro.sim.trace import Trace
        with pytest.raises(MetricError):
            trace_busy_imbalance(Trace([]))
        with pytest.raises(MetricError):
            finish_time_spread(Trace([]))
