"""End-to-end tests for repro.serve — a live server on a thread.

Covers the serving acceptance criteria: determinism (a served trial is
byte-identical to the in-process one — cold, batched, or cached),
backpressure (429 + Retry-After at capacity), deadlines (504), the
structured protocol error paths, metrics exposure, and graceful drain.
"""

import http.client
import json
import threading
import time

import pytest

from repro.obs import MetricsRegistry
from repro.serve import (
    BackgroundServer,
    PROTOCOL_VERSION,
    ServeConfig,
    ServeError,
)
from repro.sweep import ResultCache, SweepSpec, TrialRecord, run_sweep
from repro.sweep.executor import run_trial
from repro.serve.protocol import RunRequest


def canon(obj):
    """Canonical JSON for byte-identity comparisons."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    """One live server (with cache) shared across this module."""
    cache_dir = tmp_path_factory.mktemp("serve-cache")
    config = ServeConfig(cache_dir=str(cache_dir), batch_window_s=0.01)
    with BackgroundServer(config) as bg:
        yield bg


class TestEndpoints:
    def test_healthz(self, server):
        health = server.client().healthz()
        assert health["status"] == "ok"
        assert health["protocol"] == PROTOCOL_VERSION
        assert health["queue_depth"] == 0

    def test_flags_lists_catalog(self, server):
        flags = server.client().flags()["flags"]
        assert "mauritius" in flags and "jordan" in flags
        assert flags["mauritius"]["rows"] > 0
        assert isinstance(flags["great_britain"]["layered"], bool)

    def test_metrics_exposition(self, server):
        server.client().run(flag="poland", scenario=3, seed=1)
        text = server.client().metrics()
        for series in ("serve_queue_depth", "serve_batch_size_bucket",
                       "serve_cache_hit_ratio", "serve_cache_hits_total",
                       "serve_request_latency_seconds_bucket",
                       "serve_requests_total"):
            assert series in text, series

    def test_sweep_endpoint(self, server):
        reply = server.client().sweep(flags=["poland"], scenarios=[3],
                                      n_trials=2, seed=123)
        assert reply["computed_trials"] == 2
        assert reply["all_correct"] is True
        assert reply["columns"][0] == "cell"
        warm = server.client().sweep(flags=["poland"], scenarios=[3],
                                     n_trials=2, seed=123)
        assert warm["computed_trials"] == 0
        assert warm["cached_trials"] == 2


class TestRunDeterminism:
    def test_cold_run_byte_identical_to_in_process(self, server):
        body = {"flag": "poland", "scenario": 4, "seed": 21}
        reply = server.client().run(**body)
        assert reply["cached"] is False
        in_process = run_trial(RunRequest.from_body(body).task())
        assert canon(reply["trial"]) == canon(in_process)

    def test_warm_repeat_is_cache_hit_with_identical_bytes(self, server):
        body = {"flag": "mauritius", "scenario": 3, "seed": 22}
        cold = server.client().run(**body)
        warm = server.client().run(**body)
        assert cold["cached"] is False
        assert warm["cached"] is True
        assert canon(cold["trial"]) == canon(warm["trial"])

    def test_served_trial_equals_run_sweep_records(self, server):
        reply = server.client().run(flag="poland", scenario=3, seed=23)
        spec = SweepSpec(flags=("poland",), scenarios=(3,),
                         n_trials=1, seed=23)
        expected = run_sweep(spec).cells[0].trials[0]
        assert TrialRecord.from_payload(reply["trial"]) == expected

    def test_batched_requests_identical_to_solo_runs(self):
        """Trials coalesced into one dispatch match in-process runs."""
        config = ServeConfig(batch_window_s=0.25, batch_max=8)
        with BackgroundServer(config) as bg:
            replies = {}

            def issue(seed):
                replies[seed] = bg.client().run(flag="poland",
                                                scenario=3, seed=seed)

            threads = [threading.Thread(target=issue, args=(seed,))
                       for seed in (31, 32)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert max(r["batch_size"] for r in replies.values()) == 2
            for seed, reply in replies.items():
                solo = run_trial(RunRequest.from_body(
                    {"flag": "poland", "scenario": 3,
                     "seed": seed}).task())
                assert canon(reply["trial"]) == canon(solo)

    def test_server_cache_interoperates_with_sweep_cache(self, tmp_path):
        """run_sweep warms the cache; the server reads the entry back."""
        spec = SweepSpec(flags=("poland",), scenarios=(3,),
                         n_trials=1, seed=41)
        cache = ResultCache(tmp_path / "shared")
        run_sweep(spec, cache=cache)
        config = ServeConfig(cache_dir=str(tmp_path / "shared"))
        with BackgroundServer(config) as bg:
            reply = bg.client().run(flag="poland", scenario=3, seed=41)
        assert reply["cached"] is True


class TestBackpressure:
    def test_429_with_retry_after_when_queue_full(self):
        config = ServeConfig(max_pending=1, batch_window_s=0.4,
                             retry_after_s=2.0)
        with BackgroundServer(config) as bg:
            outcome = {}

            def occupant():
                outcome["first"] = bg.client().run(
                    flag="mauritius", scenario=1, seed=91,
                    rows=24, cols=36)

            t = threading.Thread(target=occupant)
            t.start()
            time.sleep(0.15)  # let the first request take the only slot
            with pytest.raises(ServeError) as err:
                bg.client().run(flag="poland", scenario=3, seed=92)
            t.join()
            assert err.value.status == 429
            assert err.value.code == "too_many_requests"
            assert err.value.retry_after == 2.0
            assert "runs" in outcome["first"]["trial"]  # occupant finished
            metrics = bg.client().metrics()
            assert "serve_admission_rejects_total 1" in metrics

    def test_healthz_still_answers_under_load(self):
        config = ServeConfig(max_pending=1, batch_window_s=0.4)
        with BackgroundServer(config) as bg:
            t = threading.Thread(
                target=lambda: bg.client().run(flag="poland",
                                               scenario=3, seed=93))
            t.start()
            time.sleep(0.1)
            health = bg.client().healthz()  # bypasses admission
            t.join()
            assert health["status"] == "ok"
            assert health["queue_depth"] >= 0


class TestDeadlines:
    def test_504_when_deadline_passes(self, server):
        with pytest.raises(ServeError) as err:
            server.client().run(flag="mauritius", scenario=1, seed=94,
                                rows=24, cols=36, timeout_s=0.0005)
        assert err.value.status == 504
        assert err.value.code == "deadline_exceeded"
        metrics = server.client().metrics()
        assert "serve_deadline_timeouts_total" in metrics


class TestProtocolErrorPaths:
    """Every client mistake maps to a typed JSON error — never a 500."""

    def _raw_post(self, server, path, body, headers=None):
        conn = http.client.HTTPConnection("127.0.0.1", server.port,
                                          timeout=30)
        try:
            conn.request("POST", path, body=body, headers=headers or {})
            response = conn.getresponse()
            return response.status, json.loads(response.read())
        finally:
            conn.close()

    def test_malformed_json_is_400(self, server):
        status, body = self._raw_post(server, "/run", b"{not json")
        assert status == 400
        assert body["error"]["code"] == "bad_json"
        assert "Traceback" not in body["error"]["message"]

    def test_unknown_endpoint_is_404(self, server):
        with pytest.raises(ServeError) as err:
            server.client()._json("GET", "/simulate")
        assert err.value.status == 404
        assert err.value.code == "unknown_endpoint"

    def test_wrong_method_is_405(self, server):
        with pytest.raises(ServeError) as err:
            server.client()._json("GET", "/run")
        assert err.value.status == 405
        assert err.value.code == "method_not_allowed"

    def test_flag_not_in_catalog_is_404(self, server):
        with pytest.raises(ServeError) as err:
            server.client().run(flag="atlantis")
        assert err.value.status == 404
        assert err.value.code == "flag_not_found"
        assert "mauritius" in str(err.value)  # lists the catalog

    def test_sweep_with_unknown_flag_is_404(self, server):
        with pytest.raises(ServeError) as err:
            server.client().sweep(flags=["atlantis"])
        assert err.value.code == "flag_not_found"

    def test_oversized_payload_is_413(self):
        config = ServeConfig(max_body_bytes=256)
        with BackgroundServer(config) as bg:
            status, body = TestProtocolErrorPaths._raw_post(
                self, bg, "/run", b"x" * 1000)
            assert status == 413
            assert body["error"]["code"] == "payload_too_large"

    def test_post_without_length_is_411(self, server):
        conn = http.client.HTTPConnection("127.0.0.1", server.port,
                                          timeout=30)
        try:
            conn.putrequest("POST", "/run", skip_accept_encoding=True)
            conn.endheaders()
            response = conn.getresponse()
            body = json.loads(response.read())
        finally:
            conn.close()
        assert response.status == 411
        assert body["error"]["code"] == "length_required"

    def test_unknown_field_is_400(self, server):
        with pytest.raises(ServeError) as err:
            server.client().run(flag="mauritius", banana=1)
        assert err.value.status == 400
        assert err.value.code == "unknown_field"

    def test_wrong_protocol_version_is_400(self, server):
        with pytest.raises(ServeError) as err:
            server.client()._json("POST", "/run",
                                  {"flag": "mauritius", "protocol": 99})
        assert err.value.code == "unsupported_protocol"


class TestLifecycle:
    def test_graceful_drain_closes_the_socket(self):
        with BackgroundServer() as bg:
            port = bg.port
            assert bg.client().healthz()["status"] == "ok"
        with pytest.raises(OSError):
            conn = http.client.HTTPConnection("127.0.0.1", port,
                                              timeout=2)
            conn.request("GET", "/healthz")
            conn.getresponse()

    def test_external_registry_sees_server_metrics(self):
        registry = MetricsRegistry()
        with BackgroundServer(registry=registry) as bg:
            bg.client().healthz()
        assert registry.counter("serve_requests_total").value(
            endpoint="/healthz", status="200") == 1
