"""Tests for repro.schedule.pipeline — rotation and fill/drain metrics."""

import numpy as np
import pytest

from repro.agents import make_team
from repro.flags import compile_flag, mauritius, scenario_partition
from repro.grid.palette import MAURITIUS_STRIPES, Color
from repro.schedule.pipeline import (
    pipeline_metrics,
    rotate_color_order,
    stage_occupancy,
)
from repro.schedule.runner import run_partition


def fresh_team(seed=0):
    return make_team("t", 4, np.random.default_rng(seed),
                     colors=list(MAURITIUS_STRIPES))


@pytest.fixture(scope="module")
def s4_runs():
    """Scenario 4 naive vs rotated, same team statistics."""
    prog = compile_flag(mauritius())
    p4 = scenario_partition(prog, 4)
    naive = run_partition(p4, fresh_team(10), np.random.default_rng(10))
    rotated = run_partition(rotate_color_order(p4), fresh_team(10),
                            np.random.default_rng(10))
    return naive, rotated


class TestRotation:
    def test_workload_unchanged(self):
        prog = compile_flag(mauritius())
        p4 = scenario_partition(prog, 4)
        rot = rotate_color_order(p4)
        assert rot.work_counts() == p4.work_counts()
        for a, b in zip(p4.assignments, rot.assignments):
            assert set(a) == set(b)

    def test_each_worker_starts_different_color(self):
        prog = compile_flag(mauritius())
        rot = rotate_color_order(scenario_partition(prog, 4))
        first_colors = [ops[0].color for ops in rot.assignments]
        assert len(set(first_colors)) == 4

    def test_strategy_name_tagged(self):
        prog = compile_flag(mauritius())
        rot = rotate_color_order(scenario_partition(prog, 4))
        assert rot.strategy.endswith("+rotated")

    def test_rotated_run_correct_and_faster(self, s4_runs):
        naive, rotated = s4_runs
        assert rotated.correct
        assert rotated.true_makespan < naive.true_makespan

    def test_rotation_removes_most_contention(self, s4_runs):
        naive, rotated = s4_runs
        assert (rotated.trace.total_wait_fraction()
                < naive.trace.total_wait_fraction())


class TestPipelineMetrics:
    def test_naive_run_shows_fill_staircase(self, s4_runs):
        """Workers idle until the first implement reaches them (III-C)."""
        naive, _ = s4_runs
        pm = pipeline_metrics(naive.trace)
        starts = sorted(pm.first_stroke.values())
        assert len(starts) == 4
        assert starts[0] == 0.0
        assert all(b > a for a, b in zip(starts, starts[1:]))
        assert pm.fill_time > 0

    def test_rotated_run_fills_immediately(self, s4_runs):
        _, rotated = s4_runs
        pm = pipeline_metrics(rotated.trace)
        # Everyone starts at t=0: no fill staircase.
        assert pm.fill_time == pytest.approx(0.0, abs=1e-9)

    def test_empty_trace(self):
        from repro.sim.trace import Trace
        pm = pipeline_metrics(Trace([]))
        assert pm.fill_time == 0.0 and pm.first_stroke == {}


class TestStageOccupancy:
    def test_red_marker_busy_early_idle_late(self, s4_runs):
        naive, _ = s4_runs
        occ = stage_occupancy(naive.trace, "red_marker", n_bins=10)
        assert len(occ) == 10
        assert occ[0] > 0.8        # red in constant use at the start
        assert occ[-1] < 0.5       # and idle near the end

    def test_green_marker_idle_early(self, s4_runs):
        naive, _ = s4_runs
        occ = stage_occupancy(naive.trace, "green_marker", n_bins=10)
        assert occ[0] < 0.5
        assert max(occ[5:]) > 0.5

    def test_bins_bounded(self, s4_runs):
        naive, _ = s4_runs
        for r in ("red_marker", "blue_marker"):
            occ = stage_occupancy(naive.trace, r, n_bins=8)
            assert all(0.0 <= o <= 1.0 + 1e-9 for o in occ)
