"""Tests for repro.store — migrations, tenancy, tokens, quotas, tiering.

The acceptance pins live here too: migrations apply cleanly from an
empty database *and* from the historical v1 schema, and a sweep
persisted through the store survives a process restart plus deletion
of the cache directory byte-identically.
"""

import json
import shutil

import pytest

from repro.store import (
    HEAD_VERSION,
    MIGRATIONS,
    AuthError,
    MigrationError,
    QuotaExceeded,
    ResultStore,
    StoreError,
    StoreTier,
    canonical_json,
    pending,
    token_hash,
)
from repro.sweep import ResultCache, SweepSpec, run_sweep
from repro.sweep.executor import cell_address


def small_spec(**kw):
    base = dict(flags=("mauritius",), scenarios=(3,), n_trials=2, seed=11)
    base.update(kw)
    return SweepSpec(**base)


class TestMigrations:
    def test_fresh_database_migrates_to_head(self, tmp_path):
        with ResultStore(tmp_path / "s.db") as store:
            assert store.schema_version == HEAD_VERSION

    def test_migrate_is_idempotent(self, tmp_path):
        with ResultStore(tmp_path / "s.db") as store:
            assert store.migrate() == []  # already at head

    def test_migration_names_are_recorded(self, tmp_path):
        with ResultStore(tmp_path / "s.db", migrate=False) as store:
            applied = store.migrate()
        assert applied == [f"{m.version}:{m.name}" for m in MIGRATIONS]

    def test_from_v1_schema_to_head(self, tmp_path):
        """A database stopped at the historical v1 schema upgrades
        cleanly — and its v1 data survives."""
        path = tmp_path / "s.db"
        with ResultStore(path, migrate=False) as store:
            store.migrate(target=1)
            assert store.schema_version == 1
            # v1 has tenants + results but no tokens/quotas/sessions.
            store._conn.execute(
                "INSERT INTO tenants (name, kind, parent_id, created_at) "
                "VALUES ('usi', 'institution', NULL, 0.0)")
            store._conn.commit()
        with ResultStore(path) as store:  # reopen: auto-migrate to head
            assert store.schema_version == HEAD_VERSION
            assert [t["path"] for t in store.tenants()] == ["usi"]
            store.put_result("d", {"v": 1}, tenant="usi")
            assert store.get_result("d", tenant="usi") == {"v": 1}

    def test_downgrade_refused(self, tmp_path):
        with ResultStore(tmp_path / "s.db") as store:
            with pytest.raises(MigrationError, match="downgrade"):
                store.migrate(target=1)

    def test_unknown_target_refused(self, tmp_path):
        with ResultStore(tmp_path / "s.db", migrate=False) as store:
            with pytest.raises(MigrationError, match="unknown target"):
                pending(store._conn, 99)

    def test_data_methods_refuse_stale_schema(self, tmp_path):
        with ResultStore(tmp_path / "s.db", migrate=False) as store:
            store.migrate(target=1)
            with pytest.raises(StoreError, match="repro store migrate"):
                store.ensure_tenant("usi")

    def test_versions_are_ordered_and_unique(self):
        versions = [m.version for m in MIGRATIONS]
        assert versions == sorted(set(versions))
        assert versions[-1] == HEAD_VERSION


class TestTenants:
    def test_path_creates_hierarchy(self, tmp_path):
        with ResultStore(tmp_path / "s.db") as store:
            leaf = store.ensure_tenant("usi/cs1/spring26")
            assert leaf.kind == "cohort"
            assert leaf.path == "usi/cs1/spring26"
            paths = {t["path"]: t["kind"] for t in store.tenants()}
            assert paths == {"usi": "institution", "usi/cs1": "class",
                             "usi/cs1/spring26": "cohort"}

    def test_ensure_is_idempotent(self, tmp_path):
        with ResultStore(tmp_path / "s.db") as store:
            a = store.ensure_tenant("usi/cs1")
            b = store.ensure_tenant("usi/cs1")
            assert a.id == b.id
            assert len(store.tenants()) == 2

    def test_same_name_under_different_parents(self, tmp_path):
        with ResultStore(tmp_path / "s.db") as store:
            a = store.ensure_tenant("usi/cs1")
            b = store.ensure_tenant("hpu/cs1")
            assert a.id != b.id

    def test_too_deep_path_refused(self, tmp_path):
        with ResultStore(tmp_path / "s.db") as store:
            with pytest.raises(StoreError, match="1-3"):
                store.ensure_tenant("a/b/c/d")

    def test_empty_path_refused(self, tmp_path):
        with ResultStore(tmp_path / "s.db") as store:
            with pytest.raises(StoreError):
                store.ensure_tenant("")


class TestTokens:
    def test_issue_then_authenticate(self, tmp_path):
        with ResultStore(tmp_path / "s.db") as store:
            store.ensure_tenant("usi/cs1")
            token = store.issue_token("usi/cs1", label="ta-laptop")
            tenant = store.authenticate(token)
            assert tenant.path == "usi/cs1"

    def test_plaintext_never_stored(self, tmp_path):
        with ResultStore(tmp_path / "s.db") as store:
            store.ensure_tenant("usi")
            token = store.issue_token("usi", token="super-secret")
            rows = store._conn.execute(
                "SELECT token_hash FROM tokens").fetchall()
            assert rows == [(token_hash("super-secret"),)]
            assert token == "super-secret"

    def test_unknown_token(self, tmp_path):
        with ResultStore(tmp_path / "s.db") as store:
            with pytest.raises(AuthError) as err:
                store.authenticate("never-issued")
            assert err.value.reason == "unknown"

    def test_revoked_token(self, tmp_path):
        with ResultStore(tmp_path / "s.db") as store:
            store.ensure_tenant("usi")
            token = store.issue_token("usi")
            assert store.revoke_token(token)
            with pytest.raises(AuthError) as err:
                store.authenticate(token)
            assert err.value.reason == "revoked"

    def test_revoking_unknown_token_reports_false(self, tmp_path):
        with ResultStore(tmp_path / "s.db") as store:
            assert not store.revoke_token("never-issued")

    def test_reissuing_a_known_token_is_refused(self, tmp_path):
        """A known plaintext can never be rebound to another tenant."""
        with ResultStore(tmp_path / "s.db") as store:
            store.ensure_tenant("usi")
            store.ensure_tenant("hpu")
            store.issue_token("usi", token="shared-secret")
            with pytest.raises(StoreError, match="re-issue"):
                store.issue_token("hpu", token="shared-secret")
            assert store.authenticate("shared-secret").path == "usi"

    def test_revoked_token_cannot_be_resurrected(self, tmp_path):
        with ResultStore(tmp_path / "s.db") as store:
            store.ensure_tenant("usi")
            store.issue_token("usi", token="dead-secret")
            store.revoke_token("dead-secret")
            with pytest.raises(StoreError, match="re-issue"):
                store.issue_token("usi", token="dead-secret")
            with pytest.raises(AuthError) as err:
                store.authenticate("dead-secret")
            assert err.value.reason == "revoked"


class TestQuotas:
    def test_result_count_quota(self, tmp_path):
        with ResultStore(tmp_path / "s.db") as store:
            store.ensure_tenant("usi")
            store.set_quota("usi", max_results=2, retry_after_s=7.5)
            store.put_result("a", {"v": 1}, tenant="usi")
            store.put_result("b", {"v": 2}, tenant="usi")
            with pytest.raises(QuotaExceeded) as err:
                store.put_result("c", {"v": 3}, tenant="usi")
            assert err.value.retry_after_s == 7.5
            assert err.value.tenant == "usi"

    def test_replacing_a_digest_never_busts_the_quota(self, tmp_path):
        with ResultStore(tmp_path / "s.db") as store:
            store.ensure_tenant("usi")
            store.set_quota("usi", max_results=1)
            store.put_result("a", {"v": 1}, tenant="usi")
            store.put_result("a", {"v": 2}, tenant="usi")  # replace: fine
            assert store.get_result("a", tenant="usi") == {"v": 2}

    def test_byte_quota(self, tmp_path):
        with ResultStore(tmp_path / "s.db") as store:
            store.ensure_tenant("usi")
            store.set_quota("usi", max_bytes=50)
            store.put_result("a", {"v": 1}, tenant="usi")
            with pytest.raises(QuotaExceeded):
                store.put_result("b", {"pad": "x" * 100}, tenant="usi")

    def test_quota_gate_is_atomic_across_connections(self, tmp_path):
        """Two handles on one database file (the `repro serve --store`
        plus `repro sweep --store` shape) cannot interleave past the
        check-then-insert gate: the final count respects the quota."""
        import threading
        db = tmp_path / "s.db"
        with ResultStore(db) as a, ResultStore(db) as b:
            a.ensure_tenant("usi")
            a.set_quota("usi", max_results=5)

            def hammer(store, worker):
                for i in range(15):
                    try:
                        store.put_result(f"d{worker}-{i}", {"i": i},
                                         tenant="usi")
                    except QuotaExceeded:
                        pass

            threads = [threading.Thread(target=hammer,
                                        args=(store, worker))
                       for worker, store in enumerate([a, b, a, b])]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert len(a.results(tenant="usi")) <= 5

    def test_quotas_are_per_tenant(self, tmp_path):
        with ResultStore(tmp_path / "s.db") as store:
            store.ensure_tenant("usi")
            store.ensure_tenant("hpu")
            store.set_quota("usi", max_results=1)
            store.put_result("a", {"v": 1}, tenant="usi")
            store.put_result("b", {"v": 2}, tenant="hpu")  # unlimited
            with pytest.raises(QuotaExceeded):
                store.put_result("c", {"v": 3}, tenant="usi")


class TestResults:
    def test_round_trip_is_canonical(self, tmp_path):
        payload = {"b": [1, 2], "a": {"nested": True}}
        with ResultStore(tmp_path / "s.db") as store:
            store.ensure_tenant("usi")
            store.put_result("d", payload, tenant="usi")
            loaded = store.get_result("d", tenant="usi")
            assert loaded == payload
            assert canonical_json(loaded) == canonical_json(payload)

    def test_results_are_tenant_scoped(self, tmp_path):
        with ResultStore(tmp_path / "s.db") as store:
            store.ensure_tenant("usi")
            store.ensure_tenant("hpu")
            store.put_result("d", {"v": 1}, tenant="usi")
            assert store.get_result("d", tenant="hpu") is None
            assert store.get_result("d", tenant="usi") == {"v": 1}

    def test_hits_and_listing(self, tmp_path):
        with ResultStore(tmp_path / "s.db") as store:
            store.ensure_tenant("usi")
            store.put_result("d", {"v": 1}, tenant="usi")
            store.get_result("d", tenant="usi")
            store.get_result("d", tenant="usi")
            rows = store.results()
            assert len(rows) == 1
            assert rows[0]["digest"] == "d"
            assert rows[0]["hits"] == 2
            assert rows[0]["tenant"] == "usi"

    def test_unknown_tenant_put_refused(self, tmp_path):
        with ResultStore(tmp_path / "s.db") as store:
            with pytest.raises(StoreError, match="no tenant"):
                store.put_result("d", {"v": 1}, tenant="ghost")

    def test_gc_by_age(self, tmp_path):
        clock = {"now": 1000.0}
        with ResultStore(tmp_path / "s.db",
                         clock=lambda: clock["now"]) as store:
            store.ensure_tenant("usi")
            store.put_result("old", {"v": 1}, tenant="usi")
            clock["now"] = 2000.0
            store.put_result("new", {"v": 2}, tenant="usi")
            assert store.gc(older_than_s=500.0) == 1
            assert store.get_result("old", tenant="usi") is None
            assert store.get_result("new", tenant="usi") == {"v": 2}

    def test_replacement_keeps_age_and_access_history(self, tmp_path):
        """A re-put digest keeps created_at/hits, so it cannot dodge
        gc's oldest-first eviction or erase its recency stats."""
        clock = {"now": 1.0}
        with ResultStore(tmp_path / "s.db",
                         clock=lambda: clock["now"]) as store:
            store.ensure_tenant("usi")
            store.put_result("old", {"v": 1}, tenant="usi")
            store.get_result("old", tenant="usi")
            store.get_result("old", tenant="usi")
            clock["now"] = 50.0
            store.put_result("young", {"v": 2}, tenant="usi")
            clock["now"] = 100.0
            store.put_result("old", {"v": 3}, tenant="usi")  # replace
            rows = {r["digest"]: r for r in store.results(tenant="usi")}
            assert rows["old"]["created_at"] == 1.0
            assert rows["old"]["hits"] == 2
            # Quota-trimming still evicts the re-put digest first.
            store.set_quota("usi", max_results=1)
            store.gc()
            kept = [r["digest"] for r in store.results(tenant="usi")]
            assert kept == ["young"]
            assert store.get_result("old", tenant="usi") is None

    def test_gc_trims_over_quota_oldest_first(self, tmp_path):
        clock = {"now": 0.0}
        with ResultStore(tmp_path / "s.db",
                         clock=lambda: clock["now"]) as store:
            store.ensure_tenant("usi")
            for i in range(5):
                clock["now"] += 1.0
                store.put_result(f"d{i}", {"i": i}, tenant="usi",
                                 enforce_quota=False)
            store.set_quota("usi", max_results=2)
            assert store.gc() == 3
            kept = [r["digest"] for r in store.results()]
            assert sorted(kept) == ["d3", "d4"]


class TestTokenExpiry:
    def test_expired_token_is_refused_with_reason(self, tmp_path):
        clock = {"now": 1000.0}
        with ResultStore(tmp_path / "s.db",
                         clock=lambda: clock["now"]) as store:
            store.ensure_tenant("usi")
            token = store.issue_token("usi", expires_days=2)
            assert store.authenticate(token).path == "usi"
            clock["now"] = 1000.0 + 2 * 86400.0 - 1.0
            assert store.authenticate(token).path == "usi"
            clock["now"] = 1000.0 + 2 * 86400.0  # the deadline itself
            with pytest.raises(AuthError) as err:
                store.authenticate(token)
            assert err.value.reason == "expired"

    def test_tokens_without_expiry_never_expire(self, tmp_path):
        clock = {"now": 0.0}
        with ResultStore(tmp_path / "s.db",
                         clock=lambda: clock["now"]) as store:
            store.ensure_tenant("usi")
            token = store.issue_token("usi")
            clock["now"] = 1e12
            assert store.authenticate(token).path == "usi"

    def test_explicit_expires_at(self, tmp_path):
        clock = {"now": 10.0}
        with ResultStore(tmp_path / "s.db",
                         clock=lambda: clock["now"]) as store:
            store.ensure_tenant("usi")
            token = store.issue_token("usi", expires_at=20.0)
            assert store.authenticate(token).path == "usi"
            clock["now"] = 25.0
            with pytest.raises(AuthError) as err:
                store.authenticate(token)
            assert err.value.reason == "expired"

    def test_expiry_param_misuse_is_refused(self, tmp_path):
        with ResultStore(tmp_path / "s.db") as store:
            store.ensure_tenant("usi")
            with pytest.raises(StoreError):
                store.issue_token("usi", expires_days=1,
                                  expires_at=99.0)
            with pytest.raises(StoreError):
                store.issue_token("usi", expires_days=0)
            with pytest.raises(StoreError):
                store.issue_token("usi", expires_days=-3)

    def test_expiry_beats_revocation_check_order_is_stable(self,
                                                           tmp_path):
        # A token both revoked and expired reports "revoked" — the
        # stronger, permanent condition.
        clock = {"now": 0.0}
        with ResultStore(tmp_path / "s.db",
                         clock=lambda: clock["now"]) as store:
            store.ensure_tenant("usi")
            token = store.issue_token("usi", expires_days=1)
            store.revoke_token(token)
            clock["now"] = 2 * 86400.0
            with pytest.raises(AuthError) as err:
                store.authenticate(token)
            assert err.value.reason == "revoked"


class TestResultsPagination:
    def seed_results(self, store, clock, n=7):
        store.ensure_tenant("usi")
        for i in range(n):
            clock["now"] += 1.0
            store.put_result(f"d{i}", {"i": i}, tenant="usi")

    def test_cursor_walk_covers_everything_once(self, tmp_path):
        clock = {"now": 0.0}
        with ResultStore(tmp_path / "s.db",
                         clock=lambda: clock["now"]) as store:
            self.seed_results(store, clock)
            full = [r["digest"] for r in store.results()]
            assert full == [f"d{i}" for i in reversed(range(7))]
            paged, cursor = [], None
            while True:
                page = store.results(limit=3, after=cursor)
                if not page:
                    break
                paged.extend(r["digest"] for r in page)
                cursor = page[-1]["digest"]
            assert paged == full

    def test_cursor_is_stable_under_inserts(self, tmp_path):
        # Keyset cursors never skip or repeat rows when newer results
        # arrive between pages — the failure mode OFFSET paging has.
        clock = {"now": 0.0}
        with ResultStore(tmp_path / "s.db",
                         clock=lambda: clock["now"]) as store:
            self.seed_results(store, clock, n=4)
            first = store.results(limit=2)
            clock["now"] += 1.0
            store.put_result("newer", {"v": 9}, tenant="usi")
            rest = store.results(after=first[-1]["digest"])
            assert [r["digest"] for r in first + rest] == [
                "d3", "d2", "d1", "d0"]

    def test_ties_on_created_at_break_by_digest(self, tmp_path):
        clock = {"now": 5.0}
        with ResultStore(tmp_path / "s.db",
                         clock=lambda: clock["now"]) as store:
            store.ensure_tenant("usi")
            for digest in ("b", "a", "c"):
                store.put_result(digest, {}, tenant="usi")
            page1 = store.results(limit=2)
            page2 = store.results(after=page1[-1]["digest"])
            assert [r["digest"] for r in page1 + page2] == [
                "a", "b", "c"]

    def test_unknown_cursor_is_refused(self, tmp_path):
        from repro.store import UnknownCursor
        with ResultStore(tmp_path / "s.db") as store:
            store.ensure_tenant("usi")
            store.put_result("d", {}, tenant="usi")
            with pytest.raises(UnknownCursor):
                store.results(after="no-such-digest")

    def test_cursor_is_tenant_scoped(self, tmp_path):
        # A digest another tenant owns is not a valid cursor for a
        # scoped listing (it would leak ordering information).
        from repro.store import UnknownCursor
        with ResultStore(tmp_path / "s.db") as store:
            store.ensure_tenant("usi")
            store.ensure_tenant("hpu")
            store.put_result("mine", {}, tenant="usi")
            store.put_result("theirs", {}, tenant="hpu")
            with pytest.raises(UnknownCursor):
                store.results(tenant="usi", after="theirs")


class TestSessions:
    def test_session_round_trip(self, tmp_path):
        from repro.classroom import SessionReport, get_institution
        from repro.classroom.session import run_session
        report = run_session(get_institution("HPU"), seed=5, n_teams=2)
        with ResultStore(tmp_path / "s.db") as store:
            store.ensure_tenant("hpu/cs1")
            sid = store.put_session(report, tenant="hpu/cs1")
            stored = store.get_session(sid)
            assert stored["institution"] == "HPU"
            assert stored["tenant"] == "hpu/cs1"
            loaded = SessionReport.from_payload(stored["payload"])
            assert loaded.board == report.board
            assert loaded.median_speedups() == report.median_speedups()
            listing = store.sessions(tenant="hpu/cs1")
            assert [s["id"] for s in listing] == [sid]

    def test_missing_session_is_none(self, tmp_path):
        with ResultStore(tmp_path / "s.db") as store:
            assert store.get_session(999) is None


class TestStoreTier:
    def test_put_lands_in_both_levels(self, tmp_path):
        with ResultStore(tmp_path / "s.db") as store:
            cache = ResultCache(tmp_path / "cache")
            tier = StoreTier(store, cache=cache)
            tier.put("d", {"v": 1})
            assert cache.get("d") == {"v": 1}
            assert store.get_result("d") == {"v": 1}

    def test_store_hit_warms_the_cache(self, tmp_path):
        with ResultStore(tmp_path / "s.db") as store:
            StoreTier(store).put("d", {"v": 1})  # cache-less write
            cache = ResultCache(tmp_path / "cold")
            tier = StoreTier(store, cache=cache)
            assert tier.get("d") == {"v": 1}
            assert tier.store_hits == 1
            assert cache.get("d") == {"v": 1}  # warmed on the way out

    def test_cache_hit_skips_the_store(self, tmp_path):
        with ResultStore(tmp_path / "s.db") as store:
            cache = ResultCache(tmp_path / "cache")
            tier = StoreTier(store, cache=cache)
            tier.put("d", {"v": 1})
            assert tier.get("d") == {"v": 1}
            assert tier.store_hits == 0  # answered by the cache level

    def test_quota_refusal_blocks_both_levels(self, tmp_path):
        with ResultStore(tmp_path / "s.db") as store:
            store.ensure_tenant("usi")
            store.set_quota("usi", max_results=0)
            cache = ResultCache(tmp_path / "cache")
            tier = StoreTier(store, cache=cache, tenant="usi")
            with pytest.raises(QuotaExceeded):
                tier.put("d", {"v": 1})
            assert cache.get("d") is None  # the cache was not written


class TestSweepInterop:
    def test_warm_store_recomputes_zero_trials(self, tmp_path):
        spec = small_spec()
        with ResultStore(tmp_path / "s.db") as store:
            cold = run_sweep(spec, store=store)
            warm = run_sweep(spec, store=store)
        assert cold.computed_trials == spec.total_trials
        assert warm.computed_trials == 0
        assert warm.cached_trials == spec.total_trials
        assert cold.cells[0].trials == warm.cells[0].trials

    def test_warm_store_backfills_cold_cache(self, tmp_path):
        spec = small_spec()
        with ResultStore(tmp_path / "s.db") as store:
            run_sweep(spec, store=store)
            cache = ResultCache(tmp_path / "cold-cache")
            assert len(cache) == 0
            warm = run_sweep(spec, store=store, cache=cache)
        assert warm.computed_trials == 0
        assert len(cache) == 1  # the store hit warmed the directory

    def test_restart_and_cache_deletion_survive_byte_identically(
            self, tmp_path):
        """The tentpole acceptance pin: persist a sweep through the
        store, close it, delete the cache directory, reopen the store
        in a 'new process' — the sweep is served from the store and the
        payload bytes are identical."""
        spec = small_spec(scenarios=(3, 4))
        cache_dir = tmp_path / "cache"
        db = tmp_path / "s.db"
        with ResultStore(db) as store:
            cold = run_sweep(spec, store=store,
                             cache=ResultCache(cache_dir))
            address = cell_address(spec.cells()[0], spec)
            before = canonical_json(store.get_result(address))
        cache_bytes = {p.name: p.read_bytes()
                       for p in sorted(cache_dir.glob("*.json"))}
        shutil.rmtree(cache_dir)  # the disk cache is gone

        with ResultStore(db) as store:  # fresh handle = restarted process
            fresh_cache = ResultCache(cache_dir)
            warm = run_sweep(spec, store=store, cache=fresh_cache)
            after = canonical_json(store.get_result(address))
        assert warm.computed_trials == 0
        assert warm.cached_trials == spec.total_trials
        assert before == after
        for cc, cw in zip(cold.cells, warm.cells):
            assert cc.trials == cw.trials
        # The back-filled cache directory holds byte-identical files.
        rebuilt = {p.name: p.read_bytes()
                   for p in sorted(cache_dir.glob("*.json"))}
        assert rebuilt == cache_bytes

    def test_store_payload_matches_cache_payload(self, tmp_path):
        """One addressing scheme: the store's payload for a digest is
        exactly what the disk cache holds for the same digest."""
        spec = small_spec()
        cache = ResultCache(tmp_path / "cache")
        with ResultStore(tmp_path / "s.db") as store:
            run_sweep(spec, store=store, cache=cache)
            address = cell_address(spec.cells()[0], spec)
            from_store = store.get_result(address)
            from_cache = cache.get(address)
        assert from_store == from_cache
        assert json.dumps(from_store, sort_keys=True) \
            == json.dumps(from_cache, sort_keys=True)


class TestFabricInterop:
    def test_fabric_persists_through_store(self, tmp_path):
        from repro.fabric import FabricConfig, run_fabric_sweep
        spec = small_spec()
        config = FabricConfig(workers=2)
        with ResultStore(tmp_path / "s.db") as store:
            cold = run_fabric_sweep(spec, config, store=store)
            serial = run_sweep(spec)
            assert cold.cells[0].trials == serial.cells[0].trials
        # Restart: a plain serial sweep against the same store database
        # reuses the fabric's persisted cells.
        with ResultStore(tmp_path / "s.db") as store:
            warm = run_sweep(spec, store=store)
        assert warm.computed_trials == 0
        assert warm.cells[0].trials == cold.cells[0].trials
