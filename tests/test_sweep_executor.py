"""Tests for repro.sweep.executor — fan-out, determinism, caching."""

import pytest

from repro.faults import FaultPlan
from repro.faults.plan import StudentDropout
from repro.sweep import (
    ACTIVITY,
    ResultCache,
    SweepError,
    SweepSpec,
    run_sweep,
    run_trial,
)


def small_spec(**kw):
    base = dict(flags=("mauritius",), scenarios=(3,), n_trials=3, seed=11)
    base.update(kw)
    return SweepSpec(**base)


class TestDeterminism:
    def test_parallel_byte_identical_to_serial(self):
        spec = small_spec(scenarios=(3, 4), n_trials=4)
        serial = run_sweep(spec, workers=1)
        parallel = run_sweep(spec, workers=3)
        for cs, cp in zip(serial.cells, parallel.cells):
            for ts, tp in zip(cs.trials, cp.trials):
                assert ts.only_run.trace == tp.only_run.trace
            assert cs.trials == cp.trials

    def test_rerun_identical(self):
        spec = small_spec()
        assert (run_sweep(spec).cells[0].trials
                == run_sweep(spec).cells[0].trials)

    def test_trials_distinct_within_cell(self):
        cell = run_sweep(small_spec()).cells[0]
        times = cell.measured_times()
        assert len(set(times)) == len(times)

    def test_cells_do_not_share_streams(self):
        """Two cells at the same batch seed draw from different streams
        (the cell key folds into the entropy)."""
        res = run_sweep(small_spec(scenarios=(3,), team_sizes=(4, 5)))
        t3 = res.cells[0].trials[0].only_run
        t5 = res.cells[1].trials[0].only_run
        assert t3.measured_time != t5.measured_time


class TestCaching:
    def test_warm_run_recomputes_nothing(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = small_spec(scenarios=(3, 4))
        cold = run_sweep(spec, workers=2, cache=cache)
        warm = run_sweep(spec, workers=2, cache=cache)
        assert cold.computed_trials == spec.total_trials
        assert warm.computed_trials == 0
        assert warm.cached_trials == spec.total_trials
        for cc, cw in zip(cold.cells, warm.cells):
            assert not cc.cached and cw.cached
            assert cc.trials == cw.trials  # identical payloads

    def test_cache_dir_convenience(self, tmp_path):
        spec = small_spec()
        run_sweep(spec, cache_dir=tmp_path / "c")
        warm = run_sweep(spec, cache_dir=tmp_path / "c")
        assert warm.computed_trials == 0

    def test_changed_seed_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_sweep(small_spec(seed=1), cache=cache)
        again = run_sweep(small_spec(seed=2), cache=cache)
        assert again.computed_trials == small_spec().total_trials

    def test_partial_grid_reuse(self, tmp_path):
        """Growing the grid only computes the new cells — the cached
        cell's streams do not depend on what else is in the grid."""
        cache = ResultCache(tmp_path)
        first = run_sweep(small_spec(scenarios=(3,)), cache=cache)
        grown = run_sweep(small_spec(scenarios=(3, 4)), cache=cache)
        assert grown.cached_trials == 3
        assert grown.computed_trials == 3
        assert grown.cells[0].trials == first.cells[0].trials


class TestWorkloads:
    def test_activity_cell_runs_all_scenarios(self):
        res = run_sweep(SweepSpec(scenarios=(ACTIVITY,), n_trials=2, seed=3))
        cell = res.cells[0]
        assert cell.labels() == ["scenario1", "scenario1_repeat",
                                 "scenario2", "scenario3", "scenario4"]
        assert cell.correct_fraction() == 1.0
        # Warmup: the repeat is faster than the cold first run, per trial.
        for t in cell.trials:
            assert (t.runs["scenario1_repeat"].measured_time
                    < t.runs["scenario1"].measured_time)

    def test_fault_plan_cell(self):
        plan = FaultPlan.of([StudentDropout(at=20.0, worker=0)])
        spec = small_spec(scenarios=(3,),
                          fault_plans=(("clean", None), ("dropout", plan)))
        res = run_sweep(spec, workers=2)
        clean, faulted = res.cells
        assert clean.trials[0].only_run.faults is None
        assert faulted.trials[0].only_run.faults["faults_fired"] >= 1

    def test_activity_with_fault_plan_rejected(self):
        plan = FaultPlan.of([StudentDropout(at=20.0, worker=0)])
        spec = SweepSpec(scenarios=(ACTIVITY,),
                         fault_plans=(("dropout", plan),))
        with pytest.raises(SweepError):
            run_sweep(spec)

    def test_observe_rollup(self):
        res = run_sweep(small_spec(n_trials=2), observe=True)
        cell = res.cells[0]
        rolled = cell.obs_rollup()
        assert rolled.get("events_logged_total", 0) > 0
        assert cell.counter_total("events_logged_total") == \
            rolled["events_logged_total"]
        # The deterministic obs slice only — no host-time profile.
        assert "profile" not in cell.trials[0].only_run.obs

    def test_trace_importable(self):
        from repro.sim.export import import_trace
        cell = run_sweep(small_spec(n_trials=1)).cells[0]
        trace = import_trace(cell.trials[0].only_run.trace)
        assert trace.makespan() > 0
        assert len(trace.agents()) >= 4

    def test_invalid_workers_rejected(self):
        with pytest.raises(SweepError):
            run_sweep(small_spec(), workers=0)


class TestRunTrialPurity:
    def test_same_task_same_payload(self):
        spec = small_spec(n_trials=2)
        cell = spec.cells()[0]
        task = {"cell": cell.key_dict(), "cell_key": cell.key(),
                "seed": spec.seed, "n_trials": spec.n_trials,
                "trial": 1, "observe": False}
        assert run_trial(dict(task)) == run_trial(dict(task))
