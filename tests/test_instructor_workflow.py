"""End-to-end instructor workflow: produce every classroom artifact.

Walks the full instructor path — plan (dry run), prepare (slides, sample
cells, DOT handouts), run (session), record (trace export, markdown
report), assess (grading feedback) — writing real files to disk and
validating each artifact, the way a downstream user actually would.
"""

import json

import numpy as np
import pytest

from repro.agents import ImplementKit
from repro.agents.implements import THICK_MARKER
from repro.classroom import (
    debrief_session,
    discussion_script,
    dry_run,
    get_institution,
    run_session,
    sample_cells_svg,
    scenario_slide,
    session_markdown,
)
from repro.depgraph import (
    explain,
    generate_exact_paper_cohort,
    grade_all,
    jordan_reference_dag,
)
from repro.depgraph.dot import to_dot
from repro.flags import get_flag, mauritius
from repro.grid.render import to_ppm, to_svg
from repro.sim.export import export_trace, import_trace


@pytest.fixture(scope="module")
def session():
    return run_session(get_institution("USI"), seed=33, n_teams=2)


class TestPlanPhase:
    def test_dry_run_gates_the_plan(self):
        kit = ImplementKit.uniform(mauritius().colors_used(), THICK_MARKER)
        report = dry_run(mauritius(), kit)
        assert report.ok
        assert 0 < report.total_minutes < 60


class TestPreparePhase:
    def test_slides_written_to_disk(self, tmp_path):
        for scenario in (1, 2, 3, 4):
            path = tmp_path / f"scenario{scenario}.svg"
            path.write_text(scenario_slide(mauritius(), scenario))
            content = path.read_text()
            assert content.startswith("<svg")
            assert content.endswith("</svg>")

    def test_sample_cells_written(self, tmp_path):
        path = tmp_path / "samples.svg"
        path.write_text(sample_cells_svg())
        assert "scribble" in path.read_text()

    def test_flag_handout_ppm(self, tmp_path):
        path = tmp_path / "mauritius.ppm"
        path.write_bytes(to_ppm(mauritius().final_image()))
        data = path.read_bytes()
        assert data.startswith(b"P6\n")

    def test_jordan_solution_dot(self, tmp_path):
        path = tmp_path / "fig9.dot"
        path.write_text(to_dot(jordan_reference_dag(),
                               highlight_critical_path=True))
        content = path.read_text()
        assert content.startswith("digraph")
        assert content.count("->") == 3


class TestRunAndRecordPhase:
    def test_trace_archive_round_trip(self, session, tmp_path):
        r4 = session.teams[0].results["scenario4"]
        path = tmp_path / "scenario4.jsonl"
        with open(path, "w") as fp:
            export_trace(r4.trace, fp)
        with open(path) as fp:
            back = import_trace(fp)
        assert back.makespan() == r4.trace.makespan()
        # The archive is genuine JSON lines.
        with open(path) as fp:
            for line in fp:
                json.loads(line)

    def test_markdown_report_written(self, session, tmp_path):
        path = tmp_path / "report.md"
        path.write_text(session_markdown(session))
        content = path.read_text()
        assert content.startswith("# Activity report")
        assert "Discussion guide" in content

    def test_discussion_guide_standalone(self, session):
        guide = discussion_script(debrief_session(session))
        assert "ask      :" in guide


class TestAssessPhase:
    def test_grade_and_feedback_every_submission(self, tmp_path):
        cohort = generate_exact_paper_cohort(np.random.default_rng(8))
        report = grade_all(cohort)
        assert report.total == 29
        feedback_file = tmp_path / "feedback.txt"
        lines = [f"{sub.student}: {explain(sub)}" for sub in cohort]
        feedback_file.write_text("\n".join(lines))
        content = feedback_file.read_text()
        assert content.count("\n") == 28
        assert "perfect" in content and "linear chain" in content


class TestWholeWorkflowOnAnotherFlag:
    def test_france_from_plan_to_report(self, tmp_path):
        """The same path works for the Webster flags, not just Mauritius."""
        spec = get_flag("france")
        kit = ImplementKit.uniform(spec.colors_used(), THICK_MARKER)
        plan = dry_run(spec, kit, scenarios=[1, 2])
        assert plan.ok

        (tmp_path / "france.svg").write_text(to_svg(spec.final_image()))
        report = run_session(get_institution("Webster"), seed=34,
                             n_teams=2, spec=spec)
        assert report.all_correct()
        (tmp_path / "france_report.md").write_text(
            session_markdown(report)
        )
        assert "france" in (tmp_path / "france_report.md").read_text()
