"""Tests for repro.metrics.stats, including hypothesis properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.speedup import MetricError
from repro.metrics.stats import (
    bootstrap_ci,
    likert_distribution_for_median,
    likert_median,
    median,
    round_to_half,
    transition_fractions,
)


class TestMedian:
    def test_odd(self):
        assert median([3, 1, 2]) == 2.0

    def test_even_averages_middle(self):
        assert median([1, 2, 3, 4]) == 2.5

    def test_empty_raises(self):
        with pytest.raises(MetricError):
            median([])


class TestLikertMedian:
    def test_half_point_possible(self):
        assert likert_median([4, 5]) == 4.5

    def test_range_validation(self):
        with pytest.raises(MetricError):
            likert_median([0, 3])
        with pytest.raises(MetricError):
            likert_median([6])
        with pytest.raises(MetricError):
            likert_median([])


class TestRoundToHalf:
    @pytest.mark.parametrize("x,want", [
        (4.24, 4.0), (4.26, 4.5), (4.75, 5.0), (3.0, 3.0), (4.5, 4.5),
    ])
    def test_rounding(self, x, want):
        assert round_to_half(x) == want

    @pytest.mark.parametrize("x,want", [
        # Exact quarter-point ties round half AWAY FROM ZERO — the
        # published tables' convention.  Regression: Python's banker's
        # rounding gave round_to_half(2.25) == 2.0.
        (2.25, 2.5), (2.75, 3.0), (4.25, 4.5), (4.75, 5.0),
        (1.25, 1.5), (3.75, 4.0), (0.25, 0.5),
        (-2.25, -2.5), (-4.75, -5.0), (-0.25, -0.5),
    ])
    def test_half_up_ties(self, x, want):
        assert round_to_half(x) == want

    def test_every_quarter_point_in_likert_range(self):
        """The full half-up table over the 1-5 Likert range."""
        for i in range(4, 21):  # 1.0, 1.25, ... 5.0
            x = i / 4.0
            if (x * 2) % 1 == 0.5:  # a tie
                assert round_to_half(x) == x + 0.25
            else:
                assert round_to_half(x) == x


class TestBootstrap:
    def test_ci_contains_point_estimate(self, rng):
        data = rng.normal(10, 2, size=50).tolist()
        lo, hi = bootstrap_ci(data, seed=1)
        assert lo <= float(np.median(data)) <= hi

    def test_narrower_with_more_data(self, rng):
        small = rng.normal(10, 2, size=10).tolist()
        large = rng.normal(10, 2, size=1000).tolist()
        lo_s, hi_s = bootstrap_ci(small, seed=2)
        lo_l, hi_l = bootstrap_ci(large, seed=2)
        assert (hi_l - lo_l) < (hi_s - lo_s)

    def test_empty_raises(self):
        with pytest.raises(MetricError):
            bootstrap_ci([])


class TestLikertCalibration:
    def test_hits_target_exactly(self, rng):
        vals = likert_distribution_for_median(4.0, 21, rng)
        assert float(np.median(vals)) == 4.0
        assert all(1 <= v <= 5 for v in vals)

    def test_half_point_target(self, rng):
        vals = likert_distribution_for_median(4.5, 20, rng)
        assert float(np.median(vals)) == 4.5

    def test_half_point_odd_n_impossible(self, rng):
        with pytest.raises(MetricError, match="odd"):
            likert_distribution_for_median(4.5, 21, rng)

    def test_out_of_range_target(self, rng):
        with pytest.raises(MetricError):
            likert_distribution_for_median(5.5, 10, rng)

    def test_non_half_step_target(self, rng):
        with pytest.raises(MetricError):
            likert_distribution_for_median(4.2, 10, rng)

    @given(
        target2x=st.integers(min_value=2, max_value=10),
        n=st.integers(min_value=2, max_value=60),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=80, deadline=None)
    def test_property_always_exact(self, target2x, n, seed):
        target = target2x / 2.0
        if target % 1 == 0.5 and n % 2 == 1:
            n += 1  # make the target reachable
        rng = np.random.default_rng(seed)
        vals = likert_distribution_for_median(target, n, rng)
        assert float(np.median(vals)) == target
        assert len(vals) == n
        assert all(1 <= v <= 5 for v in vals)


class TestTransitionFractions:
    def test_all_states(self):
        pre = [True, False, True, False]
        post = [True, True, False, False]
        fr = transition_fractions(pre, post)
        assert fr == {"retained": 0.25, "gained": 0.25,
                      "lost": 0.25, "never": 0.25}

    def test_sums_to_one(self, rng):
        pre = rng.random(40) < 0.5
        post = rng.random(40) < 0.5
        fr = transition_fractions(pre.tolist(), post.tolist())
        assert sum(fr.values()) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(MetricError):
            transition_fractions([True], [True, False])
        with pytest.raises(MetricError):
            transition_fractions([], [])
