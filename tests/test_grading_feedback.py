"""Tests for grading feedback (explain) and the discussion script."""

import numpy as np
import pytest

from repro.classroom import (
    debrief_session,
    discussion_script,
    get_institution,
    run_session,
)
from repro.classroom.discussion import Lesson, Observation
from repro.depgraph import (
    Submission,
    SubmissionKind,
    explain,
    generate_exact_paper_cohort,
    jordan_linear_chain_dag,
    jordan_merged_stripes_dag,
    jordan_reference_dag,
    jordan_split_triangle_dag,
)
from repro.depgraph.graph import TaskGraph


def graph_sub(graph, **kw):
    return Submission(student="s", kind=SubmissionKind.GRAPH, graph=graph,
                      **kw)


class TestExplain:
    def test_perfect_feedback(self):
        msg = explain(graph_sub(jordan_reference_dag()))
        assert msg.startswith("perfect")
        assert "blank paper" in msg  # the white-omission note

    def test_crossed_out_white_acknowledged(self):
        msg = explain(graph_sub(jordan_reference_dag(),
                                crossed_out_white=True))
        assert "crossing out" in msg

    def test_linear_chain_feedback_names_the_error(self):
        msg = explain(graph_sub(jordan_linear_chain_dag()))
        assert msg.startswith("linear chain")
        assert "sequential" in msg

    def test_split_triangle_feedback(self):
        msg = explain(graph_sub(jordan_split_triangle_dag()))
        assert msg.startswith("mostly correct")
        assert "green stripe" in msg

    def test_merged_stripes_feedback(self):
        msg = explain(graph_sub(jordan_merged_stripes_dag()))
        assert "merging all stripes" in msg

    def test_no_arrows_feedback(self):
        ref = jordan_reference_dag()
        msg = explain(graph_sub(
            TaskGraph.from_edges(ref.edges, isolated=ref.tasks),
            has_arrows=False,
        ))
        assert "arrows" in msg

    def test_no_learning_feedback(self):
        msg = explain(Submission(student="s",
                                 kind=SubmissionKind.FLAG_DRAWING))
        assert "no learning" in msg
        assert "drawing of the flag" in msg

    def test_incomplete_feedback(self):
        g = TaskGraph.from_edges([("black_stripe", "green_stripe")])
        msg = explain(graph_sub(g, complete=False))
        assert msg.startswith("incomplete")

    def test_every_cohort_member_explainable(self):
        for sub in generate_exact_paper_cohort(np.random.default_rng(1)):
            msg = explain(sub)
            assert isinstance(msg, str) and len(msg) > 20


class TestDiscussionScript:
    @pytest.fixture(scope="class")
    def script(self):
        report = run_session(get_institution("USI"), seed=7, n_teams=2)
        return discussion_script(debrief_session(report))

    def test_header_and_structure(self, script):
        assert script.startswith("POST-ACTIVITY DISCUSSION GUIDE")
        assert "ask      :" in script
        assert "evidence :" in script
        assert "introduce:" in script

    def test_core_lessons_present(self, script):
        for word in ("speedup", "contention", "warmup"):
            assert word.lower() in script.lower()

    def test_missed_lessons_listed_separately(self):
        obs = [
            Observation(Lesson.SPEEDUP, True, "times fell", 2.5),
            Observation(Lesson.PIPELINING, False, "no staircase", None),
        ]
        script = discussion_script(obs)
        assert "not observed this session" in script
        assert "pipelining" in script

    def test_empty_observations(self):
        script = discussion_script([])
        assert script.startswith("POST-ACTIVITY DISCUSSION GUIDE")


class TestNewCliCommands:
    def test_animate_command(self, capsys):
        from repro.cli import main
        assert main(["animate", "mauritius", "3", "--frames", "3",
                     "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "progress:" in out
        assert out.count("t=") >= 3

    def test_slides_command(self, capsys):
        from repro.cli import main
        assert main(["slides", "mauritius", "2"]) == 0
        assert capsys.readouterr().out.startswith("<svg")

    def test_debrief_command(self, capsys):
        from repro.cli import main
        assert main(["debrief", "USI", "--teams", "2", "--seed", "2"]) == 0
        assert "DISCUSSION GUIDE" in capsys.readouterr().out
