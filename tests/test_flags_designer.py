"""Tests for repro.flags.designer — the custom flag builder."""

import numpy as np
import pytest

from repro.flags import compile_flag, verify_program
from repro.flags.designer import DesignError, FlagDesigner
from repro.grid.palette import Color


class TestBuilders:
    def test_hstripes_flag(self):
        spec = (FlagDesigner("tricolor", rows=9, cols=12)
                .hstripes([Color.RED, Color.WHITE, Color.BLUE])
                .build())
        img = spec.final_image()
        assert (img[0] == int(Color.RED)).all()
        assert (img[-1] == int(Color.BLUE)).all()

    def test_white_stripes_marked_optional(self):
        spec = (FlagDesigner("x").hstripes([Color.RED, Color.WHITE]).build())
        white = [l for l in spec.layers if l.color is Color.WHITE][0]
        assert white.optional_on_blank

    def test_nordic_cross_style(self):
        spec = (FlagDesigner("nordic", rows=12, cols=18)
                .background(Color.RED)
                .cross(Color.WHITE, width=0.3, cx=0.4)
                .cross(Color.BLUE, width=0.14, cx=0.4)
                .build())
        assert spec.is_layered()
        prog = compile_flag(spec)
        assert verify_program(prog, spec)

    def test_japan_equivalent(self):
        spec = (FlagDesigner("sun", rows=10, cols=15)
                .background(Color.WHITE)
                .disc(Color.RED, radius=0.3)
                .build())
        img = spec.final_image()
        assert img[5, 7] == int(Color.RED)
        assert img[0, 0] == int(Color.WHITE)

    def test_diagonal_and_polygon(self):
        spec = (FlagDesigner("fancy", rows=10, cols=16)
                .background(Color.GREEN)
                .diagonal(Color.YELLOW, width=0.2)
                .polygon(Color.BLACK,
                         [(0.1, 0.1), (0.1, 0.3), (0.3, 0.2)])
                .build())
        prog = compile_flag(spec)
        assert verify_program(prog, spec)

    def test_chaining_returns_self(self):
        d = FlagDesigner("chain")
        assert d.background(Color.BLUE) is d


class TestValidation:
    def test_empty_design_cannot_build(self):
        with pytest.raises(DesignError, match="no layers"):
            FlagDesigner("empty").build()

    def test_background_must_be_first(self):
        d = FlagDesigner("x").disc(Color.RED)
        with pytest.raises(DesignError, match="first"):
            d.background(Color.WHITE)

    def test_duplicate_layer_names_rejected(self):
        d = FlagDesigner("x").disc(Color.RED, name="dot")
        with pytest.raises(DesignError, match="duplicate"):
            d.disc(Color.BLUE, name="dot")

    def test_uncovered_cells_noted(self):
        d = FlagDesigner("partial").disc(Color.RED, radius=0.2)
        notes = d.validate()
        assert any("blank paper" in n for n in notes)

    def test_hidden_layer_noted(self):
        d = (FlagDesigner("hidden")
             .disc(Color.RED, radius=0.2, name="under")
             .disc(Color.BLUE, radius=0.3, name="over"))
        notes = d.validate()
        assert any("entirely overpainted" in n for n in notes)

    def test_too_small_feature_noted(self):
        # Off-center so the speck misses every cell center on a 3x3 grid
        # (a centered disc always catches the middle cell).
        d = (FlagDesigner("tiny", rows=3, cols=3)
             .background(Color.BLUE)
             .disc(Color.RED, cy=0.4, cx=0.4, radius=0.01, name="speck"))
        notes = d.validate()
        assert any("covers no cells" in n for n in notes)

    def test_strict_build_raises_on_notes(self):
        d = FlagDesigner("partial").disc(Color.RED, radius=0.2)
        with pytest.raises(DesignError, match="blank paper"):
            d.build(strict=True)

    def test_clean_design_builds_strict(self):
        spec = (FlagDesigner("clean", rows=8, cols=12)
                .hstripes([Color.RED, Color.BLUE])
                .build(strict=True))
        assert spec.name == "clean"

    def test_invalid_cross_width(self):
        with pytest.raises(DesignError, match="width"):
            FlagDesigner("x").cross(Color.RED, width=1.5)

    def test_invalid_grid(self):
        with pytest.raises(DesignError):
            FlagDesigner("x", rows=0)


class TestDesignedFlagsRunEndToEnd:
    def test_designed_flag_through_full_pipeline(self):
        """A designer flag works in the simulator like catalog flags."""
        from repro.agents import make_team
        from repro.schedule import run_layered

        spec = (FlagDesigner("custom", rows=8, cols=12)
                .background(Color.GREEN)
                .disc(Color.YELLOW, radius=0.25)
                .build())
        rng = np.random.default_rng(5)
        team = make_team("t", 2, rng, colors=list(spec.colors_used()),
                         copies=2)
        r = run_layered(spec, team, 2, rng)
        assert r.correct
