"""Tests for recovery policies under injected faults, end to end.

Each test runs scenario 4 (shared implements, the contended one) on the
Mauritius flag with a hand-written fault plan and checks the policy's
contract: ABANDON degrades coverage, REDISTRIBUTE preserves it at a
makespan cost, SPARE_WITH_DELAY repairs implements after the fetch delay.
"""

import numpy as np
import pytest

from repro.agents import make_team
from repro.faults import (
    FaultAccounting,
    FaultError,
    FaultPlan,
    ImplementFailure,
    LateArrival,
    RecoveryConfig,
    RecoveryError,
    RecoveryPolicy,
    StudentDropout,
    TransientStall,
)
from repro.flags import mauritius
from repro.grid.palette import Color
from repro.schedule import get_scenario, run_scenario
from repro.sim.events import EventKind


SEED = 7


def run(plan, policy=RecoveryPolicy.REDISTRIBUTE, recovery=None, seed=SEED):
    spec = mauritius()
    team = make_team("team", 4, np.random.default_rng(seed),
                     colors=list(spec.colors_used()))
    rng = np.random.default_rng(seed)
    return run_scenario(
        get_scenario(4), spec, team, rng,
        fault_plan=plan,
        recovery=recovery or RecoveryConfig(policy=policy),
    )


@pytest.fixture(scope="module")
def baseline():
    return run(FaultPlan())


class TestAbandon:
    def test_dropout_leaves_partial_canvas(self, baseline):
        r = run(FaultPlan.of([StudentDropout(at=60.0, worker=3)]),
                policy=RecoveryPolicy.ABANDON)
        assert r.faults is not None
        assert r.faults.dropouts == 1
        assert r.faults.ops_abandoned > 0
        assert r.faults.ops_reassigned == 0
        assert not r.correct
        assert r.canvas.n_colored() < baseline.canvas.n_colored()

    def test_implement_failure_skips_that_color(self):
        r = run(FaultPlan.of([ImplementFailure(at=10.0, color=Color.RED)]),
                policy=RecoveryPolicy.ABANDON)
        assert r.faults.implement_failures == 1
        assert r.faults.ops_abandoned > 0
        assert not r.correct
        kinds = [e.kind for e in r.trace.events]
        assert EventKind.RESOURCE_FAILED in kinds
        assert EventKind.RESOURCE_REPAIRED not in kinds

    def test_survivors_still_finish(self, baseline):
        r = run(FaultPlan.of([StudentDropout(at=60.0, worker=0)]),
                policy=RecoveryPolicy.ABANDON)
        # Everyone else's work still lands; run completes without raising.
        assert r.true_makespan > 60.0


class TestRedistribute:
    def test_dropout_work_is_reassigned_and_flag_finishes(self, baseline):
        r = run(FaultPlan.of([StudentDropout(at=60.0, worker=3)]))
        assert r.faults.ops_reassigned > 0
        assert r.faults.ops_abandoned == 0
        assert r.correct
        assert r.true_makespan > baseline.true_makespan
        kinds = [e.kind for e in r.trace.events]
        assert EventKind.OP_REASSIGNED in kinds
        assert EventKind.PROCESS_KILLED in kinds

    def test_recipient_is_least_loaded_survivor(self):
        r = run(FaultPlan.of([StudentDropout(at=60.0, worker=3)]))
        reassigns = [e for e in r.trace.events
                     if e.kind is EventKind.OP_REASSIGNED]
        assert len(reassigns) == 1
        assert reassigns[0].data["from_agent"] != reassigns[0].agent

    def test_implement_failure_still_loses_ops(self):
        # REDISTRIBUTE has no spare implements: color ops are lost.
        r = run(FaultPlan.of([ImplementFailure(at=10.0, color=Color.RED)]))
        assert r.faults.ops_abandoned > 0
        assert not r.correct


class TestSpareWithDelay:
    def test_implement_recovered_after_fetch_delay(self, baseline):
        cfg = RecoveryConfig(policy=RecoveryPolicy.SPARE_WITH_DELAY,
                             spare_fetch_delay=20.0)
        r = run(FaultPlan.of([ImplementFailure(at=30.0, color=Color.RED)]),
                recovery=cfg)
        assert r.correct
        assert r.faults.ops_abandoned == 0
        assert r.faults.recovery_latencies == [20.0]
        repaired = [e for e in r.trace.events
                    if e.kind is EventKind.RESOURCE_REPAIRED]
        assert len(repaired) == 1
        assert repaired[0].time == 50.0

    def test_dropout_falls_back_to_redistribution(self):
        r = run(FaultPlan.of([StudentDropout(at=60.0, worker=2)]),
                policy=RecoveryPolicy.SPARE_WITH_DELAY)
        assert r.correct
        assert r.faults.ops_reassigned > 0


class TestOtherFaults:
    def test_transient_stall_delays_but_completes(self, baseline):
        r = run(FaultPlan.of([TransientStall(at=20.0, worker=0,
                                             duration=30.0)]))
        assert r.correct
        assert r.faults.stalls == 1
        assert r.true_makespan > baseline.true_makespan
        kinds = [e.kind for e in r.trace.events]
        assert EventKind.STALL in kinds

    def test_late_arrival_starts_late_and_completes(self):
        r = run(FaultPlan.of([LateArrival(worker=1, delay=25.0)]))
        assert r.correct
        assert r.faults.late_arrivals == 1
        late_name = None
        for e in r.trace.events:
            if (e.kind is EventKind.FAULT_INJECTED
                    and e.data.get("fault") == "late_arrival"):
                late_name = e.agent
        starts = {e.agent: e.time for e in r.trace.events
                  if e.kind is EventKind.PROCESS_START}
        assert starts[late_name] == 25.0

    def test_combined_plan_completes_under_every_policy(self):
        plan = FaultPlan.of([
            StudentDropout(at=60.0, worker=3),
            ImplementFailure(at=30.0, color=Color.YELLOW),
            TransientStall(at=10.0, worker=0, duration=15.0),
            LateArrival(worker=1, delay=8.0),
        ])
        for policy in RecoveryPolicy:
            r = run(plan, policy=policy)
            assert r.faults.faults_fired == 4
            assert r.true_makespan > 0


class TestPlanValidationAgainstRun:
    def test_worker_index_out_of_range(self):
        with pytest.raises(FaultError, match="only 4 active workers"):
            run(FaultPlan.of([StudentDropout(at=10.0, worker=7)]))

    def test_color_not_in_run_rejected(self):
        # Mauritius uses red/blue/yellow/green; black has no implement.
        with pytest.raises(FaultError, match="implement failure"):
            run(FaultPlan.of([ImplementFailure(at=10.0,
                                               color=Color.BLACK)]))


class TestRecoveryConfig:
    def test_bad_fetch_delay_rejected(self):
        with pytest.raises(RecoveryError):
            RecoveryConfig(spare_fetch_delay=0.0)

    def test_negative_overhead_rejected(self):
        with pytest.raises(RecoveryError):
            RecoveryConfig(redistribute_overhead=-1.0)

    def test_policy_capability_flags(self):
        assert RecoveryConfig(policy=RecoveryPolicy.ABANDON
                              ).reassigns_dropout_work is False
        assert RecoveryConfig(policy=RecoveryPolicy.REDISTRIBUTE
                              ).reassigns_dropout_work is True
        assert RecoveryConfig(policy=RecoveryPolicy.SPARE_WITH_DELAY
                              ).repairs_implements is True


class TestAccounting:
    def test_summary_keys(self):
        acct = FaultAccounting(faults_fired=2, dropouts=1,
                               recovery_latencies=[3.0, 5.0])
        s = acct.summary()
        assert s["faults_fired"] == 2
        assert s["mean_recovery_latency"] == 4.0
        assert s["max_recovery_latency"] == 5.0

    def test_empty_latencies(self):
        acct = FaultAccounting()
        assert acct.mean_recovery_latency == 0.0
        assert acct.max_recovery_latency == 0.0
