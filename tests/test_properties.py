"""Cross-module property tests: simulation invariants under random configs.

These hypothesis tests throw randomized scenario configurations at the full
runner and check physical invariants that must hold for *every* run:
mutual exclusion on implements, no overlapping strokes per student, full
and correct canvas coverage, and trace accounting consistency.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agents import make_team
from repro.flags import (
    compile_flag,
    cyclic,
    get_flag,
    horizontal_slices,
    mauritius,
    scenario_partition,
    vertical_slices,
)
from repro.grid.palette import MAURITIUS_STRIPES
from repro.schedule.runner import AcquirePolicy, run_partition
from repro.sim.events import EventKind


def run_random_config(seed, n_workers, strategy_idx, policy_idx, copies):
    prog = compile_flag(mauritius())
    strategies = [
        lambda: scenario_partition(prog, min(4, max(1, n_workers))),
        lambda: vertical_slices(prog, n_workers),
        lambda: horizontal_slices(prog, n_workers),
        lambda: cyclic(prog, n_workers),
    ]
    partition = strategies[strategy_idx]()
    policy = list(AcquirePolicy)[policy_idx]
    rng = np.random.default_rng(seed)
    team = make_team("t", max(n_workers, 4), rng,
                     colors=list(MAURITIUS_STRIPES), copies=copies)
    return run_partition(partition, team, np.random.default_rng(seed),
                         policy=policy)


config = dict(
    seed=st.integers(min_value=0, max_value=10_000),
    n_workers=st.integers(min_value=1, max_value=6),
    strategy_idx=st.integers(min_value=0, max_value=3),
    policy_idx=st.integers(min_value=0, max_value=1),
    copies=st.integers(min_value=1, max_value=3),
)


class TestSimulationInvariants:
    @given(**config)
    @settings(max_examples=25, deadline=None)
    def test_canvas_always_correct(self, **kw):
        r = run_random_config(**kw)
        assert r.correct
        assert r.canvas.n_colored() == 96

    @given(**config)
    @settings(max_examples=25, deadline=None)
    def test_no_student_colors_two_cells_at_once(self, **kw):
        r = run_random_config(**kw)
        strokes = r.trace.stroke_intervals()
        by_agent = {}
        for iv in strokes:
            by_agent.setdefault(iv.agent, []).append(iv)
        for ivs in by_agent.values():
            ivs.sort(key=lambda iv: iv.start)
            for a, b in zip(ivs, ivs[1:]):
                assert a.end <= b.start + 1e-9

    @given(**config)
    @settings(max_examples=25, deadline=None)
    def test_implement_mutual_exclusion(self, **kw):
        """At most `copies` holders of each implement at any time."""
        r = run_random_config(**kw)
        for color in MAURITIUS_STRIPES:
            name = f"{color.name.lower()}_marker"
            held = r.trace.resource_holders_timeline(name)
            events = []
            for iv in held:
                events.append((iv.start, 1))
                events.append((iv.end, -1))
            events.sort()
            concurrent = 0
            for _, delta in events:
                concurrent += delta
                assert concurrent <= kw["copies"]

    @given(**config)
    @settings(max_examples=25, deadline=None)
    def test_trace_accounting_consistent(self, **kw):
        r = run_random_config(**kw)
        for s in r.trace.summaries():
            assert s.busy >= 0 and s.waiting >= 0 and s.idle >= 0
            assert s.busy + s.waiting + s.idle == pytest.approx(s.finish)
            assert s.finish <= r.true_makespan + 1e-9

    @given(**config)
    @settings(max_examples=25, deadline=None)
    def test_stroke_count_matches_partition(self, **kw):
        r = run_random_config(**kw)
        total = sum(r.trace.stroke_count(a) for a in r.trace.agents())
        assert total == 96

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_determinism_for_any_seed(self, seed):
        a = run_random_config(seed, 4, 1, 0, 1)
        b = run_random_config(seed, 4, 1, 0, 1)
        assert a.true_makespan == b.true_makespan
        assert np.array_equal(a.canvas.codes, b.canvas.codes)


class TestEveryFlagEveryStrategy:
    @given(
        flag=st.sampled_from(
            ["mauritius", "france", "germany", "italy", "poland",
             "diagonal_bicolor"]
        ),
        n=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=20, deadline=None)
    def test_flat_flags_slice_correctly(self, flag, n, seed):
        spec = get_flag(flag)
        prog = compile_flag(spec, skip_optional_blank=True)
        rng = np.random.default_rng(seed)
        team = make_team("t", max(n, 1), rng,
                         colors=list(spec.colors_used()))
        r = run_partition(vertical_slices(prog, n), team,
                          np.random.default_rng(seed))
        assert r.correct
