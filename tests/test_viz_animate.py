"""Tests for repro.viz.animate — the schedule animation artifact."""

import numpy as np
import pytest

from repro.agents import make_team
from repro.flags import compile_flag, mauritius, scenario_partition, single
from repro.grid.palette import Color, MAURITIUS_STRIPES
from repro.schedule.runner import run_partition
from repro.sim.trace import Trace
from repro.viz.animate import (
    AnimationError,
    ascii_frames,
    canvas_at,
    frames,
    progress_curve,
    svg_filmstrip,
)


@pytest.fixture(scope="module")
def s4():
    prog = compile_flag(mauritius())
    team = make_team("t", 4, np.random.default_rng(12),
                     colors=list(MAURITIUS_STRIPES))
    return run_partition(scenario_partition(prog, 4), team,
                         np.random.default_rng(12))


class TestCanvasAt:
    def test_blank_at_time_zero(self, s4):
        img = canvas_at(s4.trace, 0.0, 8, 12)
        assert (img == 0).all()

    def test_complete_at_makespan(self, s4):
        img = canvas_at(s4.trace, s4.trace.makespan(), 8, 12)
        assert (img != 0).all()
        assert np.array_equal(img, s4.canvas.codes)

    def test_monotone_fill(self, s4):
        span = s4.trace.makespan()
        prev = 0
        for frac in (0.2, 0.4, 0.6, 0.8, 1.0):
            n = int((canvas_at(s4.trace, span * frac, 8, 12) != 0).sum())
            assert n >= prev
            prev = n

    def test_partial_state_consistent_with_events(self, s4):
        span = s4.trace.makespan()
        img = canvas_at(s4.trace, span / 2, 8, 12)
        n_colored = int((img != 0).sum())
        n_ended = sum(1 for iv in s4.trace.stroke_intervals()
                      if iv.end <= span / 2)
        assert n_colored == n_ended


class TestFrames:
    def test_frame_count_and_order(self, s4):
        frs = frames(s4.trace, 8, 12, n_frames=5)
        assert len(frs) == 5
        times = [f.time for f in frs]
        assert times == sorted(times)
        assert times[0] == 0.0
        assert times[-1] == pytest.approx(s4.trace.makespan())

    def test_fraction_done_monotone(self, s4):
        frs = frames(s4.trace, 8, 12, n_frames=6)
        fracs = [f.fraction_done for f in frs]
        assert fracs == sorted(fracs)
        assert fracs[-1] == 1.0

    def test_agent_states_labeled(self, s4):
        frs = frames(s4.trace, 8, 12, n_frames=4)
        mid = frs[1]
        assert set(mid.active) == set(s4.trace.agents())
        labels = set(mid.active.values())
        assert any(v.startswith(("coloring", "waiting", "idle"))
                   for v in labels)

    def test_waiting_visible_in_contended_run(self, s4):
        """Somewhere during scenario 4 someone is 'waiting for ...'."""
        frs = frames(s4.trace, 8, 12, n_frames=20)
        assert any(
            v.startswith("waiting")
            for f in frs for v in f.active.values()
        )

    def test_empty_trace_raises(self):
        with pytest.raises(AnimationError):
            frames(Trace([]), 4, 4)

    def test_bad_frame_count(self, s4):
        with pytest.raises(AnimationError):
            frames(s4.trace, 8, 12, n_frames=0)


class TestRenderers:
    def test_ascii_frames_shape(self, s4):
        frs = ascii_frames(s4.trace, 8, 12, n_frames=3)
        assert len(frs) == 3
        assert "t=" in frs[0]
        assert "colored" in frs[0]

    def test_svg_filmstrip(self, s4):
        svg = svg_filmstrip(s4.trace, 8, 12, n_frames=4)
        assert svg.startswith("<svg")
        assert svg.count('">t=') == 4  # one timestamp label per frame
        # Exactly one outer svg element (frames are inlined groups).
        assert svg.count("<svg") == 1
        assert svg.count("<g transform") == 4

    def test_progress_curve_monotone_to_one(self, s4):
        curve = progress_curve(s4.trace, 8, 12, n_points=30)
        fracs = [f for _, f in curve]
        assert fracs == sorted(fracs)
        assert fracs[0] == 0.0 or fracs[0] < 0.1
        assert fracs[-1] == 1.0

    def test_sequential_curve_nearly_linear(self):
        """One student: steady progress, no pipeline lag."""
        prog = compile_flag(mauritius())
        team = make_team("t", 1, np.random.default_rng(13),
                         colors=list(MAURITIUS_STRIPES))
        # Kill warmup so the rate is constant.
        team.students[0].lifetime_cells = 10_000
        r = run_partition(single(prog), team, np.random.default_rng(13))
        curve = progress_curve(r.trace, 8, 12, n_points=10)
        # Halfway through time, roughly half the cells are colored.
        t_mid_frac = curve[5][1]
        assert 0.35 < t_mid_frac < 0.65
