"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.sim.engine import (
    Acquire,
    Release,
    SimulationError,
    Simulator,
    Timeout,
    WaitAll,
)
from repro.sim.events import EventKind


def sleeper(sim, name, delay):
    yield Timeout(delay)
    sim.log(EventKind.NOTE, agent=name, msg="woke")


class TestTimeouts:
    def test_clock_advances(self):
        sim = Simulator()
        sim.add_process("a", sleeper(sim, "a", 5.0))
        assert sim.run() == 5.0

    def test_parallel_sleepers_makespan_is_max(self):
        sim = Simulator()
        sim.add_process("a", sleeper(sim, "a", 3.0))
        sim.add_process("b", sleeper(sim, "b", 7.0))
        assert sim.run() == 7.0
        assert sim.finish_times == {"a": 3.0, "b": 7.0}

    def test_negative_timeout_rejected(self):
        with pytest.raises(SimulationError):
            Timeout(-1.0)

    def test_start_at_offsets_process(self):
        sim = Simulator()
        sim.add_process("late", sleeper(sim, "late", 1.0), start_at=10.0)
        assert sim.run() == 11.0

    def test_zero_duration_process(self):
        def instant(sim):
            sim.log(EventKind.NOTE, agent="i")
            return
            yield  # pragma: no cover - makes this a generator

        sim = Simulator()
        sim.add_process("i", instant(sim))
        assert sim.run() == 0.0


class TestResources:
    def test_exclusive_resource_serializes(self):
        sim = Simulator()
        res = sim.resource("marker")

        def worker(name):
            yield Acquire(res)
            yield Timeout(2.0)
            yield Release(res)

        sim.add_process("a", worker("a"))
        sim.add_process("b", worker("b"))
        assert sim.run() == 4.0

    def test_capacity_two_runs_concurrently(self):
        sim = Simulator()
        res = sim.resource("markers", capacity=2)

        def worker(name):
            yield Acquire(res)
            yield Timeout(2.0)
            yield Release(res)

        for n in ("a", "b"):
            sim.add_process(n, worker(n))
        assert sim.run() == 2.0

    def test_fifo_grant_order(self):
        sim = Simulator()
        res = sim.resource("m")
        order = []

        def worker(name, think):
            yield Timeout(think)
            yield Acquire(res)
            order.append(name)
            yield Timeout(1.0)
            yield Release(res)

        sim.add_process("first", worker("first", 0.0))
        sim.add_process("second", worker("second", 0.1))
        sim.add_process("third", worker("third", 0.2))
        sim.run()
        assert order == ["first", "second", "third"]

    def test_release_without_hold_raises(self):
        sim = Simulator()
        res = sim.resource("m")

        def bad():
            yield Release(res)

        sim.add_process("bad", bad())
        with pytest.raises(SimulationError, match="without holding"):
            sim.run()

    def test_resource_capacity_conflict_detected(self):
        sim = Simulator()
        sim.resource("m", capacity=1)
        with pytest.raises(SimulationError, match="capacity"):
            sim.resource("m", capacity=2)

    def test_resource_reuse_same_capacity_ok(self):
        sim = Simulator()
        a = sim.resource("m", capacity=2)
        b = sim.resource("m", capacity=2)
        assert a is b

    def test_invalid_capacity(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.resource("m", capacity=0)


class TestWaitAll:
    def test_waits_for_dependencies(self):
        sim = Simulator()
        sim.add_process("dep1", sleeper(sim, "dep1", 3.0))
        sim.add_process("dep2", sleeper(sim, "dep2", 5.0))

        def waiter():
            yield WaitAll(("dep1", "dep2"))
            yield Timeout(1.0)

        sim.add_process("w", waiter())
        assert sim.run() == 6.0
        assert sim.finish_times["w"] == 6.0

    def test_wait_on_finished_process_is_noop(self):
        sim = Simulator()
        sim.add_process("dep", sleeper(sim, "dep", 1.0))

        def late_waiter():
            yield Timeout(5.0)
            yield WaitAll(("dep",))
            yield Timeout(1.0)

        sim.add_process("w", late_waiter())
        assert sim.run() == 6.0

    def test_wait_on_unknown_raises(self):
        sim = Simulator()

        def waiter():
            yield WaitAll(("ghost",))

        sim.add_process("w", waiter())
        with pytest.raises(SimulationError, match="unknown"):
            sim.run()


class TestKernelSafety:
    def test_duplicate_process_name_rejected(self):
        sim = Simulator()
        sim.add_process("a", sleeper(sim, "a", 1.0))
        with pytest.raises(SimulationError, match="duplicate"):
            sim.add_process("a", sleeper(sim, "a", 1.0))

    def test_add_after_run_rejected(self):
        sim = Simulator()
        sim.add_process("a", sleeper(sim, "a", 1.0))
        sim.run()
        with pytest.raises(SimulationError):
            sim.add_process("b", sleeper(sim, "b", 1.0))

    def test_deadlock_detected(self):
        sim = Simulator()
        res = sim.resource("m")

        def hog():
            yield Acquire(res)
            yield Timeout(1.0)
            # never releases

        def starved():
            yield Timeout(0.5)
            yield Acquire(res)

        sim.add_process("hog", hog())
        sim.add_process("starved", starved())
        with pytest.raises(SimulationError, match="deadlock"):
            sim.run()

    def test_unknown_yield_rejected(self):
        sim = Simulator()

        def bad():
            yield "not a command"

        sim.add_process("bad", bad())
        with pytest.raises(SimulationError, match="yielded"):
            sim.run()

    def test_run_until_horizon(self):
        sim = Simulator()
        sim.add_process("a", sleeper(sim, "a", 100.0))
        assert sim.run(until=10.0) == 10.0


class TestDeterminism:
    def test_identical_seeds_identical_traces(self):
        import numpy as np

        def build():
            sim = Simulator()
            res = sim.resource("m")
            rng = np.random.default_rng(42)

            def worker(name):
                for _ in range(5):
                    yield Acquire(res)
                    sim.log(EventKind.STROKE_START, agent=name)
                    yield Timeout(float(rng.exponential(1.0)))
                    sim.log(EventKind.STROKE_END, agent=name)
                    yield Release(res)

            for n in ("a", "b", "c"):
                sim.add_process(n, worker(n))
            sim.run()
            return [(e.time, e.seq, e.kind, e.agent) for e in sim.events]

        assert build() == build()
