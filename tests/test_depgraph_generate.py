"""Tests for repro.depgraph.generate — synthetic submission populations."""

import numpy as np
import pytest

from repro.depgraph.classify import Category, classify, grade_all
from repro.depgraph.generate import (
    PAPER_MIXTURE,
    generate_exact_paper_cohort,
    generate_submissions,
    make_submission,
    simulate_collection,
)


class TestMixture:
    def test_paper_mixture_sums_to_one(self):
        assert sum(PAPER_MIXTURE.values()) == pytest.approx(1.0)

    def test_mixture_matches_paper_counts(self):
        assert PAPER_MIXTURE["perfect"] == pytest.approx(10 / 29)
        assert PAPER_MIXTURE["no_learning"] == pytest.approx(4 / 29)


class TestMakeSubmission:
    """Generator-classifier round trip per category."""

    EXPECTED = {
        "perfect": Category.PERFECT,
        "split_triangle": Category.MOSTLY_CORRECT,
        "merged_stripes": Category.MOSTLY_CORRECT,
        "spatial_no_arrows": Category.MOSTLY_CORRECT,
        "linear_chain": Category.LINEAR_CHAIN,
        "incomplete": Category.INCOMPLETE,
        "no_learning": Category.NO_LEARNING,
    }

    @pytest.mark.parametrize("key,expected", sorted(EXPECTED.items()))
    def test_round_trip(self, key, expected, rng):
        for _ in range(20):
            sub = make_submission(key, "s", rng)
            assert classify(sub) is expected, key

    def test_unknown_category_raises(self, rng):
        with pytest.raises(KeyError, match="valid"):
            make_submission("telepathic", "s", rng)


class TestExactCohort:
    def test_reproduces_paper_exactly(self, rng):
        report = grade_all(generate_exact_paper_cohort(rng))
        assert report.total == 29
        assert report.n_perfect == 10
        assert report.n_mostly == 7
        assert report.counts[Category.LINEAR_CHAIN] == 6
        assert report.counts[Category.INCOMPLETE] == 2
        assert report.counts[Category.NO_LEARNING] == 4
        assert report.at_least_mostly_correct == pytest.approx(17 / 29)

    def test_shuffled_but_deterministic(self):
        a = [s.student for s in
             generate_exact_paper_cohort(np.random.default_rng(1))]
        b = [s.student for s in
             generate_exact_paper_cohort(np.random.default_rng(1))]
        assert a == b
        c = [s.student for s in
             generate_exact_paper_cohort(np.random.default_rng(2))]
        assert a != c


class TestGenerateSubmissions:
    def test_large_sample_matches_mixture(self):
        rng = np.random.default_rng(0)
        subs = generate_submissions(2000, rng)
        report = grade_all(subs)
        assert report.fraction(Category.PERFECT) == pytest.approx(
            10 / 29, abs=0.05
        )
        assert report.fraction(Category.NO_LEARNING) == pytest.approx(
            4 / 29, abs=0.05
        )

    def test_custom_mixture(self, rng):
        subs = generate_submissions(
            50, rng, mixture={"perfect": 1.0}
        )
        assert all(classify(s) is Category.PERFECT for s in subs)


class TestSimulateCollection:
    def test_response_rate_plausible(self):
        rng = np.random.default_rng(7)
        coll = simulate_collection(rng)
        assert coll.class_size == 65
        assert 0.2 < coll.response_rate < 0.7

    def test_rushed_section_suppresses_rate(self):
        rates_rushed, rates_normal = [], []
        for seed in range(30):
            rng = np.random.default_rng(seed)
            c1 = simulate_collection(rng, rushed_response_rate=0.05)
            rng = np.random.default_rng(seed)
            c2 = simulate_collection(rng, rushed_response_rate=0.55)
            rates_rushed.append(c1.response_rate)
            rates_normal.append(c2.response_rate)
        assert np.mean(rates_rushed) < np.mean(rates_normal)

    def test_invalid_rushed_section(self):
        with pytest.raises(ValueError):
            simulate_collection(np.random.default_rng(0), rushed_section=9)
