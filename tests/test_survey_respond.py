"""Tests for repro.survey.respond — calibrated populations (Tables I-III)."""

import numpy as np
import pytest

from repro.data.paper_tables import ALL_TABLES, INSTITUTIONS, SURVEY_N
from repro.survey.likert import SurveyError
from repro.survey.respond import (
    published_median,
    recompute_table,
    synthesize_all,
    synthesize_institution,
    table_discrepancies,
)


class TestPublishedMedian:
    def test_known_cells(self):
        assert published_median("USI", "had_fun") == 5.0
        assert published_median("HPU", "increased_loops_understanding") == 3.0

    def test_na_cell_is_none(self):
        assert published_median("TNTech", "stimulated_interest") is None
        assert published_median("Webster", "instructor_effort") is None

    def test_untabulated_item_is_none(self):
        assert published_median("USI", "prefer_activity_class") is None


class TestSynthesize:
    def test_unknown_institution(self, rng):
        with pytest.raises(KeyError, match="valid"):
            synthesize_institution("Hogwarts", rng)

    def test_respondent_counts(self, rng):
        rs = synthesize_institution("USI", rng)
        assert rs.n_respondents("had_fun") == SURVEY_N["USI"]

    def test_na_items_not_administered(self, rng):
        rs = synthesize_institution("Webster", rng)
        assert not rs.administered("instructor_effort")
        rs2 = synthesize_institution("TNTech", rng)
        assert not rs2.administered("stimulated_interest")

    def test_knox_gets_optional_item(self, rng):
        rs = synthesize_institution("Knox", rng)
        assert rs.administered("tied_to_assignment")

    def test_others_skip_optional_item(self, rng):
        rs = synthesize_institution("USI", rng)
        assert not rs.administered("tied_to_assignment")

    def test_untabulated_items_administered_with_tone(self, rng):
        rs = synthesize_institution("Knox", rng)
        assert rs.administered("prefer_activity_class")
        # Knox's published tone is uniformly 4.0.
        assert rs.median("prefer_activity_class") == 4.0


class TestTableReproduction:
    """The headline: all of Tables I, II, III reproduce exactly."""

    @pytest.fixture(scope="class")
    def response_sets(self):
        return synthesize_all(seed=99)

    @pytest.mark.parametrize("table_id", ["I", "II", "III"])
    def test_table_exact(self, table_id, response_sets):
        assert table_discrepancies(table_id, response_sets) == {}

    @pytest.mark.parametrize("table_id", ["I", "II", "III"])
    def test_recompute_structure(self, table_id, response_sets):
        table = recompute_table(table_id, response_sets)
        assert set(table) == set(ALL_TABLES[table_id])
        for row in table.values():
            assert set(row) == set(INSTITUTIONS)

    def test_many_seeds_all_exact(self):
        for seed in range(5):
            sets_ = synthesize_all(seed=seed)
            for tid in ("I", "II", "III"):
                assert table_discrepancies(tid, sets_) == {}, (seed, tid)

    def test_unknown_table_raises(self, response_sets):
        with pytest.raises(SurveyError):
            recompute_table("IV", response_sets)
