"""Tests for repro.sweep.cache — the content-addressed result store."""

import pytest

from repro.sweep import CacheError, ResultCache, content_address


class TestContentAddress:
    def test_stable(self):
        key = {"cell": {"flag": "mauritius"}, "seed": 0}
        assert content_address(key) == content_address(key)

    def test_order_insensitive(self):
        assert (content_address({"a": 1, "b": 2})
                == content_address({"b": 2, "a": 1}))

    def test_value_sensitive(self):
        assert content_address({"seed": 0}) != content_address({"seed": 1})


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        digest = content_address({"x": 1})
        assert cache.get(digest) is None
        cache.put(digest, {"trials": [1, 2]})
        assert cache.get(digest) == {"trials": [1, 2]}
        assert (cache.hits, cache.misses) == (1, 1)

    def test_creates_root(self, tmp_path):
        root = tmp_path / "deep" / "nested"
        ResultCache(root)
        assert root.is_dir()

    def test_corrupt_entry_raises(self, tmp_path):
        cache = ResultCache(tmp_path)
        digest = content_address({"x": 1})
        (tmp_path / f"{digest}.json").write_text("{truncated")
        with pytest.raises(CacheError):
            cache.get(digest)

    def test_len_counts_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert len(cache) == 0
        cache.put(content_address({"a": 1}), {})
        cache.put(content_address({"a": 2}), {})
        assert len(cache) == 2

    def test_no_stray_temp_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(content_address({"a": 1}), {"k": "v"})
        assert list(tmp_path.glob("*.tmp")) == []


class TestGetOrCompute:
    def test_computes_once(self, tmp_path):
        cache = ResultCache(tmp_path)
        calls = []

        def compute():
            calls.append(1)
            return {"value": 42}

        first = cache.get_or_compute({"k": "v"}, compute)
        second = cache.get_or_compute({"k": "v"}, compute)
        assert first == second == {"value": 42}
        assert len(calls) == 1

    def test_different_keys_different_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        a = cache.get_or_compute({"k": 1}, lambda: {"v": 1})
        b = cache.get_or_compute({"k": 2}, lambda: {"v": 2})
        assert a != b
