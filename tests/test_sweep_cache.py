"""Tests for repro.sweep.cache — the content-addressed result store."""

import os

import pytest

from repro.sweep import CacheError, ResultCache, content_address


class TestContentAddress:
    def test_stable(self):
        key = {"cell": {"flag": "mauritius"}, "seed": 0}
        assert content_address(key) == content_address(key)

    def test_order_insensitive(self):
        assert (content_address({"a": 1, "b": 2})
                == content_address({"b": 2, "a": 1}))

    def test_value_sensitive(self):
        assert content_address({"seed": 0}) != content_address({"seed": 1})


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        digest = content_address({"x": 1})
        assert cache.get(digest) is None
        cache.put(digest, {"trials": [1, 2]})
        assert cache.get(digest) == {"trials": [1, 2]}
        assert (cache.hits, cache.misses) == (1, 1)

    def test_creates_root(self, tmp_path):
        root = tmp_path / "deep" / "nested"
        ResultCache(root)
        assert root.is_dir()

    def test_corrupt_entry_is_a_miss_and_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        digest = content_address({"x": 1})
        (tmp_path / f"{digest}.json").write_text("{truncated")
        assert cache.get(digest) is None
        assert cache.corruptions == 1
        assert cache.misses == 1
        # The bad file was moved aside, so later reads miss cleanly.
        assert not (tmp_path / f"{digest}.json").exists()
        assert (tmp_path / f"{digest}.corrupt").exists()
        assert cache.get(digest) is None
        assert cache.corruptions == 1  # quarantine happens once

    def test_truncated_entry_recomputes_and_heals(self, tmp_path):
        cache = ResultCache(tmp_path)
        digest = content_address({"x": "heal"})
        cache.put(digest, {"trials": [1, 2, 3]})
        full = (tmp_path / f"{digest}.json").read_text()
        (tmp_path / f"{digest}.json").write_text(full[: len(full) // 2])
        payload = cache.get_or_compute({"x": "heal"},
                                       lambda: {"trials": [1, 2, 3]})
        assert payload == {"trials": [1, 2, 3]}
        assert cache.corruptions == 1
        # Healed: the fresh entry reads back fine.
        assert cache.get(digest) == {"trials": [1, 2, 3]}

    def test_non_object_entry_is_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        digest = content_address({"x": 2})
        (tmp_path / f"{digest}.json").write_text("[1, 2, 3]")
        assert cache.get(digest) is None
        assert cache.corruptions == 1

    def test_quarantined_files_do_not_count_as_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        digest = content_address({"x": 3})
        (tmp_path / f"{digest}.json").write_text("not json")
        cache.get(digest)
        assert len(cache) == 0  # sidecars are not entries...
        # ...but their bytes still occupy the disk budget.
        assert cache.total_bytes() == len("not json")

    def test_entry_vanishing_mid_read_is_plain_miss(self, tmp_path):
        """A concurrent prune between lookup and read is a miss, not
        corruption: nothing is quarantined, ``corruptions`` stays 0."""
        cache = ResultCache(tmp_path)
        digest = content_address({"x": "race"})
        cache.put(digest, {"v": 1})
        real = cache._path(digest)

        class RacingPath:
            """Loses the race: the file is pruned just before the read."""

            def read_text(self):
                os.unlink(real)
                return real.read_text()  # raises FileNotFoundError

        cache._path = lambda d: RacingPath()  # type: ignore[assignment]
        assert cache.get(digest) is None
        assert cache.corruptions == 0
        assert cache.misses == 1
        assert list(tmp_path.glob("*.corrupt")) == []

    def test_len_counts_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert len(cache) == 0
        cache.put(content_address({"a": 1}), {})
        cache.put(content_address({"a": 2}), {})
        assert len(cache) == 2

    def test_no_stray_temp_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(content_address({"a": 1}), {"k": "v"})
        assert list(tmp_path.glob("*.tmp")) == []


def _age(cache, digest, seconds_ago):
    """Backdate one entry's mtime so LRU ordering is deterministic."""
    path = cache._path(digest)
    stamp = os.stat(path).st_mtime - seconds_ago
    os.utime(path, (stamp, stamp))


class TestLRUPrune:
    def test_no_limits_means_no_eviction(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(20):
            cache.put(content_address({"i": i}), {"i": i})
        assert len(cache) == 20
        assert cache.prune() == 0
        assert cache.evictions == 0

    def test_max_entries_evicts_least_recently_used(self, tmp_path):
        cache = ResultCache(tmp_path, max_entries=2)
        old, mid = content_address({"i": 0}), content_address({"i": 1})
        cache.put(old, {"i": 0})
        _age(cache, old, 60)
        cache.put(mid, {"i": 1})
        _age(cache, mid, 30)
        cache.put(content_address({"i": 2}), {"i": 2})
        assert len(cache) == 2
        assert cache.get(old) is None  # the LRU entry went
        assert cache.get(mid) == {"i": 1}

    def test_read_refreshes_recency(self, tmp_path):
        cache = ResultCache(tmp_path, max_entries=2)
        a, b = content_address({"i": "a"}), content_address({"i": "b"})
        cache.put(a, {"v": "a"})
        _age(cache, a, 60)
        cache.put(b, {"v": "b"})
        _age(cache, b, 30)
        assert cache.get(a) == {"v": "a"}  # touch: a is now newest
        cache.put(content_address({"i": "c"}), {"v": "c"})
        assert cache.get(a) == {"v": "a"}
        assert cache.get(b) is None  # b was the stale one

    def test_max_bytes_evicts_until_under_budget(self, tmp_path):
        cache = ResultCache(tmp_path, max_bytes=250)
        digests = []
        for i in range(4):
            d = content_address({"i": i})
            cache.put(d, {"pad": "x" * 80})  # ~95 bytes per entry
            _age(cache, d, 40 - 10 * i)
            digests.append(d)
        cache.put(content_address({"i": 99}), {"pad": "x" * 80})
        assert cache.total_bytes() <= 250
        assert cache.get(digests[0]) is None
        assert cache.evictions >= 2

    def test_newest_entry_survives_even_when_oversized(self, tmp_path):
        cache = ResultCache(tmp_path, max_bytes=10)
        digest = content_address({"big": 1})
        cache.put(digest, {"pad": "x" * 100})
        assert cache.get(digest) == {"pad": "x" * 100}

    def test_bad_limits_rejected(self, tmp_path):
        with pytest.raises(CacheError):
            ResultCache(tmp_path, max_entries=0)
        with pytest.raises(CacheError):
            ResultCache(tmp_path, max_bytes=0)

    def test_sidecars_are_swept_by_prune(self, tmp_path):
        cache = ResultCache(tmp_path, max_entries=2)
        bad = content_address({"bad": 1})
        (tmp_path / f"{bad}.json").write_text("not json")
        cache.get(bad)  # -> quarantined sidecar
        sidecar = tmp_path / f"{bad}.corrupt"
        assert sidecar.exists()
        stamp = os.stat(sidecar).st_mtime - 120
        os.utime(sidecar, (stamp, stamp))
        cache.put(content_address({"i": 1}), {"v": 1})
        cache.put(content_address({"i": 2}), {"v": 2})
        # The sidecar was the oldest of three files against a
        # two-entry budget: pruned, both real entries kept.
        assert not sidecar.exists()
        assert len(cache) == 2

    def test_sidecar_bytes_count_against_max_bytes(self, tmp_path):
        cache = ResultCache(tmp_path, max_bytes=300)
        sidecar = tmp_path / (content_address({"c": 1}) + ".corrupt")
        sidecar.write_text("x" * 280)
        stamp = os.stat(sidecar).st_mtime - 120
        os.utime(sidecar, (stamp, stamp))
        cache.put(content_address({"i": 1}), {"pad": "y" * 80})
        # Entry (~95 B) + sidecar (280 B) bust the 300-byte budget;
        # the oldest file — the sidecar — is evicted.
        assert not sidecar.exists()
        assert cache.total_bytes() <= 300

    def test_recurring_corruption_stays_bounded(self, tmp_path):
        """The bug this pins: sidecars invisible to prune() meant a
        bounded cache grew without bound under recurring corruption."""
        cache = ResultCache(tmp_path, max_entries=3)
        for i in range(20):
            digest = content_address({"corrupt": i})
            (tmp_path / f"{digest}.json").write_text("not json")
            cache.get(digest)  # quarantine
            cache.put(content_address({"ok": i}), {"i": i})  # prunes
        assert cache.corruptions == 20
        files = list(tmp_path.glob("*.json")) + list(tmp_path.glob("*.corrupt"))
        assert len(files) <= 3


class TestGetOrCompute:
    def test_computes_once(self, tmp_path):
        cache = ResultCache(tmp_path)
        calls = []

        def compute():
            calls.append(1)
            return {"value": 42}

        first = cache.get_or_compute({"k": "v"}, compute)
        second = cache.get_or_compute({"k": "v"}, compute)
        assert first == second == {"value": 42}
        assert len(calls) == 1

    def test_different_keys_different_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        a = cache.get_or_compute({"k": 1}, lambda: {"v": 1})
        b = cache.get_or_compute({"k": 2}, lambda: {"v": 2})
        assert a != b
