"""Tests for repro.metrics.warmup."""

import math

import numpy as np
import pytest

from repro.metrics.speedup import MetricError
from repro.metrics.warmup import (
    estimate_warmup,
    fit_exponential_decay,
    warmup_contaminates_speedup,
)


class TestEstimateWarmup:
    def test_two_trials(self):
        est = estimate_warmup([400.0, 320.0])
        assert est.first_time == 400.0
        assert est.steady_time == 320.0
        assert est.warmup_ratio == pytest.approx(1.25)
        assert est.improvement_percent == pytest.approx(20.0)

    def test_many_trials_uses_tail(self):
        est = estimate_warmup([400, 350, 310, 300, 300, 300])
        assert est.steady_time == pytest.approx(300.0, abs=5)

    def test_no_warmup(self):
        est = estimate_warmup([100.0, 100.0])
        assert est.warmup_ratio == 1.0
        assert est.improvement_percent == 0.0

    def test_validation(self):
        with pytest.raises(MetricError):
            estimate_warmup([100.0])
        with pytest.raises(MetricError):
            estimate_warmup([100.0, -1.0])


class TestFitExponentialDecay:
    def test_recovers_planted_parameters(self):
        steady, a, tau = 300.0, 0.4, 2.0
        times = [steady * (1 + a * math.exp(-k / tau)) for k in range(8)]
        s_hat, a_hat, tau_hat = fit_exponential_decay(times)
        assert s_hat == pytest.approx(steady, rel=0.1)
        assert a_hat == pytest.approx(a, rel=0.6)

    def test_fit_prediction_close(self):
        steady, a, tau = 250.0, 0.8, 1.5
        times = [steady * (1 + a * math.exp(-k / tau)) for k in range(10)]
        s_hat, a_hat, t_hat = fit_exponential_decay(times)
        preds = [s_hat * (1 + a_hat * math.exp(-k / t_hat))
                 for k in range(10)]
        rel_err = max(abs(p - t) / t for p, t in zip(preds, times))
        assert rel_err < 0.1

    def test_needs_three_trials(self):
        with pytest.raises(MetricError):
            fit_exponential_decay([1.0, 2.0])

    def test_on_simulated_student(self, rng):
        """Fit the warmup curve from actual simulated repeat-trial times."""
        from repro.agents import make_team
        from repro.flags import compile_flag, mauritius, single
        from repro.grid.palette import MAURITIUS_STRIPES
        from repro.schedule.runner import run_partition

        prog = compile_flag(mauritius())
        team = make_team("t", 1, rng, colors=list(MAURITIUS_STRIPES))
        times = []
        for _ in range(5):
            r = run_partition(single(prog), team, rng)
            times.append(r.true_makespan)
        s_hat, a_hat, tau_hat = fit_exponential_decay(times)
        assert s_hat > 0
        assert times[0] > s_hat  # first trial above steady state


class TestContamination:
    def test_cold_baseline_inflates_speedup(self):
        optimistic, honest = warmup_contaminates_speedup(400, 320, 100)
        assert optimistic == 4.0
        assert honest == pytest.approx(3.2)
        assert optimistic > honest

    def test_validation(self):
        with pytest.raises(MetricError):
            warmup_contaminates_speedup(0, 1, 1)
