"""Metric-identity property tests: vector backend == reference engine.

The backend contract (``docs/backends.md``, :mod:`repro.sim.backend`)
promises that for any cell both engines can run, every per-trial metric
is **bit-identical** — not approximately equal — because the vector
engine consumes the very same RNG stream the reference event loop
does.  These tests pin that promise across the whole flag catalog,
every scenario, the full core activity, and randomized grids of team
sizes / copies / policies / styles.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.agents.student import FillStyle
from repro.flags import available_flags
from repro.schedule import AcquirePolicy
from repro.sim.vector import run_vector_cell
from repro.sweep.executor import run_trial
from repro.sweep.spec import ACTIVITY, SweepCell

METRICS = ("label", "strategy", "n_workers", "true_makespan",
           "measured_time", "correct")


def _tasks(cell: SweepCell, *, seed: int, n_trials: int):
    return [
        {"cell": cell.key_dict(), "cell_key": cell.key(), "seed": seed,
         "n_trials": n_trials, "trial": t, "observe": False}
        for t in range(n_trials)
    ]


def assert_cell_parity(cell: SweepCell, *, seed: int, n_trials: int):
    """Every trial's every run must match the reference engine exactly."""
    tasks = _tasks(cell, seed=seed, n_trials=n_trials)
    vector = run_vector_cell(
        [dict(task, backend="vector") for task in tasks])
    for task, vec in zip(tasks, vector):
        ref = run_trial(task)
        assert vec["trial"] == ref["trial"]
        assert list(vec["runs"]) == list(ref["runs"])
        for label, ref_run in ref["runs"].items():
            vec_run = vec["runs"][label]
            for metric in METRICS:
                assert vec_run[metric] == ref_run[metric], (
                    f"{cell.key()} trial {task['trial']} run {label}: "
                    f"{metric} diverged "
                    f"({vec_run[metric]!r} != {ref_run[metric]!r})")
            assert "trace" not in vec_run  # metric-only payloads


@pytest.mark.parametrize("flag", sorted(available_flags()))
@pytest.mark.parametrize("scenario", [1, 2, 3, 4])
def test_catalog_scenario_parity(flag, scenario):
    """Bitwise parity for every flag x scenario in the catalog."""
    cell = SweepCell(flag=flag, scenario=scenario, team_size=6,
                     policy=AcquirePolicy.HOLD_COLOR_RUN,
                     style=FillStyle.SCRIBBLE, rows=6, cols=8)
    assert_cell_parity(cell, seed=11, n_trials=2)


@pytest.mark.parametrize("flag", ["mauritius", "japan", "canada"])
def test_activity_parity(flag):
    """The five-run core activity stays aligned run to run.

    Activity sequencing is the hardest case for the vector engine: one
    RNG stream spans five runs that may alternate between the batched
    and replay paths, so any draw-count slip in an early run shows up
    as divergence in a later one.
    """
    cell = SweepCell(flag=flag, scenario=ACTIVITY, team_size=6,
                     policy=AcquirePolicy.HOLD_COLOR_RUN,
                     style=FillStyle.SCRIBBLE)
    assert_cell_parity(cell, seed=7, n_trials=2)


def test_randomized_configuration_parity():
    """Seeded random grids: sizes, copies, policies, styles, seeds."""
    rng = np.random.default_rng(2026)
    flags = sorted(available_flags())
    policies = list(AcquirePolicy)
    styles = list(FillStyle)
    for _ in range(12):
        cell = SweepCell(
            flag=flags[rng.integers(len(flags))],
            scenario=int(rng.integers(1, 5)),
            team_size=int(rng.integers(6, 9)),
            policy=policies[rng.integers(len(policies))],
            style=styles[rng.integers(len(styles))],
            copies=int(rng.integers(1, 4)),
            rows=6, cols=8,
        )
        assert_cell_parity(cell, seed=int(rng.integers(1 << 16)),
                           n_trials=2)


def test_partial_trial_subset_matches_full_batch():
    """Any subset of a batch's trials computes the same bytes.

    The fabric may lease a cell more than once and serve answers one
    task at a time; trial t's stream depends only on (seed, cell key,
    t), never on which other trials share the batch.
    """
    cell = SweepCell(flag="mauritius", scenario=3, team_size=6,
                     policy=AcquirePolicy.HOLD_COLOR_RUN,
                     style=FillStyle.SCRIBBLE, rows=6, cols=8)
    tasks = [dict(t, backend="vector")
             for t in _tasks(cell, seed=5, n_trials=4)]
    full = run_vector_cell(tasks)
    subset = run_vector_cell([tasks[3], tasks[1]])
    assert subset[0] == full[3]
    assert subset[1] == full[1]
