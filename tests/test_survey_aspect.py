"""Tests for repro.survey.aspect — the Figure 5 instrument."""

import pytest

from repro.data.paper_tables import ALL_TABLES
from repro.survey.aspect import (
    ITEMS,
    Aspect,
    get_item,
    item_for_table_row,
    items_by_aspect,
    table_rows,
)


class TestInstrument:
    def test_eighteen_items(self):
        assert len(ITEMS) == 18

    def test_unique_ids(self):
        ids = [i.item_id for i in ITEMS]
        assert len(set(ids)) == 18

    def test_exactly_one_optional_item(self):
        optional = [i for i in ITEMS if i.optional]
        assert len(optional) == 1
        assert optional[0].item_id == "tied_to_assignment"

    def test_aspect_counts(self):
        assert len(items_by_aspect(Aspect.INSTRUCTOR)) == 4
        assert len(items_by_aspect(Aspect.UNDERSTANDING)) == 6
        assert len(items_by_aspect(Aspect.ENGAGEMENT)) == 8

    def test_get_item(self):
        assert get_item("had_fun").aspect is Aspect.ENGAGEMENT
        with pytest.raises(KeyError, match="valid"):
            get_item("favorite_color")


class TestTableMapping:
    def test_every_published_row_has_an_item(self):
        for table_id, table in ALL_TABLES.items():
            for row_label in table:
                item = item_for_table_row(table_id, row_label)
                assert item.table_row == (table_id, row_label)

    def test_table_rows_cover_all_published_rows(self):
        mapped = table_rows()
        published = {
            (tid, row) for tid, t in ALL_TABLES.items() for row in t
        }
        assert set(mapped) == published

    def test_three_items_untabulated(self):
        untabulated = [i for i in ITEMS if i.table_row is None]
        assert {i.item_id for i in untabulated} == {
            "others_contributed", "prefer_activity_class",
            "tied_to_assignment",
        }

    def test_unknown_row_raises(self):
        with pytest.raises(KeyError):
            item_for_table_row("I", "Not a real question")

    def test_table_aspect_consistency(self):
        """Table I rows are engagement items, II understanding, III
        instructor — the paper's grouping."""
        expectations = {"I": Aspect.ENGAGEMENT, "II": Aspect.UNDERSTANDING,
                        "III": Aspect.INSTRUCTOR}
        for (tid, _row), item in table_rows().items():
            assert item.aspect is expectations[tid]
