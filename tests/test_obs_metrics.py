"""Tests for repro.obs.metrics — the registry and its determinism."""

import numpy as np
import pytest

from repro.agents import make_team
from repro.obs import (Counter, Gauge, Histogram, MetricsError,
                       MetricsRegistry, RunObserver)
from repro.schedule import get_scenario, run_scenario


class TestCounter:
    def test_inc_and_value(self):
        c = Counter("events_total")
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5

    def test_labels_are_independent_series(self):
        c = Counter("strokes_total")
        c.inc(3, agent="P1")
        c.inc(1, agent="P2")
        assert c.value(agent="P1") == 3
        assert c.value(agent="P2") == 1
        assert c.value(agent="P3") == 0.0

    def test_negative_increment_raises(self):
        c = Counter("x")
        with pytest.raises(MetricsError):
            c.inc(-1)

    def test_samples_sorted_and_formatted(self):
        c = Counter("strokes_total")
        c.inc(2, agent="P2")
        c.inc(5, agent="P1")
        assert c.samples() == ['strokes_total{agent="P1"} 5',
                               'strokes_total{agent="P2"} 2']


class TestGauge:
    def test_last_write_wins_and_can_decrease(self):
        g = Gauge("makespan")
        g.set(10.0)
        g.set(4.5)
        assert g.value() == 4.5


class TestHistogram:
    def test_buckets_are_cumulative(self):
        h = Histogram("wait", buckets=(1.0, 5.0, 10.0))
        for v in (0.5, 2.0, 7.0, 100.0):
            h.observe(v)
        lines = h.samples()
        assert 'wait_bucket{le="1"} 1' in lines
        assert 'wait_bucket{le="5"} 2' in lines
        assert 'wait_bucket{le="10"} 3' in lines
        assert 'wait_bucket{le="+Inf"} 4' in lines
        assert h.count() == 4
        assert h.sum() == 109.5

    def test_labeled_series(self):
        h = Histogram("wait", buckets=(1.0,))
        h.observe(0.5, resource="red")
        h.observe(2.0, resource="blue")
        assert h.count(resource="red") == 1
        assert h.sum(resource="blue") == 2.0

    def test_empty_buckets_raise(self):
        with pytest.raises(MetricsError):
            Histogram("x", buckets=())

    def test_quantile_interpolates_within_bucket(self):
        h = Histogram("lat", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 1.5, 3.0):
            h.observe(v)
        assert h.quantile(0.0) == 0.0
        # p50 falls in the (1, 2] bucket: 1 of 4 below it, 3 at its edge.
        assert 1.0 <= h.quantile(0.5) <= 2.0
        assert h.quantile(1.0) == 4.0

    def test_quantile_of_empty_series_is_zero(self):
        assert Histogram("lat", buckets=(1.0,)).quantile(0.99) == 0.0

    def test_quantile_clamps_overflow_to_last_bucket(self):
        h = Histogram("lat", buckets=(1.0, 2.0))
        h.observe(100.0)  # lands in +Inf; quantile stays finite
        assert h.quantile(0.99) == 2.0

    def test_quantile_respects_labels(self):
        h = Histogram("lat", buckets=(1.0, 8.0))
        h.observe(0.5, endpoint="/run")
        h.observe(6.0, endpoint="/sweep")
        assert h.quantile(1.0, endpoint="/run") <= 1.0
        assert h.quantile(1.0, endpoint="/sweep") > 1.0

    def test_quantile_zero_with_empty_low_buckets_stays_at_floor(self):
        # Regression: every observation lands in the (2, 4] bucket, so
        # the first crossing bucket for q=0 is (0, 1] with zero mass.
        # The estimate must stay at that bucket's floor (0.0), not jump
        # to its ceiling.
        h = Histogram("lat", buckets=(1.0, 2.0, 4.0))
        for _ in range(5):
            h.observe(3.0)
        assert h.quantile(0.0) == 0.0
        # A sparse low quantile crossing the same empty bucket behaves
        # identically: rank 0.0 < count 0 never interpolates upward.
        assert h.quantile(0.0) <= h.quantile(0.2) <= h.quantile(1.0)

    def test_quantile_out_of_range_raises(self):
        h = Histogram("lat", buckets=(1.0,))
        with pytest.raises(MetricsError):
            h.quantile(1.5)


class TestRegistry:
    def test_getters_are_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(MetricsError):
            reg.gauge("a")

    def test_snapshot_flattens_histograms(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert snap["c"][""] == 2
        assert snap["h_sum"][""] == 0.5
        assert snap["h_count"][""] == 1.0

    def test_prometheus_has_help_and_type_lines(self):
        reg = MetricsRegistry()
        reg.counter("events_total", "things that happened").inc()
        text = reg.render_prometheus()
        assert "# HELP events_total things that happened" in text
        assert "# TYPE events_total counter" in text
        assert "events_total 1" in text


def _observe_run(seed, scenario=4):
    """One observed scenario run; returns the observer and result."""
    from repro.flags import mauritius

    spec = mauritius()
    obs = RunObserver()
    team = make_team("team", 4, np.random.default_rng(seed),
                     colors=list(spec.colors_used()))
    result = run_scenario(get_scenario(scenario), spec, team,
                          np.random.default_rng(seed), observer=obs)
    return obs, result


class TestAccumulationDeterminism:
    """Metrics derive only from sim-time events ⇒ seed-reproducible."""

    def test_identical_seeds_give_byte_identical_prometheus(self):
        a, _ = _observe_run(42)
        b, _ = _observe_run(42)
        assert a.prometheus() == b.prometheus()

    def test_different_seeds_differ(self):
        a, _ = _observe_run(42)
        b, _ = _observe_run(43)
        assert a.prometheus() != b.prometheus()

    def test_counters_match_ground_truth(self):
        obs, result = _observe_run(7)
        strokes = obs.metrics.counter("strokes_total")
        total = sum(strokes.value(agent=a) for a in result.trace.agents())
        assert total == 96  # 8x12 Mauritius grid, every cell once
        handoffs = obs.metrics.counter("handoffs_total")
        assert handoffs.value() == len(result.trace.handoffs())
        makespan = obs.metrics.gauge("run_makespan_seconds")
        assert makespan.value() == pytest.approx(result.true_makespan)

    def test_wait_histogram_matches_trace_accounting(self):
        obs, result = _observe_run(7)
        hist = obs.metrics.histogram("resource_wait_seconds")
        resources = {s.tags["resource"]
                     for s in obs.spans.spans if s.category == "wait"}
        total_wait = sum(hist.sum(resource=r) for r in resources)
        trace_wait = sum(i.duration for i in result.trace.wait_intervals())
        assert total_wait == pytest.approx(trace_wait, rel=1e-9)

    def test_summary_attached_to_run_result(self):
        obs, result = _observe_run(3)
        assert result.obs is not None
        assert result.obs.n_spans == len(obs.spans.spans)
        assert result.obs.makespan == pytest.approx(result.true_makespan)
        assert sum(result.obs.counters["strokes_total"].values()) == 96
        assert "makespan" in result.obs.format()
