"""Tests for repro.schedule.worksteal."""

import numpy as np
import pytest

from repro.agents import ImplementKit, Team, make_team
from repro.agents.implements import THICK_MARKER
from repro.agents.student import StudentProcessor, StudentProfile, TimerStudent
from repro.flags import (
    canada,
    compile_flag,
    diagonal_bicolor,
    great_britain,
    mauritius,
    scenario_partition,
    vertical_slices,
)
from repro.grid.palette import MAURITIUS_STRIPES
from repro.schedule.runner import run_partition
from repro.schedule.worksteal import (
    WorkStealError,
    count_steals,
    run_work_stealing,
    steal_back_half,
)


class TestStealBackHalf:
    """The pure queue-level primitive shared with repro.fabric."""

    def test_moves_back_half_of_largest_queue(self):
        from collections import deque
        queues = {"a": deque([1, 2, 3, 4]), "b": deque(), "c": deque([9])}
        moved = steal_back_half(queues, "b")
        assert moved == ("a", [3, 4])
        assert list(queues["a"]) == [1, 2]
        assert list(queues["b"]) == [3, 4]
        assert list(queues["c"]) == [9]

    def test_single_item_queue_gives_its_item(self):
        from collections import deque
        queues = {"a": deque(["only"]), "b": deque()}
        assert steal_back_half(queues, "b") == ("a", ["only"])
        assert not queues["a"]

    def test_nothing_to_steal_returns_none(self):
        from collections import deque
        queues = {"a": deque(), "b": deque([1, 2])}
        assert steal_back_half(queues, "b") is None
        assert list(queues["b"]) == [1, 2]  # own queue never raided

    def test_tie_breaks_deterministically(self):
        from collections import deque
        build = lambda: {"a": deque([1, 2]), "z": deque([3, 4]),
                         "thief": deque()}
        first = steal_back_half(build(), "thief")
        second = steal_back_half(build(), "thief")
        assert first == second == ("z", [4])

    def test_preserves_victim_order(self):
        from collections import deque
        queues = {"a": deque(list(range(10))), "b": deque()}
        _, stolen = steal_back_half(queues, "b")
        assert stolen == [5, 6, 7, 8, 9]
        assert list(queues["a"]) == [0, 1, 2, 3, 4]


def fresh_team(seed, n=4, colors=None, copies=1, slow_last=False):
    rng = np.random.default_rng(seed)
    team = make_team("t", n, rng, colors=colors or list(MAURITIUS_STRIPES),
                     copies=copies)
    if slow_last:
        # Make the last student dramatically slower to force imbalance.
        team.students[-1].profile.base_cell_time *= 3.0
    return team


class TestRunWorkStealing:
    def test_correct_result(self):
        prog = compile_flag(mauritius())
        part = scenario_partition(prog, 4)
        r = run_work_stealing(part, fresh_team(1), np.random.default_rng(1))
        assert r.correct
        assert r.canvas.n_colored() == prog.n_ops
        assert r.strategy.endswith("+stealing")

    def test_layered_program_rejected(self):
        spec = great_britain()
        prog = compile_flag(spec)
        part = vertical_slices(prog, 3)
        team = fresh_team(2, n=3, colors=list(spec.colors_used()))
        with pytest.raises(WorkStealError, match="flat"):
            run_work_stealing(part, team, np.random.default_rng(2))

    def test_steals_happen_under_imbalance(self):
        """A slow straggler gets robbed by finished teammates."""
        prog = compile_flag(mauritius())
        part = scenario_partition(prog, 4)
        team = fresh_team(3, slow_last=True, copies=4)
        r = run_work_stealing(part, team, np.random.default_rng(3))
        assert r.correct
        assert count_steals(r.trace) > 0

    def test_stealing_beats_static_under_imbalance(self):
        """With one very slow student, stealing shortens the makespan."""
        prog = compile_flag(mauritius())
        static_times, steal_times = [], []
        for s in range(4):
            t1 = fresh_team(50 + s, slow_last=True, copies=4)
            static_times.append(
                run_partition(scenario_partition(prog, 4), t1,
                              np.random.default_rng(50 + s)).true_makespan
            )
            t2 = fresh_team(50 + s, slow_last=True, copies=4)
            steal_times.append(
                run_work_stealing(scenario_partition(prog, 4), t2,
                                  np.random.default_rng(50 + s)).true_makespan
            )
        assert np.median(steal_times) < np.median(static_times)

    def test_few_steals_when_perfectly_balanced_and_uniform(self):
        """Identical students on equal shares: only end-of-run scraps get
        stolen (the first finisher grabs a cell or two), far fewer than
        under a real straggler."""
        prog = compile_flag(mauritius())
        students = [
            StudentProcessor(f"t.P{i+1}",
                             StudentProfile(sigma=0.01, warmup_penalty=0.0))
            for i in range(4)
        ]
        team = Team("t", students, TimerStudent("t.timer"),
                    ImplementKit.uniform(MAURITIUS_STRIPES, THICK_MARKER,
                                         copies=4))
        r = run_work_stealing(scenario_partition(prog, 4), team,
                              np.random.default_rng(4))
        assert r.correct
        assert count_steals(r.trace) <= 4

    def test_diagonal_imbalance_fixed_by_stealing(self):
        """Slicing the diagonal flag unevenly splits colors; stealing
        rebalances busy time."""
        spec = diagonal_bicolor()
        prog = compile_flag(spec)
        part = vertical_slices(prog, 2)
        team = fresh_team(7, n=2, colors=list(spec.colors_used()), copies=2)
        r = run_work_stealing(part, team, np.random.default_rng(7))
        assert r.correct

    def test_steal_overhead_recorded(self):
        prog = compile_flag(mauritius())
        r = run_work_stealing(scenario_partition(prog, 4),
                              fresh_team(9, slow_last=True, copies=4),
                              np.random.default_rng(9), steal_overhead=5.0)
        assert r.extra["steal_overhead"] == 5.0
