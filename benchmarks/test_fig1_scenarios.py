"""Figure 1 + Section III-C: the four core scenarios on the Mauritius flag.

Regenerates the whiteboard the activity produces: completion time per
scenario across several teams, the decreasing trend through scenario 3,
and the scenario-4 contention reversal.  Absolute seconds are simulated
humans, not the authors' classrooms; the asserted shape is the paper's:

- times fall monotonically from scenario 1 to scenario 3;
- scenario 4 is slower than scenario 3 despite equal processor count;
- speedups stay below linear.

The whiteboard is produced through the batch path (:mod:`repro.sweep`):
one ACTIVITY cell, one trial per team, trials fanned across a process
pool with SeedSequence-derived streams — the same numbers a serial run
or a warm-cache re-run produces, byte for byte.
"""

import pytest

from repro.sweep import ACTIVITY, ResultCache, SweepSpec, run_sweep

from conftest import print_comparison

N_TEAMS = 4
SCENARIOS = ["scenario1", "scenario1_repeat", "scenario2", "scenario3",
             "scenario4"]


def whiteboard_spec(seed: int) -> SweepSpec:
    return SweepSpec(flags=("mauritius",), scenarios=(ACTIVITY,),
                     n_trials=N_TEAMS, seed=seed)


@pytest.fixture(scope="module")
def whiteboard_medians(tmp_path_factory):
    cache = ResultCache(tmp_path_factory.mktemp("fig1-cache"))
    result = run_sweep(whiteboard_spec(1000), workers=2, cache=cache)
    cell = result.cells[0]
    for trial in cell.trials:
        for label, run in trial.runs.items():
            assert run.correct, (label, trial.trial)

    # The warm path must reproduce the whiteboard without recomputing.
    warm = run_sweep(whiteboard_spec(1000), workers=2, cache=cache)
    assert warm.computed_trials == 0
    assert warm.cells[0].trials == cell.trials

    return {label: cell.median_time(label) for label in SCENARIOS}


def test_fig1_times_fall_then_contend(whiteboard_medians, benchmark):
    med = whiteboard_medians

    benchmark.pedantic(
        lambda: run_sweep(whiteboard_spec(77), workers=1),
        rounds=3, iterations=1,
    )

    print_comparison("Fig 1 / core activity: median times over "
                     f"{N_TEAMS} teams", [
        ["scenario1 (1 student)", "slowest", f"{med['scenario1']:.0f}s"],
        ["scenario1 repeated", "faster (warmup)",
         f"{med['scenario1_repeat']:.0f}s"],
        ["scenario2 (2 students)", "faster", f"{med['scenario2']:.0f}s"],
        ["scenario3 (4 students)", "fastest", f"{med['scenario3']:.0f}s"],
        ["scenario4 (4 students, shared markers)", "slower than s3",
         f"{med['scenario4']:.0f}s"],
    ])

    # The published classroom shape.
    assert med["scenario1"] > med["scenario2"] > med["scenario3"]
    assert med["scenario1_repeat"] < med["scenario1"]
    assert med["scenario4"] > med["scenario3"]


def test_fig1_speedups_sublinear(whiteboard_medians, benchmark):
    med = whiteboard_medians
    benchmark.pedantic(lambda: dict(med), rounds=1, iterations=1)
    base = med["scenario1_repeat"]
    s2 = base / med["scenario2"]
    s3 = base / med["scenario3"]
    print_comparison("Fig 1: speedups vs warmed sequential", [
        ["2 students", "< 2x", f"{s2:.2f}x"],
        ["4 students (by stripe)", "< 4x", f"{s3:.2f}x"],
    ])
    assert 1.0 < s2 < 2.0
    assert 1.5 < s3 < 4.0
    assert s3 > s2


def test_fig1_parallel_matches_serial(benchmark):
    """The whiteboard is identical no matter how many cores produced it."""
    serial = run_sweep(whiteboard_spec(1000), workers=1)
    parallel = benchmark.pedantic(
        lambda: run_sweep(whiteboard_spec(1000), workers=4),
        rounds=1, iterations=1,
    )
    assert parallel.cells[0].trials == serial.cells[0].trials
