"""Figure 1 + Section III-C: the four core scenarios on the Mauritius flag.

Regenerates the whiteboard the activity produces: completion time per
scenario across several teams, the decreasing trend through scenario 3,
and the scenario-4 contention reversal.  Absolute seconds are simulated
humans, not the authors' classrooms; the asserted shape is the paper's:

- times fall monotonically from scenario 1 to scenario 3;
- scenario 4 is slower than scenario 3 despite equal processor count;
- speedups stay below linear.
"""

import numpy as np
import pytest

from repro.flags import mauritius
from repro.schedule import run_core_activity

from conftest import median, print_comparison

N_TEAMS = 4
SCENARIOS = ["scenario1", "scenario1_repeat", "scenario2", "scenario3",
             "scenario4"]


def run_whiteboard(seed0: int, team_factory):
    boards = {label: [] for label in SCENARIOS}
    for t in range(N_TEAMS):
        rng = np.random.default_rng(seed0 + t)
        team = team_factory(seed0 + t)
        results = run_core_activity(mauritius(), team, rng)
        for label, r in results.items():
            boards[label].append(r.measured_time)
            assert r.correct, (label, t)
    return {label: median(ts) for label, ts in boards.items()}


@pytest.fixture(scope="module")
def whiteboard_medians(request):
    factory = None

    def make(seed, n=4, **kw):
        from repro.agents import make_team
        from repro.grid.palette import MAURITIUS_STRIPES
        rng = np.random.default_rng(seed)
        return make_team(f"team{seed}", n, rng,
                         colors=list(MAURITIUS_STRIPES), **kw)

    return run_whiteboard(1000, make)


def test_fig1_times_fall_then_contend(whiteboard_medians, benchmark):
    med = whiteboard_medians

    def one_team():
        rng = np.random.default_rng(77)
        from repro.agents import make_team
        from repro.grid.palette import MAURITIUS_STRIPES
        team = make_team("b", 4, rng, colors=list(MAURITIUS_STRIPES))
        return run_core_activity(mauritius(), team, rng)

    benchmark.pedantic(one_team, rounds=3, iterations=1)

    print_comparison("Fig 1 / core activity: median times over "
                     f"{N_TEAMS} teams", [
        ["scenario1 (1 student)", "slowest", f"{med['scenario1']:.0f}s"],
        ["scenario1 repeated", "faster (warmup)",
         f"{med['scenario1_repeat']:.0f}s"],
        ["scenario2 (2 students)", "faster", f"{med['scenario2']:.0f}s"],
        ["scenario3 (4 students)", "fastest", f"{med['scenario3']:.0f}s"],
        ["scenario4 (4 students, shared markers)", "slower than s3",
         f"{med['scenario4']:.0f}s"],
    ])

    # The published classroom shape.
    assert med["scenario1"] > med["scenario2"] > med["scenario3"]
    assert med["scenario1_repeat"] < med["scenario1"]
    assert med["scenario4"] > med["scenario3"]


def test_fig1_speedups_sublinear(whiteboard_medians, benchmark):
    med = whiteboard_medians
    benchmark.pedantic(lambda: dict(med), rounds=1, iterations=1)
    base = med["scenario1_repeat"]
    s2 = base / med["scenario2"]
    s3 = base / med["scenario3"]
    print_comparison("Fig 1: speedups vs warmed sequential", [
        ["2 students", "< 2x", f"{s2:.2f}x"],
        ["4 students (by stripe)", "< 4x", f"{s3:.2f}x"],
    ])
    assert 1.0 < s2 < 2.0
    assert 1.5 < s3 < 4.0
    assert s3 > s2
