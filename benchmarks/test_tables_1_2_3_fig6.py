"""Tables I-III and Figure 6: per-question median Likert scores.

The full survey pipeline: synthesize each institution's calibrated raw
responses, recompute every median from the raw data, and compare cell by
cell against the published tables.  The reproduction is exact (every cell,
including NA placement); Figure 6's grouped bar chart is rendered from the
recomputed medians.

Table recomputation goes through the sweep layer's content-addressed
result cache (:class:`repro.sweep.ResultCache`): the first pass computes
and stores each table keyed by (workload, table id, seed); every later
pass — the warm half of each test, or a notebook re-run — gets the
identical payload back without resynthesizing six institutions' worth of
responses.
"""

import pytest

from repro.data import ALL_TABLES, INSTITUTIONS
from repro.survey.respond import (
    recompute_table,
    synthesize_all,
    table_discrepancies,
)
from repro.sweep import ResultCache
from repro.viz import format_table, grouped_bar_chart

from conftest import print_comparison

SEED = 2025


@pytest.fixture(scope="module")
def response_sets():
    return synthesize_all(seed=SEED)


@pytest.fixture(scope="module")
def table_cache(tmp_path_factory):
    return ResultCache(tmp_path_factory.mktemp("tables-cache"))


def cached_table(table_id, response_sets, cache):
    """Recompute one table through the content-addressed cache."""
    return cache.get_or_compute(
        {"workload": "survey-table", "table": table_id, "seed": SEED},
        lambda: recompute_table(table_id, response_sets),
    )


@pytest.mark.parametrize("table_id", ["I", "II", "III"])
def test_tables_reproduce_exactly(table_id, response_sets, table_cache,
                                  benchmark):
    recomputed = benchmark.pedantic(
        lambda: cached_table(table_id, response_sets, table_cache),
        rounds=1, iterations=1,
    )
    diffs = table_discrepancies(table_id, response_sets)

    # A warm hit returns the identical payload without recomputation.
    hits_before = table_cache.hits
    warm = cached_table(table_id, response_sets, table_cache)
    assert table_cache.hits == hits_before + 1
    assert warm == recomputed

    rows = []
    for q, cells in ALL_TABLES[table_id].items():
        for inst in INSTITUTIONS:
            want = cells[inst]
            got = recomputed[q][inst]
            rows.append([f"{q[:44]} @{inst}",
                         "NA" if want is None else want,
                         "NA" if got is None else got])
    print_comparison(f"Table {table_id}: published vs recomputed medians",
                     rows[:8] + [["...", "...", "..."]])

    assert diffs == {}, f"Table {table_id} cells differ: {diffs}"


def test_fig6_bar_chart_renders(response_sets, table_cache, benchmark):
    """Figure 6 is the bar-chart form of the medians; render it from the
    recomputed data and check every question/institution appears."""
    chart_data = {}
    for table_id in ("I", "II", "III"):
        recomputed = cached_table(table_id, response_sets, table_cache)
        for q, cells in recomputed.items():
            chart_data[q] = cells
    chart = benchmark.pedantic(
        lambda: grouped_bar_chart(chart_data, width=24, vmax=5.0),
        rounds=1, iterations=1,
    )
    for q in chart_data:
        assert q in chart
    for inst in INSTITUTIONS:
        assert inst in chart
    # NA cells render as NA, not as zero-height bars.
    assert "NA" in chart


def test_pipeline_benchmark(table_cache, benchmark):
    """Time the full synthesize-and-recompute pipeline for all six sites."""

    def pipeline():
        sets_ = synthesize_all(seed=7)
        return {tid: recompute_table(tid, sets_)
                for tid in ("I", "II", "III")}

    tables = benchmark.pedantic(pipeline, rounds=3, iterations=1)
    assert set(tables) == {"I", "II", "III"}

    # The cached pipeline skips synthesis entirely on the warm path.
    cache = table_cache
    cold = {tid: cache.get_or_compute(
                {"workload": "survey-pipeline", "table": tid, "seed": 7},
                lambda tid=tid: tables[tid])
            for tid in ("I", "II", "III")}
    warm = {tid: cache.get_or_compute(
                {"workload": "survey-pipeline", "table": tid, "seed": 7},
                lambda: pytest.fail("warm path recomputed"))
            for tid in ("I", "II", "III")}
    assert warm == cold
