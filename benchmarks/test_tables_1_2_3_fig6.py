"""Tables I-III and Figure 6: per-question median Likert scores.

The full survey pipeline: synthesize each institution's calibrated raw
responses, recompute every median from the raw data, and compare cell by
cell against the published tables.  The reproduction is exact (every cell,
including NA placement); Figure 6's grouped bar chart is rendered from the
recomputed medians.
"""

import pytest

from repro.data import ALL_TABLES, INSTITUTIONS
from repro.survey.respond import (
    recompute_table,
    synthesize_all,
    table_discrepancies,
)
from repro.viz import format_table, grouped_bar_chart

from conftest import print_comparison


@pytest.fixture(scope="module")
def response_sets():
    return synthesize_all(seed=2025)


@pytest.mark.parametrize("table_id", ["I", "II", "III"])
def test_tables_reproduce_exactly(table_id, response_sets, benchmark):
    recomputed = benchmark.pedantic(
        lambda: recompute_table(table_id, response_sets),
        rounds=1, iterations=1,
    )
    diffs = table_discrepancies(table_id, response_sets)

    rows = []
    for q, cells in ALL_TABLES[table_id].items():
        for inst in INSTITUTIONS:
            want = cells[inst]
            got = recomputed[q][inst]
            rows.append([f"{q[:44]} @{inst}",
                         "NA" if want is None else want,
                         "NA" if got is None else got])
    print_comparison(f"Table {table_id}: published vs recomputed medians",
                     rows[:8] + [["...", "...", "..."]])

    assert diffs == {}, f"Table {table_id} cells differ: {diffs}"


def test_fig6_bar_chart_renders(response_sets, benchmark):
    """Figure 6 is the bar-chart form of the medians; render it from the
    recomputed data and check every question/institution appears."""
    chart_data = {}
    for table_id in ("I", "II", "III"):
        recomputed = recompute_table(table_id, response_sets)
        for q, cells in recomputed.items():
            chart_data[q] = cells
    chart = benchmark.pedantic(
        lambda: grouped_bar_chart(chart_data, width=24, vmax=5.0),
        rounds=1, iterations=1,
    )
    for q in chart_data:
        assert q in chart
    for inst in INSTITUTIONS:
        assert inst in chart
    # NA cells render as NA, not as zero-height bars.
    assert "NA" in chart


def test_pipeline_benchmark(benchmark):
    """Time the full synthesize-and-recompute pipeline for all six sites."""

    def pipeline():
        sets_ = synthesize_all(seed=7)
        return {tid: recompute_table(tid, sets_)
                for tid in ("I", "II", "III")}

    tables = benchmark.pedantic(pipeline, rounds=3, iterations=1)
    assert set(tables) == {"I", "II", "III"}
