"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and checks the
*shape* of the result (who wins, by roughly what factor) rather than the
authors' absolute classroom seconds.  Helpers here keep the paper-vs-measured
reporting uniform; run with ``pytest benchmarks/ --benchmark-only -s`` to see
the comparison tables inline.
"""

from __future__ import annotations

from typing import Mapping, Optional

import numpy as np
import pytest

from repro.agents import make_team
from repro.grid.palette import MAURITIUS_STRIPES


def print_comparison(title: str, rows) -> None:
    """Print a labeled paper-vs-measured block (visible with -s)."""
    from repro.viz import format_table
    print(f"\n=== {title} ===")
    print(format_table(["metric", "paper", "measured"], rows))


def median(values) -> float:
    return float(np.median(values))


@pytest.fixture
def team_factory():
    """Factory for standard 4-student Mauritius teams."""

    def make(seed: int, n: int = 4, **kwargs):
        rng = np.random.default_rng(seed)
        return make_team(f"team{seed}", n, rng,
                         colors=list(MAURITIUS_STRIPES), **kwargs)

    return make
