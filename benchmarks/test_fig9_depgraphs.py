"""Figure 9 + Section V-C: the Jordan dependency graphs and their grading.

Regenerates the reference graph from the flag's layer structure (it must
equal Figure 9), replays the paper's 29-submission cohort through the
rubric grader, and checks every published statistic: 34% perfect, 24%
mostly correct, 59% at least mostly correct, 14% no learning, linear chain
as the most common error.
"""

import numpy as np
import pytest

from repro.data import DEPGRAPH_RESULTS
from repro.depgraph import (
    Category,
    generate_exact_paper_cohort,
    grade_all,
    jordan_reference_dag,
    simulate_collection,
)

from conftest import print_comparison


def test_fig9_reference_graph(benchmark):
    g = benchmark.pedantic(jordan_reference_dag, rounds=3,
                           iterations=1)
    print_comparison("Fig 9: reference dependency graph", [
        ["tasks", "stripes, triangle, star", ", ".join(g.tasks)],
        ["edges", "stripes->triangle->star", len(g.edges)],
        ["levels", "3 (stripes | triangle | star)",
         len(g.parallelism_profile())],
    ])
    assert set(g.edges) == {
        ("black_stripe", "red_triangle"),
        ("green_stripe", "red_triangle"),
        ("red_triangle", "white_star"),
    }
    assert g.parallelism_profile() == [2, 1, 1]


def test_secVC_grading_statistics(benchmark):
    rng = np.random.default_rng(929)
    cohort = generate_exact_paper_cohort(rng)
    report = benchmark(lambda: grade_all(cohort))

    frac = report.fraction
    print_comparison("Sec V-C: grading 29 submissions", [
        ["submissions", DEPGRAPH_RESULTS["n_submissions"], report.total],
        ["perfect", "10 (34%)",
         f"{report.n_perfect} ({frac(Category.PERFECT):.0%})"],
        ["mostly correct", "7 (24%)",
         f"{report.n_mostly} ({frac(Category.MOSTLY_CORRECT):.0%})"],
        ["at least mostly", "59%",
         f"{report.at_least_mostly_correct:.0%}"],
        ["no learning", "4 (14%)",
         f"{report.counts.get(Category.NO_LEARNING, 0)} "
         f"({frac(Category.NO_LEARNING):.0%})"],
    ])

    assert report.total == 29
    assert report.n_perfect == 10
    assert report.n_mostly == 7
    assert report.at_least_mostly_correct == pytest.approx(17 / 29)
    assert report.counts[Category.NO_LEARNING] == 4
    # "The most common error ... was to give a linear chain of tasks."
    error_counts = {
        cat: n for cat, n in report.counts.items()
        if cat in (Category.LINEAR_CHAIN, Category.INCOMPLETE,
                   Category.OTHER)
    }
    assert max(error_counts, key=error_counts.get) is Category.LINEAR_CHAIN


def test_secVC_collection_procedure(benchmark):
    """The voluntary collection: ~45% response from 65 students, with the
    rushed first section suppressing the rate."""
    benchmark.pedantic(
        lambda: simulate_collection(np.random.default_rng(0)),
        rounds=1, iterations=1,
    )
    rates = []
    for seed in range(20):
        coll = simulate_collection(np.random.default_rng(seed))
        rates.append(coll.response_rate)
    mean_rate = float(np.mean(rates))
    print_comparison("Sec V-C: collection procedure", [
        ["class size", 65, 65],
        ["response rate", "45%", f"{mean_rate:.0%} (mean of 20 sims)"],
    ])
    assert 0.3 < mean_rate < 0.6
