"""Section III-D: the NVIDIA paintball video — extreme data parallelism.

CPU = one barrel aimed and fired per pixel; GPU = one barrel per pixel.
The sweep scales the "barrel" count from 1 to one-per-cell (with an
implement per worker so no contention) and shows massive but saturating
speedup: the tail is the slowest single stroke plus coordination.
"""

import numpy as np

from repro.agents import make_team
from repro.flags import compile_flag, cyclic, mauritius, single
from repro.grid.palette import MAURITIUS_STRIPES
from repro.schedule.runner import run_partition

from conftest import median, print_comparison


def run_p(p, seed):
    prog = compile_flag(mauritius())
    rng = np.random.default_rng(seed)
    team = make_team("t", p, rng, colors=list(MAURITIUS_STRIPES), copies=p)
    part = single(prog) if p == 1 else cyclic(prog, p)
    return run_partition(part, team, rng)


def test_gpu_sweep(benchmark):
    prog = compile_flag(mauritius())
    n_cells = prog.n_ops
    sweep = [1, 4, 16, n_cells]
    times = {
        p: median([run_p(p, 11_000 + 7 * p + s).true_makespan
                   for s in range(3)])
        for p in sweep
    }
    benchmark.pedantic(lambda: run_p(16, 1), rounds=3, iterations=1)

    speedups = {p: times[1] / times[p] for p in sweep}
    print_comparison("III-D: CPU vs GPU paintball sweep "
                     f"({n_cells}-cell flag)", [
        ["P=1 (CPU: one barrel)", "baseline", f"{times[1]:.0f}s"],
        ["P=4", "~3x", f"{speedups[4]:.1f}x"],
        ["P=16", "large", f"{speedups[16]:.1f}x"],
        [f"P={n_cells} (GPU: barrel per pixel)", "largest, sub-linear",
         f"{speedups[n_cells]:.1f}x"],
    ])

    # Monotone improvement all the way to one worker per cell...
    assert times[1] > times[4] > times[16] > times[n_cells]
    # ...but far below linear at the GPU limit: the makespan floor is the
    # slowest student's strokes, not zero.
    assert speedups[n_cells] < n_cells * 0.6
    assert speedups[n_cells] > 8.0


def test_gpu_limit_floor(benchmark):
    """At one worker per cell every worker makes exactly one stroke; the
    makespan is the max single-stroke time — the 'single shot'."""
    prog = compile_flag(mauritius())
    r = benchmark.pedantic(lambda: run_p(prog.n_ops, 12_345),
                           rounds=1, iterations=1)
    counts = [r.trace.stroke_count(a) for a in r.trace.agents()]
    assert all(c == 1 for c in counts)
    strokes = r.trace.stroke_intervals()
    assert r.true_makespan >= max(iv.duration for iv in strokes)
