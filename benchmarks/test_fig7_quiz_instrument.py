"""Figure 7: the five-question pre/post test.

Checks the instrument against the figure (concepts, question kinds, answer
key) and benchmarks grading a full class's answer sheets.
"""

import numpy as np

from repro.data import QUIZ_CONCEPTS
from repro.survey import QUESTIONS, QuestionKind, grade, score
from repro.survey.transitions import simulate_cohort

from conftest import print_comparison


def test_fig7_instrument(benchmark):
    kinds = benchmark.pedantic(
        lambda: {q.concept: q.kind for q in QUESTIONS},
        rounds=3, iterations=1,
    )
    key = {q.concept: q.options[q.correct][:40] for q in QUESTIONS}

    print_comparison("Fig 7: pre/post test instrument", [
        ["questions", 5, len(QUESTIONS)],
        ["concepts", ", ".join(QUIZ_CONCEPTS),
         ", ".join(q.concept for q in QUESTIONS)],
        ["task_decomposition answer", "(a) breaking down ...",
         key["task_decomposition"]],
        ["speedup answer", "True", key["speedup"]],
        ["contention answer", "(b) competition ...", key["contention"]],
        ["scalability answer", "True", key["scalability"]],
        ["pipelining answer", "(b) overlapping ...", key["pipelining"]],
    ])

    assert len(QUESTIONS) == 5
    assert kinds["speedup"] is QuestionKind.TRUE_FALSE
    assert kinds["scalability"] is QuestionKind.TRUE_FALSE
    assert kinds["contention"] is QuestionKind.MULTIPLE_CHOICE
    assert key["speedup"] == "True"
    assert key["contention"].startswith("The competition")
    assert key["pipelining"].startswith("The technique of overlapping")


def test_fig7_grading_benchmark(benchmark):
    sheets = simulate_cohort("TNTech", np.random.default_rng(0))

    def grade_all_sheets():
        return [score(s) for s in sheets.pre + sheets.post]

    scores = benchmark(grade_all_sheets)
    assert all(0 <= s <= 5 for s in scores)
