"""Section III-D: the Knox follow-up — dependencies limit parallelism.

Layered coloring (GB, Jordan) introduces dependencies that cap speedup:
the DAG's work/critical-path bound predicts it, and barrier-scheduled
simulations exhibit it.  The flat Mauritius flag has no such ceiling.
"""

import numpy as np

from repro.agents import make_team
from repro.depgraph import flag_dag
from repro.flags import great_britain, jordan, mauritius
from repro.schedule.depsched import run_layered

from conftest import median, print_comparison


def layered_time(spec, p, seed):
    rng = np.random.default_rng(seed)
    team = make_team("t", p, rng, colors=list(spec.colors_used()), copies=p)
    return run_layered(spec, team, p, rng).true_makespan


def test_dag_speedup_ceilings(benchmark):
    bounds = {
        name: flag_dag(spec).ideal_speedup_bound()
        for name, spec in (("mauritius", mauritius()),
                           ("great_britain", great_britain()),
                           ("jordan", jordan()))
    }
    benchmark.pedantic(lambda: flag_dag(jordan()), rounds=3, iterations=1)

    print_comparison("III-D: DAG speedup ceilings (work / critical path)", [
        ["mauritius (flat)", "highest (4 independent stripes)",
         f"{bounds['mauritius']:.2f}x"],
        ["jordan (3 levels)", "moderate", f"{bounds['jordan']:.2f}x"],
        ["great_britain (pure chain)", "1.0x (fully serialized layers)",
         f"{bounds['great_britain']:.2f}x"],
    ])
    assert bounds["mauritius"] > bounds["jordan"] > bounds["great_britain"]
    assert bounds["great_britain"] == 1.0
    assert bounds["mauritius"] == 4.0


def test_layered_scaling_flattens(benchmark):
    """Simulated barrier schedules: Jordan's speedup saturates early."""
    spec = jordan()
    times = {
        p: median([layered_time(spec, p, 10_000 + 31 * p + s)
                   for s in range(3)])
        for p in (1, 2, 4, 8)
    }
    benchmark.pedantic(lambda: layered_time(spec, 2, 1),
                       rounds=3, iterations=1)

    speedups = {p: times[1] / times[p] for p in times}
    print_comparison("III-D: layered Jordan scaling (barrier schedule)", [
        [f"P={p}", "diminishing returns", f"{speedups[p]:.2f}x"]
        for p in sorted(speedups)
    ])
    assert speedups[2] > 1.2
    assert speedups[4] > speedups[2]
    # The 4 -> 8 jump gains far less than the 1 -> 2 jump.
    gain_12 = speedups[2]
    gain_48 = speedups[8] / speedups[4]
    assert gain_48 < gain_12
    # Nowhere near linear at P=8.
    assert speedups[8] < 8 * 0.85


def test_layer_barriers_respected(benchmark):
    """The simulation's per-layer finish order matches the DAG's
    topological order — dependencies were actually enforced."""
    spec = great_britain()
    rng = np.random.default_rng(11)
    team = make_team("t", 4, rng, colors=list(spec.colors_used()), copies=4)
    r = benchmark.pedantic(
        lambda: run_layered(spec, team, 4, np.random.default_rng(11)),
        rounds=1, iterations=1,
    )
    finishes = [r.extra["layer_finish"][l] for l in r.extra["layer_order"]]
    assert finishes == sorted(finishes)
    assert r.correct
