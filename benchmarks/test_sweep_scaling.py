"""Sweep scaling: serial vs parallel wall-clock, and cache warmth.

The acceptance bench for :mod:`repro.sweep`: a 32-trial sweep run with
4 workers must produce event traces byte-identical to the same sweep
run serially, beat it on wall-clock when the hardware has cores to
offer, and recompute zero trials on a warm cache.

Wall-clock numbers for both paths are always recorded (see the
printed comparison and ``benchmark.extra_info``); the speedup
*assertion* is gated on ``os.cpu_count() >= 2`` because a process pool
on a single-core box is pure overhead — there is nothing to fan out
onto, and pretending otherwise would make the bench flaky exactly
where it cannot mean anything.
"""

import os
import time

import pytest

from repro.sweep import ResultCache, SweepSpec, run_sweep

from conftest import print_comparison

N_TRIALS = 32
PARALLEL_WORKERS = 4


def scaling_spec(seed: int = 0) -> SweepSpec:
    # One slow sequential colorer on an enlarged raster: each trial is
    # heavy enough (~35ms) that 32 of them dominate pool start-up.
    return SweepSpec(flags=("mauritius",), scenarios=(1,), team_sizes=(1,),
                     n_trials=N_TRIALS, seed=seed, rows=24, cols=36)


def timed_sweep(workers: int, **kwargs):
    t0 = time.perf_counter()
    result = run_sweep(scaling_spec(), workers=workers, **kwargs)
    return result, time.perf_counter() - t0


def test_parallel_traces_byte_identical_and_faster(benchmark):
    serial, serial_wall = timed_sweep(workers=1)
    parallel, parallel_wall = timed_sweep(workers=PARALLEL_WORKERS)

    # Byte-identical event traces, trial for trial, across every cell —
    # this correctness half always runs, even on a 1-core container
    # where the pool is pure overhead.
    assert parallel.computed_trials == serial.computed_trials == N_TRIALS
    for cs, cp in zip(serial.cells, parallel.cells):
        for ts, tp in zip(cs.trials, cp.trials):
            assert ts.only_run.trace == tp.only_run.trace
        assert cs.trials == cp.trials

    cores = os.cpu_count() or 1
    speedup = serial_wall / parallel_wall if parallel_wall else float("inf")
    print_comparison(
        f"sweep scaling: {N_TRIALS} trials, "
        f"{PARALLEL_WORKERS} workers on {cores} cores", [
            ["serial wall", "-", f"{serial_wall:.2f}s"],
            ["parallel wall", "less (with >1 core)", f"{parallel_wall:.2f}s"],
            ["speedup", ">1x (with >1 core)", f"{speedup:.2f}x"],
        ])
    benchmark.extra_info["serial_wall_s"] = round(serial_wall, 3)
    benchmark.extra_info["parallel_wall_s"] = round(parallel_wall, 3)
    benchmark.extra_info["cores"] = cores
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    if cores >= 2:
        assert parallel_wall < serial_wall, (
            f"parallel ({parallel_wall:.2f}s) not faster than serial "
            f"({serial_wall:.2f}s) on {cores} cores"
        )


def test_warm_cache_recomputes_nothing(tmp_path, benchmark):
    cache = ResultCache(tmp_path / "cache")
    cold, cold_wall = timed_sweep(workers=2, cache=cache)
    assert cold.computed_trials == N_TRIALS
    assert cold.cached_trials == 0

    warm, warm_wall = benchmark.pedantic(
        lambda: timed_sweep(workers=2, cache=cache),
        rounds=1, iterations=1,
    )
    assert warm.computed_trials == 0
    assert warm.cached_trials == N_TRIALS
    # Identical payloads, straight from disk.
    assert warm.cells[0].trials == cold.cells[0].trials

    print_comparison("sweep cache: cold vs warm", [
        ["cold wall", "-", f"{cold_wall:.2f}s"],
        ["warm wall", "much less", f"{warm_wall:.2f}s"],
        ["warm recomputed", "0 trials", f"{warm.computed_trials} trials"],
    ])
    assert warm_wall < cold_wall
