"""Figure 4: the flag-coloring-assignment version of the flag of Jordan.

Three stripes, a red chevron at the hoist, a white star on the chevron —
the flag whose dependency graph the Knox students drew.  The bench
compiles the spec, verifies the geometry the grading rubric relies on
(triangle spans all stripes, star inside the triangle, white stripe
optional), and times compilation.
"""

from repro.flags import compile_flag, jordan, verify_program
from repro.grid.palette import Color

from conftest import print_comparison


def test_fig4_jordan_spec(benchmark):
    spec = jordan()
    prog = benchmark(lambda: compile_flag(spec))
    assert verify_program(prog, spec)

    rows, cols = spec.default_rows, spec.default_cols
    tri = spec.layer("red_triangle").region.mask(rows, cols)
    star = spec.layer("white_star").region.mask(rows, cols)
    overlaps = dict.fromkeys(
        a for a, b in spec.overlap_pairs() if b == "red_triangle"
    )

    print_comparison("Fig 4: flag of Jordan", [
        ["layers", "stripes + triangle + star",
         ", ".join(spec.layer_names)],
        ["triangle overlaps stripes", "all three", len(overlaps)],
        ["star inside triangle", "yes",
         "yes" if bool((star <= tri).all()) else "NO"],
        ["white stripe optional on blank paper", "yes (Sec V-C rule)",
         "yes" if spec.layer("white_stripe").optional_on_blank else "NO"],
    ])

    assert spec.layer_names == (
        "black_stripe", "white_stripe", "green_stripe",
        "red_triangle", "white_star",
    )
    assert len(overlaps) == 3
    assert (star <= tri).all()
    assert spec.layer("white_stripe").optional_on_blank


def test_fig4_elided_white_still_correct(benchmark):
    """Compiling without the white stripe still renders an acceptable flag
    — the programming-assignment behavior (background starts white)."""
    spec = jordan()
    prog = benchmark.pedantic(
        lambda: compile_flag(spec, skip_optional_blank=True),
        rounds=3, iterations=1,
    )
    assert "white_stripe" not in prog.layer_order
    assert verify_program(prog, spec)


def test_fig4_star_is_intricate(benchmark):
    """The star (disc) carries a complexity premium; stripes do not."""
    prog = compile_flag(jordan())
    star_ops = benchmark.pedantic(
        lambda: prog.ops_for_layer("white_star"), rounds=3, iterations=1,
    )
    stripe_ops = prog.ops_for_layer("black_stripe")
    assert any(op.complexity > 1.0 for op in star_ops)
    assert all(op.complexity == 1.0 for op in stripe_ops)
