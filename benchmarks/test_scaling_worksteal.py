"""Extension benches: weak scaling (Gustafson) and work stealing.

Two extensions the paper's discussion motivates:

- **weak scaling** — "scalability" is one of the five quiz concepts; the
  strong-scaling sweep is the core activity, so the weak-scaling
  experiment (flag grows with the team) completes the picture.
- **work stealing** — the classroom remedy for the Webster imbalance:
  whoever finishes helps whoever is behind.
"""

import numpy as np

from repro.agents import make_team
from repro.flags import compile_flag, cyclic, mauritius, scenario_partition, single
from repro.grid.palette import MAURITIUS_STRIPES
from repro.metrics.scalability import strong_scaling, weak_scaling
from repro.schedule.runner import run_partition
from repro.schedule.worksteal import count_steals, run_work_stealing

from conftest import median, print_comparison


def sim_time(p, rows, cols, seed):
    prog = compile_flag(mauritius(), rows=rows, cols=cols)
    rng = np.random.default_rng(seed)
    team = make_team("t", p, rng, colors=list(MAURITIUS_STRIPES), copies=p)
    part = single(prog) if p == 1 else cyclic(prog, p)
    return run_partition(part, team, rng).true_makespan


def test_weak_scaling_gustafson(benchmark):
    def run(p, size):
        cols = size // 8
        return median([sim_time(p, 8, cols, 20_000 + 13 * p + s)
                       for s in range(3)])

    curve = weak_scaling(run, [1, 2, 4], base_size=96)
    benchmark.pedantic(lambda: sim_time(2, 8, 24, 1), rounds=3, iterations=1)

    ratios = curve.scaled_time_ratio()
    scaled = curve.speedups()
    print_comparison("Weak scaling: flag grows with the team", [
        ["T(P)/T(1) at P=2", "~1.0 (flat = perfect)", f"{ratios[2]:.2f}"],
        ["T(P)/T(1) at P=4", "~1.0", f"{ratios[4]:.2f}"],
        ["scaled speedup at P=4", "near 4 (Gustafson regime)",
         f"{scaled[4]:.2f}x"],
    ])
    assert ratios[4] < 1.5
    assert scaled[4] > 2.4


def test_strong_vs_weak_shapes(benchmark):
    strong = strong_scaling(
        lambda p: median([sim_time(p, 8, 12, 21_000 + p + s)
                          for s in range(3)]),
        [1, 2, 4],
    )
    benchmark.pedantic(lambda: sim_time(4, 8, 12, 2), rounds=3, iterations=1)
    eff = strong.efficiencies()
    print_comparison("Strong scaling efficiency decay (fixed flag)", [
        [f"P={p}", "decreasing efficiency", f"{e:.0%}"]
        for p, e in sorted(eff.items())
    ])
    assert eff[4] < eff[2] <= 1.3  # warmup noise can push P=2 near 1


def test_work_stealing_fixes_stragglers(benchmark):
    prog = compile_flag(mauritius())

    def build_team(seed):
        team = make_team("t", 4, np.random.default_rng(seed),
                         colors=list(MAURITIUS_STRIPES), copies=4)
        team.students[-1].profile.base_cell_time *= 3.0  # a straggler
        return team

    static = median([
        run_partition(scenario_partition(prog, 4), build_team(22_000 + s),
                      np.random.default_rng(22_000 + s)).true_makespan
        for s in range(4)
    ])
    steal_runs = [
        run_work_stealing(scenario_partition(prog, 4), build_team(22_000 + s),
                          np.random.default_rng(22_000 + s))
        for s in range(4)
    ]
    stealing = median([r.true_makespan for r in steal_runs])
    steals = median([count_steals(r.trace) for r in steal_runs])
    benchmark.pedantic(
        lambda: run_work_stealing(scenario_partition(prog, 4),
                                  build_team(1), np.random.default_rng(1)),
        rounds=3, iterations=1,
    )

    print_comparison("Work stealing with a 3x-slow straggler", [
        ["static slices", "straggler-bound", f"{static:.0f}s"],
        ["with stealing", "faster", f"{stealing:.0f}s"],
        ["steals per run", "> 0", f"{steals:.0f}"],
        ["improvement", "> 10%", f"{(1 - stealing / static):.0%}"],
    ])
    assert stealing < static
    assert steals > 0
    assert all(r.correct for r in steal_runs)
