"""Section V-A prose findings, regenerated from raw synthetic responses.

The narrative around Tables I-III makes comparative claims; this bench
recomputes them from the calibrated populations instead of quoting them:
Webster/USI high engagement, Knox uniformly ~4.0, Montclair low on
stimulated interest, HPU+TNTech at 3.0 on loops, instructor ratings at
the ceiling everywhere but Knox.
"""

from repro.survey import (
    Aspect,
    consistently_low,
    item_outliers,
    rank_institutions,
    struggling_concepts,
    synthesize_all,
)

from conftest import print_comparison


def test_secVA_prose_claims(benchmark):
    sets_ = benchmark.pedantic(lambda: synthesize_all(seed=31),
                               rounds=1, iterations=1)

    engagement = rank_institutions(sets_, Aspect.ENGAGEMENT)
    low_sites = consistently_low(sets_)
    interest = item_outliers(sets_, "stimulated_interest")
    struggles = struggling_concepts(sets_)
    instructor = rank_institutions(sets_, Aspect.INSTRUCTOR)

    print_comparison("Sec V-A: prose findings", [
        ["highest engagement", "USI and Webster (mostly 5.0)",
         ", ".join(f"{n}={v:.2f}" for n, v in engagement[:3])],
        ["consistently ~4.0 site", "Knox", ", ".join(low_sites)],
        ["stimulated-interest outlier", "Montclair lower (3.5)",
         str(interest.get("Montclair"))],
        ["loops struggle", "HPU and TNTech (3.0)",
         ", ".join(struggles.get("increased_loops_understanding", []))],
        ["instructor ratings", "mostly 5.0 except Knox 4.0",
         ", ".join(f"{n}={v:.1f}" for n, v in instructor)],
    ])

    top3 = [n for n, _ in engagement[:3]]
    assert "Webster" in top3 and "USI" in top3
    assert engagement[-1][0] == "Knox"
    assert low_sites == ["Knox"]
    assert interest.get("Montclair") == "low"
    assert struggles["increased_loops_understanding"] == ["HPU", "TNTech"]
    assert instructor[-1] == ("Knox", 4.0)
    assert all(v == 5.0 for n, v in instructor if n != "Knox")


def test_reliability_stats_computable(benchmark):
    """The future-work statistical analysis runs end to end on the
    synthetic populations: alpha and item-total per aspect, spread across
    sites."""
    from repro.survey import (
        cronbach_alpha,
        inter_institution_spread,
        item_total_correlations,
    )

    sets_ = synthesize_all(seed=32)

    def analyze():
        alphas = {}
        for inst, rs in sets_.items():
            alphas[inst] = cronbach_alpha(rs, Aspect.UNDERSTANDING)
        return alphas, inter_institution_spread(sets_)

    alphas, spread = benchmark.pedantic(analyze, rounds=1, iterations=1)
    print_comparison("Future work: reliability statistics", [
        ["Cronbach alpha (understanding)", "computable per site",
         ", ".join(f"{k}={v:.2f}" for k, v in sorted(alphas.items()))],
        ["widest cross-site item", "loops (range 2.0)",
         f"range {max(spread.values()):.1f}"],
    ])
    # Alpha <= 1 always; it has no lower bound for uncorrelated items
    # (the calibrated populations answer items independently).
    import math
    assert all(math.isfinite(a) and a <= 1.0 for a in alphas.values())
    assert max(spread.values()) == 2.0
    corrs = item_total_correlations(sets_["USI"], Aspect.UNDERSTANDING)
    assert corrs  # non-empty, computable
