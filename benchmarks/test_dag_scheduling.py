"""Dependency-graph scheduling extension: Figure 9 meets Graham.

Schedules the Jordan and Great Britain DAGs onto P processors with list
scheduling, verifying the bounds bracket the result and that the DAG
structure — not the processor count — caps the speedup.  The bridge from
the unplugged drawing exercise to real scheduling theory.
"""

from repro.depgraph import (
    flag_dag,
    graham_bound,
    jordan_reference_dag,
    list_schedule,
    lower_bound,
    speedup_curve,
)
from repro.depgraph.dot import to_dot
from repro.flags import great_britain, jordan

from conftest import print_comparison


def test_jordan_list_schedule(benchmark):
    g = jordan_reference_dag()
    sched = benchmark(lambda: list_schedule(g, 2))
    sched.validate(g)

    lo = lower_bound(g, 2)
    hi = graham_bound(g, 2)
    curve = speedup_curve(g, [1, 2, 4, 8])

    print_comparison("List scheduling the Figure 9 DAG", [
        ["makespan on P=2", f"within [{lo:.0f}, {hi:.0f}]",
         f"{sched.makespan:.0f} cells"],
        ["speedup P=2", "both stripes in parallel",
         f"{curve[2]:.2f}x"],
        ["speedup P=8", "capped by the DAG, not P",
         f"{curve[8]:.2f}x vs ceiling {g.ideal_speedup_bound():.2f}x"],
    ])

    assert lo - 1e-9 <= sched.makespan <= hi + 1e-9
    assert curve[2] > 1.2
    # Beyond the DAG width, extra processors buy nothing.
    assert curve[8] == curve[4] == curve[2]
    assert curve[8] <= g.ideal_speedup_bound() + 1e-9


def test_gb_chain_schedules_flat(benchmark):
    spec = great_britain()
    g = flag_dag(spec)
    sched = benchmark.pedantic(lambda: list_schedule(g, 4),
                               rounds=3, iterations=1)
    sched.validate(g)
    seq = list_schedule(g, 1).makespan
    print_comparison("GB chain: processors cannot help", [
        ["makespan P=1", "total work", f"{seq:.0f}"],
        ["makespan P=4", "identical (pure chain)",
         f"{sched.makespan:.0f}"],
    ])
    assert sched.makespan == seq
    # Three of four processors never get a task.
    used = {t.processor for t in sched.tasks.values()}
    assert len(used) == 1


def test_dot_export_renders(benchmark):
    g = jordan_reference_dag()
    dot = benchmark(lambda: to_dot(g, show_weights=True,
                                   highlight_critical_path=True))
    assert dot.startswith("digraph")
    assert "color=red" in dot  # the critical path is marked
