"""Section III-C lesson: system warmup (repeated scenario 1).

A student repeats the sequential coloring several times; the first run is
the slowest and times settle to a steady state — the analogy the paper
draws to caching, power modes, and JIT.  The bench also fits the library's
exponential-decay model to the observed times, closing the loop between
the agent model and an instructor's measurement.
"""

import numpy as np

from repro.flags import compile_flag, mauritius, single
from repro.metrics import (
    estimate_warmup,
    fit_exponential_decay,
    warmup_contaminates_speedup,
)
from repro.schedule.runner import run_partition

from conftest import median, print_comparison


def repeated_trials(seed, team_factory, n_trials=5):
    prog = compile_flag(mauritius())
    team = team_factory(seed, n=1)
    rng = np.random.default_rng(seed)
    return [run_partition(single(prog), team, rng).true_makespan
            for _ in range(n_trials)]


def test_warmup_effect(benchmark, team_factory):
    all_ratios = []
    trials = None
    for s in range(3):
        times = repeated_trials(5000 + s, team_factory)
        trials = trials or times
        all_ratios.append(estimate_warmup(times).warmup_ratio)
    benchmark.pedantic(lambda: repeated_trials(1, team_factory, 2),
                       rounds=3, iterations=1)

    ratio = median(all_ratios)
    steady, a, tau = fit_exponential_decay(trials)
    print_comparison("III-C: warmup across repeated scenario-1 runs", [
        ["trial times", "decreasing then flat",
         " ".join(f"{t:.0f}" for t in trials)],
        ["first/steady ratio", "significantly > 1", f"{ratio:.2f}x"],
        ["fitted steady time", "below first trial", f"{steady:.0f}s"],
        ["fitted warmup amplitude", "> 0", f"{a:.2f}"],
    ])
    assert ratio > 1.1
    assert trials[0] > steady
    assert trials[0] == max(trials)


def test_warmup_contaminates_speedup(benchmark, team_factory):
    """Using the cold first run as the speedup baseline inflates speedup —
    the methodology lesson hiding in the board numbers."""
    times = repeated_trials(6000, team_factory, n_trials=2)
    prog = compile_flag(mauritius())
    from repro.flags import scenario_partition
    team = team_factory(6001)
    r3 = run_partition(scenario_partition(prog, 3), team,
                       np.random.default_rng(6001))
    benchmark.pedantic(
        lambda: warmup_contaminates_speedup(times[0], times[1],
                                            r3.true_makespan),
        rounds=3, iterations=1,
    )
    optimistic, honest = warmup_contaminates_speedup(
        times[0], times[1], r3.true_makespan
    )
    print_comparison("III-C: baseline choice changes the speedup", [
        ["speedup vs cold run", "inflated", f"{optimistic:.2f}x"],
        ["speedup vs warmed run", "honest", f"{honest:.2f}x"],
    ])
    assert optimistic > honest
