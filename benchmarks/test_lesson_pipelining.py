"""Section III-C lesson: pipelining in scenario 4.

Scenario 4's FIFO implement queues self-organize into a pipeline: workers
idle until the first implement reaches them (fill time), then implements
flow down the line like data through an arithmetic pipeline.  The bench
measures the fill staircase and the per-implement occupancy waves, and
compares against the rotated-start strategy that removes the pipeline
(and the contention) entirely.
"""

import numpy as np

from repro.flags import compile_flag, mauritius, scenario_partition
from repro.schedule.pipeline import (
    pipeline_metrics,
    rotate_color_order,
    stage_occupancy,
)
from repro.schedule.runner import run_partition
from repro.viz import sparkline

from conftest import median, print_comparison


def run_s4(seed, team_factory, rotated=False):
    prog = compile_flag(mauritius())
    part = scenario_partition(prog, 4)
    if rotated:
        part = rotate_color_order(part)
    team = team_factory(seed)
    return run_partition(part, team, np.random.default_rng(seed))


def test_pipeline_fill_staircase(benchmark, team_factory):
    r = run_s4(8000, team_factory)
    benchmark.pedantic(lambda: run_s4(1, team_factory),
                       rounds=3, iterations=1)

    pm = pipeline_metrics(r.trace)
    starts = sorted(pm.first_stroke.values())
    occ_red = stage_occupancy(r.trace, "red_marker", n_bins=16)
    occ_green = stage_occupancy(r.trace, "green_marker", n_bins=16)

    print_comparison("III-C: the scenario-4 pipeline", [
        ["first strokes", "staircase (fill time)",
         " ".join(f"{s:.0f}s" for s in starts)],
        ["fill time", "> 0 (idle until first implement)",
         f"{pm.fill_time:.0f}s"],
        ["red marker occupancy", "busy early, idle late",
         sparkline(occ_red, vmax=1.0)],
        ["green marker occupancy", "idle early, busy late",
         sparkline(occ_green, vmax=1.0)],
    ])

    assert len(starts) == 4
    assert starts[0] == 0.0
    assert all(b > a for a, b in zip(starts, starts[1:]))
    # Stage waves: red concentrated in the first half, green in the
    # second (total occupancy per half, robust to a straggler bin).
    assert sum(occ_red[:8]) > sum(occ_red[8:])
    assert sum(occ_green[8:]) > sum(occ_green[:8])


def test_rotated_start_removes_pipeline(benchmark, team_factory):
    naive = [run_s4(8100 + s, team_factory) for s in range(3)]
    rotated = [run_s4(8100 + s, team_factory, rotated=True)
               for s in range(3)]
    benchmark.pedantic(lambda: run_s4(2, team_factory, rotated=True),
                       rounds=3, iterations=1)

    t_naive = median([r.true_makespan for r in naive])
    t_rot = median([r.true_makespan for r in rotated])
    fill_naive = median([pipeline_metrics(r.trace).fill_time for r in naive])
    fill_rot = median([pipeline_metrics(r.trace).fill_time for r in rotated])

    print_comparison("III-C: rotated color order vs naive top-down", [
        ["naive makespan", "slower (fill + contention)", f"{t_naive:.0f}s"],
        ["rotated makespan", "faster", f"{t_rot:.0f}s"],
        ["naive fill time", "> 0", f"{fill_naive:.0f}s"],
        ["rotated fill time", "~0 (all start at once)", f"{fill_rot:.0f}s"],
    ])
    assert t_rot < t_naive
    assert fill_rot < fill_naive
    assert all(r.correct for r in naive + rotated)
