"""Section III-D: the Webster variation — French vs Canadian flags.

Each flag is colored by one student and by three students dividing the
sheet.  "The speedup varied between the two flags.  The simpler French
flag saw greater efficiency gains, while the intricate maple leaf in the
Canadian flag slowed progress" — the load-balancing lesson.
"""

import numpy as np

from repro.agents import make_team
from repro.flags import canada, compile_flag, france, single, vertical_slices
from repro.metrics import efficiency, imbalance_ratio, speedup
from repro.schedule.runner import run_partition

from conftest import median, print_comparison

TRIALS = 5


def run_flag(spec, n, seed):
    rng = np.random.default_rng(seed)
    team = make_team("t", max(n, 1), rng, colors=list(spec.colors_used()),
                     copies=n)
    prog = compile_flag(spec)
    part = single(prog) if n == 1 else vertical_slices(prog, n)
    return run_partition(part, team, rng)


def flag_stats(spec, seed0):
    t1 = median([run_flag(spec, 1, seed0 + s).true_makespan
                 for s in range(TRIALS)])
    runs3 = [run_flag(spec, 3, seed0 + 100 + s) for s in range(TRIALS)]
    t3 = median([r.true_makespan for r in runs3])
    imb = median([
        imbalance_ratio([w.busy for w in r.trace.summaries()])
        for r in runs3
    ])
    assert all(r.correct for r in runs3)
    return t1, t3, imb


def test_webster_flag_comparison(benchmark):
    # Paired seeds: both flags get identically-drawn teams so the only
    # difference is the flag structure, not the student lottery.
    f1, f3, f_imb = flag_stats(france(), 9000)
    c1, c3, c_imb = flag_stats(canada(), 9000)
    benchmark.pedantic(lambda: run_flag(france(), 3, 1),
                       rounds=3, iterations=1)

    s_france = speedup(f1, f3)
    s_canada = speedup(c1, c3)
    print_comparison("III-D: Webster variation (1 vs 3 students)", [
        ["France speedup", "higher (even split)", f"{s_france:.2f}x"],
        ["Canada speedup", "lower (leaf imbalance)", f"{s_canada:.2f}x"],
        ["France efficiency", ">= Canada's",
         f"{efficiency(f1, f3, 3):.0%}"],
        ["Canada efficiency", "reduced",
         f"{efficiency(c1, c3, 3):.0%}"],
        ["France busy-imbalance", "lower", f"{f_imb:.2f}"],
        ["Canada busy-imbalance", "higher", f"{c_imb:.2f}"],
    ])

    # The published shape: the simpler flag gains more.
    assert s_france > s_canada
    assert s_france > 1.5
    assert c_imb > 1.0


def test_leaf_work_concentration(benchmark):
    """The middle slice owns the leaf: most strokes and the intricate
    (slow) boundary cells."""
    r = run_flag(canada(), 3, 9900)
    benchmark.pedantic(lambda: compile_flag(canada()),
                       rounds=3, iterations=1)
    counts = {a: r.trace.stroke_count(a) for a in r.trace.agents()}
    ordered = sorted(counts.items())
    print_comparison("III-D: stroke counts per slice (Canada, 3 slices)", [
        [agent, "middle slice largest", n] for agent, n in ordered
    ])
    middle = ordered[1][1]
    assert middle > ordered[0][1]
    assert middle > ordered[2][1]
