"""Figure 5: the 18-item student engagement survey instrument.

Checks the instrument against the figure (item count, scale, the starred
optional item, the three analysis groups) and benchmarks synthesizing one
institution's calibrated response population.
"""

import numpy as np

from repro.survey import ITEMS, Aspect, items_by_aspect
from repro.survey.respond import synthesize_institution

from conftest import print_comparison


def test_fig5_instrument_shape(benchmark):
    engagement = benchmark.pedantic(
        lambda: items_by_aspect(Aspect.ENGAGEMENT), rounds=3, iterations=1,
    )
    understanding = items_by_aspect(Aspect.UNDERSTANDING)
    instructor = items_by_aspect(Aspect.INSTRUCTOR)

    print_comparison("Fig 5: engagement survey instrument", [
        ["items", 18, len(ITEMS)],
        ["scale", "1-5 Likert", "1-5 Likert"],
        ["engagement items", "experience questions", len(engagement)],
        ["understanding items", "comprehension questions",
         len(understanding)],
        ["instructor items", 4, len(instructor)],
        ["starred optional item", 1, sum(1 for i in ITEMS if i.optional)],
    ])

    assert len(ITEMS) == 18
    assert len(instructor) == 4
    assert sum(1 for i in ITEMS if i.optional) == 1
    assert len(engagement) + len(understanding) + len(instructor) == 18


def test_fig5_population_synthesis(benchmark):
    rs = benchmark(
        lambda: synthesize_institution("USI", np.random.default_rng(0))
    )
    # Every administered item has a full response column on the 1-5 scale.
    for item_id, answers in rs.responses.items():
        assert answers, item_id
        assert all(1 <= a <= 5 for a in answers)
