"""Engine throughput: the vector backend vs the reference event loop.

Runs one sweep cell's whole trial batch on both engines and records
trials/sec to ``BENCH_engine.json`` at the repo root.  Two cells are
measured: a contention-free cell that takes the vector engine's
structure-of-arrays path (where the 10-100x win lives), and a
contended scenario-4 cell that takes the scalar replay path (a smaller
win — no event logs, traces, or canvas bookkeeping, but still one
event loop per trial).  Identity is asserted alongside speed: the
vector payloads must carry bit-identical metrics, so the speedup is
never bought with drift.

The acceptance shape (>= 10x on the batched SoA cell) holds on a
single core — the vector engine wins by doing less Python, not by
using more CPUs.
"""

import json
import pathlib
import time

from repro.agents.student import FillStyle
from repro.schedule import AcquirePolicy
from repro.sim.vector import run_vector_cell
from repro.sweep.executor import run_trial
from repro.sweep.spec import SweepCell

from conftest import print_comparison

N_TRIALS = 64
BENCH_PATH = (pathlib.Path(__file__).resolve().parent.parent
              / "BENCH_engine.json")

METRICS = ("true_makespan", "measured_time", "correct")


def _cell(scenario: int) -> SweepCell:
    return SweepCell(flag="mauritius", scenario=scenario, team_size=6,
                     policy=AcquirePolicy.HOLD_COLOR_RUN,
                     style=FillStyle.SCRIBBLE, rows=6, cols=8)


def _tasks(cell: SweepCell, backend: str):
    tasks = [
        {"cell": cell.key_dict(), "cell_key": cell.key(), "seed": 11,
         "n_trials": N_TRIALS, "trial": t, "observe": False}
        for t in range(N_TRIALS)
    ]
    if backend != "reference":
        tasks = [dict(t, backend=backend) for t in tasks]
    return tasks


def _measure(cell: SweepCell):
    """(reference_s, vector_s, identical?) for one cell's full batch."""
    ref_tasks = _tasks(cell, "reference")
    t0 = time.perf_counter()
    ref = [run_trial(task) for task in ref_tasks]
    ref_s = time.perf_counter() - t0

    vec_tasks = _tasks(cell, "vector")
    t0 = time.perf_counter()
    vec = run_vector_cell(vec_tasks)
    vec_s = time.perf_counter() - t0

    identical = all(
        v["runs"][label][m] == r["runs"][label][m]
        for r, v in zip(ref, vec)
        for label in r["runs"] for m in METRICS)
    return ref_s, vec_s, identical


def _entry(path: str, ref_s: float, vec_s: float) -> dict:
    return {
        "path": path,
        "n_trials": N_TRIALS,
        "reference_s": round(ref_s, 4),
        "vector_s": round(vec_s, 4),
        "reference_trials_per_s": round(N_TRIALS / ref_s, 1),
        "vector_trials_per_s": round(N_TRIALS / vec_s, 1),
        "speedup": round(ref_s / vec_s, 1),
    }


def test_vector_batch_throughput(benchmark):
    soa_ref_s, soa_vec_s, soa_identical = benchmark.pedantic(
        lambda: _measure(_cell(3)), rounds=1, iterations=1)
    replay_ref_s, replay_vec_s, replay_identical = _measure(_cell(4))

    assert soa_identical and replay_identical

    soa = _entry("soa", soa_ref_s, soa_vec_s)
    replay = _entry("replay", replay_ref_s, replay_vec_s)
    report = {
        "bench": "engine_throughput",
        "cell": "mauritius 6x8, team_size=6, seed=11",
        "batched_soa_scenario3": soa,
        "replay_scenario4": replay,
    }
    BENCH_PATH.write_text(json.dumps(report, indent=2, sort_keys=True)
                          + "\n")

    print_comparison(
        f"engine throughput: {N_TRIALS}-trial batch, mauritius 6x8", [
            ["soa speedup", ">= 10x", f"{soa['speedup']:.1f}x"],
            ["soa trials/s", "-", f"{soa['vector_trials_per_s']:.0f}"],
            ["replay speedup", "> 1x", f"{replay['speedup']:.1f}x"],
            ["replay trials/s", "-",
             f"{replay['vector_trials_per_s']:.0f}"],
        ])
    benchmark.extra_info.update(report)

    # The tentpole acceptance bar: >= 10x on a batched SoA cell.
    assert soa["speedup"] >= 10.0, (
        f"vector engine only {soa['speedup']}x over reference on the "
        f"batched scenario-3 cell")
    # The replay path must never be a regression.
    assert replay["speedup"] > 1.0, (
        f"replay path slower than reference ({replay['speedup']}x)")
