"""Section III-C lessons: speedup trend and the scenario 3 vs 4 gap.

The central classroom numbers: processor sweep P in {1, 2, 4} on stripe
decompositions (times fall, speedup sublinear), then scenario 4 against
scenario 3 — same four processors, shared implements — with the wait-time
accounting that explains the gap.
"""

import numpy as np

from repro.flags import compile_flag, mauritius, scenario_partition
from repro.grid.palette import MAURITIUS_STRIPES
from repro.metrics import analyze_contention, contention_slowdown, efficiency
from repro.schedule.runner import marker_name, run_partition

from conftest import median, print_comparison

RESOURCES = [marker_name(c) for c in MAURITIUS_STRIPES]


def run_scenario(n, seed, team_factory):
    prog = compile_flag(mauritius())
    team = team_factory(seed)
    return run_partition(scenario_partition(prog, n), team,
                         np.random.default_rng(seed))


def test_speedup_trend(benchmark, team_factory):
    times = {}
    for scenario, p in ((1, 1), (2, 2), (3, 4)):
        times[scenario] = median([
            run_scenario(scenario, 3000 + 10 * scenario + s,
                         team_factory).true_makespan
            for s in range(3)
        ])
    benchmark.pedantic(lambda: run_scenario(3, 1, team_factory),
                       rounds=3, iterations=1)

    s2 = times[1] / times[2]
    s4 = times[1] / times[3]
    print_comparison("III-C: speedup with processor count", [
        ["T(1 student)", "baseline", f"{times[1]:.0f}s"],
        ["T(2 students)", "lower", f"{times[2]:.0f}s"],
        ["T(4 students)", "lowest", f"{times[3]:.0f}s"],
        ["speedup 2", "1 < S < 2", f"{s2:.2f}x"],
        ["speedup 4", "2 < S < 4 (sublinear)", f"{s4:.2f}x"],
        ["efficiency 4", "< 100%", f"{efficiency(times[1], times[3], 4):.0%}"],
    ])
    assert times[1] > times[2] > times[3]
    assert 1.0 < s2 < 2.0
    assert 1.5 < s4 < 4.0


def test_contention_scenario_3_vs_4(benchmark, team_factory):
    r3s = [run_scenario(3, 4000 + s, team_factory) for s in range(3)]
    r4s = [run_scenario(4, 4100 + s, team_factory) for s in range(3)]
    benchmark.pedantic(lambda: run_scenario(4, 2, team_factory),
                       rounds=3, iterations=1)

    t3 = median([r.true_makespan for r in r3s])
    t4 = median([r.true_makespan for r in r4s])
    slowdown = contention_slowdown(t4, t3)
    wait3 = median([r.trace.total_wait_fraction() for r in r3s])
    wait4 = median([r.trace.total_wait_fraction() for r in r4s])

    print_comparison("III-C: contention (scenario 4 vs 3, both P=4)", [
        ["T(scenario 3)", "faster", f"{t3:.0f}s"],
        ["T(scenario 4)", "slower (contention)", f"{t4:.0f}s"],
        ["slowdown", "> 1x", f"{slowdown:.2f}x"],
        ["wait fraction s3", "~0", f"{wait3:.1%}"],
        ["wait fraction s4", "substantial", f"{wait4:.1%}"],
    ])
    assert slowdown > 1.05
    assert wait3 == 0.0
    assert wait4 > 0.1

    report = analyze_contention(r4s[0].trace, RESOURCES)
    # "Everyone needed the same color at the beginning": the red marker is
    # the hottest resource early, every agent queued at least once.
    assert report.n_waits >= 3
    assert len(report.per_agent_wait) >= 3
