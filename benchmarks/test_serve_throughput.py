"""Serving throughput: closed-loop load against a live repro.serve.

N client threads each run a closed loop (issue a request, wait for the
reply, repeat) against a :class:`~repro.serve.BackgroundServer` — first a
*cold* phase where every (flag, seed) pair is new, then a *warm* phase
replaying the same pairs so every reply comes from the cache.  The bench
records requests/sec and client-side latency percentiles for both phases
to ``BENCH_serve.json`` at the repo root, and asserts the one shape that
holds on any hardware — including the 1-core container this repo grows
on: warm-cache throughput is strictly above cold, because a cache hit
skips the simulation entirely.  No ``cpu_count`` gate.
"""

import json
import pathlib
import threading
import time

from repro.serve import BackgroundServer, ServeConfig

from conftest import print_comparison

N_CLIENTS = 4
REQUESTS_PER_CLIENT = 6
BENCH_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_serve.json"


def percentile(latencies, q):
    ordered = sorted(latencies)
    index = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[index]


def closed_loop(server, phase_seed_base):
    """Drive N closed-loop clients; return (wall_s, latencies, replies)."""
    latencies = []
    replies = []
    lock = threading.Lock()

    def client(client_id):
        handle = server.client()
        for i in range(REQUESTS_PER_CLIENT):
            seed = phase_seed_base + client_id * REQUESTS_PER_CLIENT + i
            t0 = time.perf_counter()
            reply = handle.run(flag="poland", scenario=3, seed=seed)
            elapsed = time.perf_counter() - t0
            with lock:
                latencies.append(elapsed)
                replies.append(reply)

    threads = [threading.Thread(target=client, args=(c,))
               for c in range(N_CLIENTS)]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return time.perf_counter() - t0, latencies, replies


def phase_stats(wall_s, latencies):
    n = len(latencies)
    return {
        "requests": n,
        "wall_s": round(wall_s, 4),
        "requests_per_s": round(n / wall_s, 2),
        "latency_p50_ms": round(percentile(latencies, 0.50) * 1e3, 2),
        "latency_p90_ms": round(percentile(latencies, 0.90) * 1e3, 2),
        "latency_p99_ms": round(percentile(latencies, 0.99) * 1e3, 2),
    }


def test_warm_cache_throughput_beats_cold(tmp_path, benchmark):
    config = ServeConfig(cache_dir=str(tmp_path / "cache"),
                         batch_window_s=0.002, max_pending=64)
    with BackgroundServer(config) as server:
        cold_wall, cold_lat, cold_replies = closed_loop(server, 1000)
        (warm_wall, warm_lat, warm_replies) = benchmark.pedantic(
            lambda: closed_loop(server, 1000), rounds=1, iterations=1)
        metrics = server.client().metrics()

    assert all(not r["cached"] for r in cold_replies)
    assert all(r["cached"] for r in warm_replies)

    cold = phase_stats(cold_wall, cold_lat)
    warm = phase_stats(warm_wall, warm_lat)
    report = {
        "bench": "serve_throughput",
        "clients": N_CLIENTS,
        "requests_per_client": REQUESTS_PER_CLIENT,
        "cold": cold,
        "warm": warm,
        "warm_over_cold_throughput": round(
            warm["requests_per_s"] / cold["requests_per_s"], 2),
    }
    BENCH_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    print_comparison(
        f"serve throughput: {N_CLIENTS} closed-loop clients x "
        f"{REQUESTS_PER_CLIENT} requests", [
            ["cold req/s", "-", f"{cold['requests_per_s']:.1f}"],
            ["warm req/s", "more than cold", f"{warm['requests_per_s']:.1f}"],
            ["cold p50", "-", f"{cold['latency_p50_ms']:.1f}ms"],
            ["warm p50", "less than cold", f"{warm['latency_p50_ms']:.1f}ms"],
        ])
    benchmark.extra_info.update(report)

    assert "serve_cache_hits_total" in metrics
    assert warm["requests_per_s"] > cold["requests_per_s"], (
        f"warm ({warm['requests_per_s']} req/s) not above cold "
        f"({cold['requests_per_s']} req/s)")
