"""Ablations over the design choices DESIGN.md calls out.

1. Contention model: duplicate implements sweep (1-4 copies per color).
2. Decomposition strategy: stripes vs slices vs blocks vs cyclic at P=4.
3. Fill style (Section IV advice): full vs scribble vs minimal.
4. Acquisition policy: hold-color-run vs release-per-stroke.
5. Dynamic chunk size: self-scheduling grain sweep.
6. Repeating scenario 1: effect on the measured speedup baseline.
"""

import numpy as np

from repro.agents.student import FillStyle
from repro.flags import (
    blocks,
    compile_flag,
    cyclic,
    mauritius,
    scenario_partition,
    vertical_slices,
)
from repro.schedule.runner import AcquirePolicy, run_partition
from repro.schedule.strategies import run_dynamic

from conftest import median, print_comparison


def run_part(part, team, seed, **kw):
    return run_partition(part, team, np.random.default_rng(seed), **kw)


def test_ablation_extra_implements(benchmark, team_factory):
    """More copies of each implement -> monotonically less waiting."""
    prog = compile_flag(mauritius())
    waits = {}
    for copies in (1, 2, 4):
        runs = [
            run_part(scenario_partition(prog, 4),
                     team_factory(13_000 + 10 * copies + s, copies=copies),
                     13_000 + 10 * copies + s)
            for s in range(3)
        ]
        waits[copies] = median([r.trace.total_wait_fraction() for r in runs])
    benchmark.pedantic(
        lambda: run_part(scenario_partition(prog, 4),
                         team_factory(1, copies=2), 1),
        rounds=3, iterations=1,
    )
    print_comparison("Ablation: duplicate implements (scenario 4)", [
        [f"{c} of each color", "less waiting as copies grow",
         f"{waits[c]:.1%} wait"] for c in sorted(waits)
    ])
    assert waits[1] > waits[2] >= waits[4]
    assert waits[4] < 0.05


def test_ablation_decomposition_strategies(benchmark, team_factory):
    """Stripes (owner-computes per color) win at P=4 with single markers;
    cyclic thrashes implements."""
    prog = compile_flag(mauritius())
    times = {}
    for name, make in (
        ("by_stripe", lambda: scenario_partition(prog, 3)),
        ("vertical_slices", lambda: scenario_partition(prog, 4)),
        ("blocks_2x2", lambda: blocks(prog, 2, 2)),
        ("cyclic", lambda: cyclic(prog, 4)),
    ):
        runs = [run_part(make(), team_factory(14_000 + s), 14_000 + s)
                for s in range(3)]
        assert all(r.correct for r in runs), name
        times[name] = median([r.true_makespan for r in runs])
    benchmark.pedantic(
        lambda: run_part(scenario_partition(prog, 3), team_factory(1), 1),
        rounds=3, iterations=1,
    )
    rows = [[name, "stripes fastest, cyclic slowest", f"{t:.0f}s"]
            for name, t in sorted(times.items(), key=lambda kv: kv[1])]
    print_comparison("Ablation: decomposition at P=4, one marker/color",
                     rows)
    assert times["by_stripe"] == min(times.values())
    assert times["cyclic"] == max(times.values())


def test_ablation_fill_style(benchmark, team_factory):
    """Section IV: full coverage is slow, minimal is fast but sparse;
    scribble is the middle road."""
    from repro.flags import single
    prog = compile_flag(mauritius())
    stats = {}
    for style in FillStyle:
        runs = [
            run_part(single(prog), team_factory(15_000 + s, n=1),
                     15_000 + s, style=style)
            for s in range(3)
        ]
        stats[style.name] = (
            median([r.true_makespan for r in runs]),
            median([r.canvas.mean_coverage() for r in runs]),
        )
    benchmark.pedantic(
        lambda: run_part(single(prog), team_factory(1, n=1), 1,
                         style=FillStyle.MINIMAL),
        rounds=3, iterations=1,
    )
    print_comparison("Ablation: fill style (Section IV advice)", [
        [name, "time vs coverage trade",
         f"{t:.0f}s at {cov:.0%} coverage"]
        for name, (t, cov) in stats.items()
    ])
    assert stats["FULL"][0] > stats["SCRIBBLE"][0] > stats["MINIMAL"][0]
    assert stats["FULL"][1] > stats["SCRIBBLE"][1] > stats["MINIMAL"][1]


def test_ablation_acquisition_policy(benchmark, team_factory):
    """Releasing after every stroke thrashes handoffs in scenario 4."""
    prog = compile_flag(mauritius())
    times = {}
    for policy in AcquirePolicy:
        runs = [
            run_part(scenario_partition(prog, 4),
                     team_factory(16_000 + s), 16_000 + s, policy=policy)
            for s in range(3)
        ]
        times[policy.value] = median([r.true_makespan for r in runs])
    benchmark.pedantic(
        lambda: run_part(scenario_partition(prog, 4), team_factory(1), 1,
                         policy=AcquirePolicy.RELEASE_PER_STROKE),
        rounds=3, iterations=1,
    )
    print_comparison("Ablation: implement acquisition policy (scenario 4)", [
        [p, "hold-color-run wins", f"{t:.0f}s"]
        for p, t in times.items()
    ])
    assert times["hold_color_run"] < times["release_per_stroke"]


def test_ablation_dynamic_chunk(benchmark, team_factory):
    """Self-scheduling grain: tiny chunks balance but churn implements;
    huge chunks degenerate toward a static split."""
    prog = compile_flag(mauritius())
    times = {}
    for chunk in (1, 8, 48):
        runs = []
        for s in range(3):
            team = team_factory(17_000 + 10 * chunk + s)
            runs.append(run_dynamic(prog, team, 4,
                                    np.random.default_rng(17_000 + 10 * chunk + s),
                                    chunk=chunk))
        assert all(r.correct for r in runs)
        times[chunk] = median([r.true_makespan for r in runs])
    benchmark.pedantic(
        lambda: run_dynamic(prog, team_factory(1), 4,
                            np.random.default_rng(1), chunk=8),
        rounds=3, iterations=1,
    )
    print_comparison("Ablation: dynamic chunk size (P=4)", [
        [f"chunk={c}", "moderate chunks best", f"{times[c]:.0f}s"]
        for c in sorted(times)
    ])
    # All chunk sizes complete correctly; the sweep documents the trend.
    assert set(times) == {1, 8, 48}


def test_ablation_repeat_scenario1(benchmark, team_factory):
    """Repeating scenario 1 changes the speedup baseline students compute
    (Section III-C's reason to repeat it)."""
    from repro.flags import mauritius as mk
    from repro.schedule import run_core_activity

    ratios = []
    for s in range(3):
        rng = np.random.default_rng(18_000 + s)
        team = team_factory(18_000 + s)
        results = run_core_activity(mk(), team, rng, repeat_first=True)
        cold = results["scenario1"].true_makespan
        warm = results["scenario1_repeat"].true_makespan
        t3 = results["scenario3"].true_makespan
        ratios.append((cold / t3) / (warm / t3))
    benchmark.pedantic(
        lambda: run_core_activity(
            mk(), team_factory(1), np.random.default_rng(1),
            repeat_first=False),
        rounds=1, iterations=1,
    )
    inflation = median(ratios)
    print_comparison("Ablation: repeated scenario 1", [
        ["speedup inflation from cold baseline", "> 1x",
         f"{inflation:.2f}x"],
    ])
    assert inflation > 1.05


def test_ablation_merged_team_organization(benchmark):
    """Teams of 2-3 that merge (pooling implements) vs standard teams of
    4 with one kit: the paper's alternative organization doubles the
    implement supply for scenarios 3-4 and softens contention."""
    import numpy as np
    from repro.classroom import (
        get_institution,
        run_merging_session,
        run_session,
    )

    standard = run_session(get_institution("USI"), seed=19_000, n_teams=3)
    merging = run_merging_session(get_institution("USI"), seed=19_000,
                                  n_pairs=3)
    benchmark.pedantic(
        lambda: run_merging_session(get_institution("USI"), seed=1,
                                    n_pairs=1),
        rounds=1, iterations=1,
    )

    def wait4(report):
        return float(np.median([
            t.results["scenario4"].trace.total_wait_fraction()
            for t in report.teams
        ]))

    w_std, w_mrg = wait4(standard), wait4(merging)
    print_comparison("Ablation: merging 2+2 teams (pooled kits)", [
        ["scenario-4 wait, teams of 4", "higher", f"{w_std:.0%}"],
        ["scenario-4 wait, merged 2+2", "lower (two kits)", f"{w_mrg:.0%}"],
    ])
    assert w_mrg < w_std
    assert standard.all_correct() and merging.all_correct()


def test_ablation_fill_style_frontier(benchmark):
    """Section IV's advice as a Pareto frontier: every style trades time
    for coverage; none is dominated."""
    import numpy as np
    from repro.flags import single
    from repro.metrics.quality import grade_run, speed_quality_frontier

    prog = compile_flag(mauritius())
    reports = {}
    runs = {}
    for style in FillStyle:
        team_ = make_team_for_style(style)
        r = run_part(single(prog), team_, 23_000, style=style)
        runs[style] = r
        reports[style.name] = grade_run(r.canvas, r.trace)
    benchmark.pedantic(
        lambda: grade_run(runs[FillStyle.MINIMAL].canvas,
                          runs[FillStyle.MINIMAL].trace),
        rounds=3, iterations=1,
    )

    frontier = speed_quality_frontier(reports)
    print_comparison("Ablation: fill-style speed/quality frontier", [
        [name, "on the frontier",
         f"{rep.mean_stroke_time:.1f}s/cell at {rep.mean_coverage:.0%}"]
        for name, rep in sorted(reports.items(),
                                key=lambda kv: kv[1].mean_stroke_time)
    ])
    assert frontier == ["MINIMAL", "SCRIBBLE", "FULL"]


def make_team_for_style(style):
    """A fresh single-student team (helper for the frontier ablation)."""
    from repro.agents import make_team
    import numpy as np
    from repro.grid.palette import MAURITIUS_STRIPES
    return make_team("t", 1, np.random.default_rng(int(style.value[0] * 10)),
                     colors=list(MAURITIUS_STRIPES))
