"""Figure 2: the Canadian flag's superimposed grid with the maple leaf.

The paper hands students gridded paper with the leaf outlined.  This bench
regenerates that artifact — the raster with the leaf region resolved onto
the grid — and checks its geometry (centered, inside the pale, irregular
row profile), then benchmarks the vectorized rasterization itself.
"""

import numpy as np

from repro.flags import canada, compile_flag
from repro.grid.palette import Color
from repro.grid.render import to_ascii, to_svg

from conftest import print_comparison


def test_fig2_leaf_grid_geometry(benchmark):
    spec = canada()
    rows, cols = spec.default_rows, spec.default_cols

    benchmark(lambda: spec.layer("maple_leaf").region.mask(rows, cols))

    leaf = spec.layer("maple_leaf").region.mask(rows, cols)
    img = spec.final_image()
    n_leaf = int(leaf.sum())

    print_comparison("Fig 2: Canadian flag grid", [
        ["grid", "leaf outlined on grid", f"{rows}x{cols}"],
        ["leaf cells", "present, centered", n_leaf],
        ["leaf inside white pale", "yes",
         "yes" if not leaf[:, :cols // 4].any()
         and not leaf[:, -(cols // 4):].any() else "NO"],
    ])

    assert n_leaf > 10
    # Leaf confined to the central pale.
    assert not leaf[:, :cols // 4].any()
    assert not leaf[:, -(cols // 4):].any()
    # The final image paints the leaf red on the white field.
    assert (img[leaf] == int(Color.RED)).all()
    # Irregular silhouette: row widths vary (the load-imbalance source).
    widths = leaf.sum(axis=1)
    assert len(set(widths[widths > 0].tolist())) > 2


def test_fig2_printable_artifacts(benchmark):
    """The classroom handout renders: ASCII for the terminal, SVG with
    grid lines and per-cell numbering like the paper's materials."""
    spec = canada()
    img = spec.final_image()
    art = benchmark.pedantic(lambda: to_ascii(img), rounds=3, iterations=1)
    assert len(art.splitlines()) == spec.default_rows

    numbers = np.full(img.shape, -1)
    prog = compile_flag(spec)
    for op in prog.ops_for_layer("maple_leaf"):
        numbers[op.cell] = op.seq
    svg = to_svg(img, numbers=numbers)
    assert svg.count("<text") == len(prog.ops_for_layer("maple_leaf"))
