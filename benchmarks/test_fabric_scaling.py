"""Fabric scaling: cells/s for 1 vs N workers, and the cost of a crash.

The acceptance bench for :mod:`repro.fabric`: the same grid run on a
1-worker fleet, an N-worker fleet, and an N-worker fleet where one
worker is scripted to crash on its first lease.  All three must be
byte-identical to a clean serial :func:`~repro.sweep.run_sweep`; the
crash run must additionally show exactly one death and one retry.

Throughput (cells/s) for each fleet plus the crash-recovery overhead
ratio land in ``BENCH_fabric.json`` at the repo root.  There is no
``cpu_count`` speedup gate: on the 1-core container this repo grows on
a wider fleet is pure overhead, so the only assertions are the ones
that hold on any hardware — identity, exact recovery bookkeeping, and
the sweep finishing despite the crash.
"""

import json
import pathlib
import time

from repro.fabric import (ChaosPlan, FabricConfig, FabricCoordinator,
                          WorkerCrash)
from repro.sweep import SweepSpec, run_sweep

from conftest import print_comparison

N_WORKERS = 2
BENCH_PATH = (pathlib.Path(__file__).resolve().parent.parent
              / "BENCH_fabric.json")


def fabric_spec() -> SweepSpec:
    # Four cells x four trials: enough leases that distribution and
    # recovery are visible, small enough to stay a quick bench.
    return SweepSpec(flags=("poland",), scenarios=(3, 4),
                     team_sizes=(4, 5), n_trials=4, seed=29)


def timed_fabric(config, chaos=()):
    coordinator = FabricCoordinator(fabric_spec(), config, chaos=chaos)
    t0 = time.perf_counter()
    result = coordinator.run()
    return coordinator, result, time.perf_counter() - t0


def assert_identical(a, b):
    assert len(a.cells) == len(b.cells)
    for ca, cb in zip(a.cells, b.cells):
        assert ca.cell == cb.cell
        assert ca.trials == cb.trials


def test_fabric_throughput_and_crash_overhead(benchmark):
    spec = fabric_spec()
    serial = run_sweep(spec)

    _, single, single_wall = timed_fabric(
        FabricConfig(workers=1, hedge_after_s=None))
    _, fleet, fleet_wall = benchmark.pedantic(
        lambda: timed_fabric(FabricConfig(workers=N_WORKERS,
                                          hedge_after_s=None)),
        rounds=1, iterations=1)
    chaos = ChaosPlan.of([WorkerCrash(worker="w0", on_lease=1)])
    crashed_coord, crashed, crashed_wall = timed_fabric(
        FabricConfig(workers=N_WORKERS, retry_base_s=0.01,
                     retry_cap_s=0.05, hedge_after_s=None),
        chaos=chaos)

    # Identity holds on every fleet shape, crash included.
    assert_identical(serial, single)
    assert_identical(serial, fleet)
    assert_identical(serial, crashed)
    # Exact recovery bookkeeping for the scripted crash.
    assert crashed_coord.stats.worker_deaths == 1
    assert crashed_coord.stats.retries == 1

    n_cells = spec.n_cells
    overhead = crashed_wall / fleet_wall if fleet_wall else float("inf")
    report = {
        "bench": "fabric_scaling",
        "cells": n_cells,
        "trials_per_cell": spec.n_trials,
        "workers": N_WORKERS,
        "single_worker": {
            "wall_s": round(single_wall, 4),
            "cells_per_s": round(n_cells / single_wall, 2),
        },
        "fleet": {
            "wall_s": round(fleet_wall, 4),
            "cells_per_s": round(n_cells / fleet_wall, 2),
        },
        "crash_one_worker": {
            "wall_s": round(crashed_wall, 4),
            "cells_per_s": round(n_cells / crashed_wall, 2),
            "worker_deaths": crashed_coord.stats.worker_deaths,
            "retries": crashed_coord.stats.retries,
            "overhead_vs_clean_fleet": round(overhead, 2),
        },
    }
    BENCH_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    print_comparison(
        f"fabric scaling: {n_cells} cells x {spec.n_trials} trials", [
            ["1 worker", "-",
             f"{report['single_worker']['cells_per_s']:.1f} cells/s"],
            [f"{N_WORKERS} workers", "-",
             f"{report['fleet']['cells_per_s']:.1f} cells/s"],
            ["crash 1 worker", "finishes, byte-identical",
             f"{report['crash_one_worker']['cells_per_s']:.1f} cells/s"],
            ["crash overhead", "bounded", f"{overhead:.2f}x"],
        ])
    benchmark.extra_info.update(report)
