"""Figure 3: the flag of Great Britain as a layered paint program.

The Knox discussion builds the Union Jack in layers: blue field, white
diagonals, red diagonals, white cross, red cross.  This bench compiles and
executes the layered program, verifies the painter's-algorithm result, and
measures the cost of the layered technique vs occlusion-eliminated
painting (the "complicated intersection tests" trade-off the paper notes).
"""

import numpy as np

from repro.depgraph import great_britain_reference_dag
from repro.flags import compile_flag, execute, great_britain, verify_program

from conftest import print_comparison


def test_fig3_layered_program(benchmark):
    spec = great_britain()
    prog = benchmark(lambda: compile_flag(spec))
    assert verify_program(prog, spec)

    lean = compile_flag(spec, skip_occluded=True)
    overhead = prog.n_ops / lean.n_ops

    print_comparison("Fig 3: Great Britain layered program", [
        ["layers", "5 (blue, white diag, red diag, white cross, red cross)",
         len(prog.layer_order)],
        ["layered strokes", "more than cells", prog.n_ops],
        ["occlusion-eliminated strokes", "= cells", lean.n_ops],
        ["layering overhead", "> 1x", f"{overhead:.2f}x"],
    ])

    assert len(prog.layer_order) == 5
    assert prog.n_ops > lean.n_ops
    assert lean.n_ops == spec.default_rows * spec.default_cols


def test_fig3_dependency_chain(benchmark):
    """The GB layers form a pure chain: no two layers can run in parallel
    (the example shown to students before the Jordan exercise)."""
    g = benchmark.pedantic(great_britain_reference_dag, rounds=3,
                           iterations=1)
    print_comparison("Fig 3: GB dependency structure", [
        ["structure", "linear chain",
         "linear chain" if g.is_linear_chain() else "NOT a chain"],
        ["speedup ceiling", "low (layers serialize)",
         f"{g.ideal_speedup_bound():.2f}x"],
    ])
    assert g.is_linear_chain()
    assert g.ideal_speedup_bound() < 2.0


def test_fig3_execution_matches_painter_order(benchmark):
    spec = great_britain()
    prog = compile_flag(spec)
    canvas = benchmark.pedantic(lambda: execute(prog), rounds=3, iterations=1)
    assert np.array_equal(canvas.codes, spec.final_image())
