"""Sections III-C/IV lesson: technology differences matter.

Sweeps the drawing-implement hardware on identical workloads: daubers
fastest, thick markers next, thin markers, then crayons — with crayon
breakage faults visible in the trace.  This is the "it is not possible to
compare running times on different hardware" discussion made quantitative.
"""

import numpy as np

from repro.agents import make_team
from repro.agents.implements import (
    CRAYON,
    DAUBER,
    STANDARD_KIT,
    THICK_MARKER,
    THIN_MARKER,
)
from repro.flags import compile_flag, mauritius, single
from repro.grid.palette import MAURITIUS_STRIPES
from repro.schedule.runner import run_partition

from conftest import median, print_comparison


def time_with(implement, seed):
    prog = compile_flag(mauritius())
    rng = np.random.default_rng(seed)
    team = make_team("t", 1, rng, colors=list(MAURITIUS_STRIPES),
                     implement=implement)
    return run_partition(single(prog), team, rng)


def test_implement_ordering(benchmark):
    times = {}
    faults = {}
    for k, impl in enumerate((DAUBER, THICK_MARKER, THIN_MARKER, CRAYON)):
        runs = [time_with(impl, 7000 + 100 * k + s) for s in range(4)]
        times[impl.name] = median([r.true_makespan for r in runs])
        faults[impl.name] = sum(len(r.trace.faults()) for r in runs)
    benchmark.pedantic(lambda: time_with(DAUBER, 1), rounds=3, iterations=1)

    rows = [[name, "faster is better", f"{t:.0f}s"]
            for name, t in sorted(times.items(), key=lambda kv: kv[1])]
    rows.append(["crayon faults over 4 runs", "> 0 (breakage)",
                 faults["crayon"]])
    print_comparison("III-C/IV: implement hardware sweep "
                     "(same flag, same student model)", rows)

    # The paper's observed ordering.
    assert times["dauber"] < times["thick_marker"]
    assert times["thick_marker"] < times["thin_marker"]
    assert times["thin_marker"] < times["crayon"]
    # Only crayons fault.
    assert faults["dauber"] == faults["thick_marker"] == 0
    assert faults["crayon"] >= 0  # stochastic; usually > 0 across runs


def test_hardware_confounds_comparison(benchmark):
    """A 'slower algorithm' on a dauber can beat a 'faster' one on a
    crayon: whole-system comparison or bust."""
    from repro.flags import scenario_partition
    prog = compile_flag(mauritius())

    def four_students_with_crayons(seed):
        rng = np.random.default_rng(seed)
        team = make_team("t", 4, rng, colors=list(MAURITIUS_STRIPES),
                         implement=CRAYON)
        return run_partition(scenario_partition(prog, 3), team, rng)

    def one_student_with_dauber(seed):
        return time_with(DAUBER, seed)

    t_par_crayon = median([four_students_with_crayons(7100 + s)
                           .true_makespan for s in range(3)])
    t_seq_dauber = median([one_student_with_dauber(7200 + s)
                           .true_makespan for s in range(3)])
    benchmark.pedantic(lambda: one_student_with_dauber(1),
                       rounds=3, iterations=1)

    print_comparison("IV: cross-hardware comparisons mislead", [
        ["4 students, crayons", "parallel but slow hardware",
         f"{t_par_crayon:.0f}s"],
        ["1 student, dauber", "sequential but fast hardware",
         f"{t_seq_dauber:.0f}s"],
        ["parallel still wins?", "not guaranteed",
         "yes" if t_par_crayon < t_seq_dauber else "no"],
    ])
    # The gap shrinks dramatically vs the ~3x same-hardware speedup;
    # hardware choice moves results by more than a processor does.
    crayon_over_dauber = (t_par_crayon / t_seq_dauber)
    assert crayon_over_dauber > 0.55  # 4 crayons barely beat 1 dauber
