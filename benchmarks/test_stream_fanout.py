"""Stream fan-out: publish rate of the bus as subscribers multiply.

One publisher pushes a fixed batch of event frames into a
:class:`~repro.stream.RunStream` while 1, then 32, subscribers drain
concurrently — the bench records events/sec for both fan-outs to
``BENCH_stream.json`` at the repo root.  A third phase wedges a
subscriber that never drains and asserts the two shapes that hold on
any hardware, including the 1-core container this repo grows on: the
publisher's per-frame cost stays bounded (drop-oldest, never
backpressure), and every shed frame is counted.  No ``cpu_count``
gate.
"""

import json
import pathlib
import threading
import time

from repro.stream import RunStream

from conftest import print_comparison

FRAMES = 4000
WIDE_FANOUT = 32
BENCH_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_stream.json"


def drain(sub, stop):
    while not stop.is_set():
        if not sub.pop_ready(max_frames=256):
            sub.wait(0.05)
    sub.pop_ready(max_frames=FRAMES + 8)


def publish_fanout(n_subscribers):
    """Publish FRAMES frames against n draining subscribers."""
    stream = RunStream(f"bench-{n_subscribers}", max_queue=FRAMES + 8)
    stop = threading.Event()
    subs = [stream.subscribe() for _ in range(n_subscribers)]
    threads = [threading.Thread(target=drain, args=(s, stop)) for s in subs]
    for t in threads:
        t.start()
    t0 = time.perf_counter()
    for i in range(FRAMES):
        stream.publish("event", run="scenario3", time=float(i),
                       data={"line": f"t={i}"})
    wall = time.perf_counter() - t0
    stop.set()
    for t in threads:
        t.join()
    dropped = stream.dropped
    for s in subs:
        s.close()
    return wall, dropped


def test_fanout_and_overflow(benchmark):
    solo_wall, solo_dropped = publish_fanout(1)
    (wide_wall, wide_dropped) = benchmark.pedantic(
        lambda: publish_fanout(WIDE_FANOUT), rounds=1, iterations=1)

    # Overflow phase: a wedged subscriber with a tiny queue sheds
    # frames instead of slowing the publisher.
    stream = RunStream("bench-wedged", max_queue=16)
    wedged = stream.subscribe()
    t0 = time.perf_counter()
    for i in range(FRAMES):
        stream.publish("event", run="scenario3", time=float(i),
                       data={"line": f"t={i}"})
    wedged_wall = time.perf_counter() - t0
    shed = stream.dropped
    survivors = wedged.pop_ready(max_frames=FRAMES)
    wedged.close()

    report = {
        "bench": "stream_fanout",
        "frames": FRAMES,
        "solo": {"subscribers": 1,
                 "events_per_s": round(FRAMES / solo_wall, 1),
                 "dropped": solo_dropped},
        "wide": {"subscribers": WIDE_FANOUT,
                 "events_per_s": round(FRAMES / wide_wall, 1),
                 "dropped": wide_dropped},
        "wedged": {"queue": 16,
                   "events_per_s": round(FRAMES / wedged_wall, 1),
                   "dropped": shed,
                   "per_frame_us": round(wedged_wall / FRAMES * 1e6, 2)},
    }
    BENCH_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    print_comparison(
        f"stream fan-out: {FRAMES} frames published", [
            ["1 sub ev/s", "-", f"{report['solo']['events_per_s']:.0f}"],
            [f"{WIDE_FANOUT} subs ev/s", "-",
             f"{report['wide']['events_per_s']:.0f}"],
            ["wedged drops", "counted", f"{shed}"],
            ["wedged us/frame", "bounded", f"{report['wedged']['per_frame_us']:.1f}"],
        ])
    benchmark.extra_info.update(report)

    # Shape 1: the wedged subscriber shed exactly the frames beyond its
    # queue, and every shed frame is on the counter.
    assert len(survivors) == 16
    assert shed == FRAMES - 16
    assert [e.seq for e in survivors] == list(range(FRAMES - 15, FRAMES + 1))
    # Shape 2: publishing past a wedged subscriber stays bounded — far
    # under a millisecond per frame even on a loaded 1-core box.
    assert wedged_wall / FRAMES < 1e-3, (
        f"publish stalled at {wedged_wall / FRAMES * 1e6:.0f}us/frame "
        "behind a wedged subscriber")
