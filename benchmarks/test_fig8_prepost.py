"""Figure 8: pre/post-quiz transitions at USI, TNTech and HPU.

Simulates each institution's cohort through the calibrated four-state
learning model, grades the raw answer sheets, and compares the recovered
transition fractions against every percentage the paper prints.  Exact
apportionment means agreement within one student (1/n) per cell.

Also asserts the qualitative findings: scalability/speedup retained best,
contention gained most, pipelining weakest with the most loss.
"""

import numpy as np
import pytest

from repro.data import FIG8_TRANSITIONS, QUIZ_CONCEPTS, QUIZ_N
from repro.survey.transitions import (
    STATES,
    analyze_sheets,
    improvement_summary,
    pre_post_correct_rates,
    simulate_cohort,
)

from conftest import print_comparison


@pytest.fixture(scope="module", params=sorted(FIG8_TRANSITIONS))
def cohort_analysis(request):
    inst = request.param
    rng = np.random.default_rng(808)
    sheets = simulate_cohort(inst, rng, exact=True)
    return inst, sheets, analyze_sheets(sheets)


def test_fig8_transitions_match(cohort_analysis, benchmark):
    inst, sheets, analysis = cohort_analysis
    benchmark.pedantic(lambda: analyze_sheets(sheets), rounds=1,
                       iterations=1)
    expected = FIG8_TRANSITIONS[inst]
    tol = 1.0 / sheets.n + 1e-9

    rows = []
    for concept in QUIZ_CONCEPTS:
        for state in STATES:
            want = expected[concept][state]
            got = analysis[concept][state]
            rows.append([f"{concept}.{state}",
                         f"{want:.1%}", f"{got:.1%}"])
            assert abs(got - want) <= tol, (inst, concept, state)
    print_comparison(f"Fig 8 @ {inst} (n={sheets.n})", rows)


def test_fig8_qualitative_findings(benchmark):
    """The prose conclusions of Section V-B hold in the model."""
    benchmark.pedantic(
        lambda: pre_post_correct_rates(
            {c: dict(FIG8_TRANSITIONS["USI"][c]) for c in QUIZ_CONCEPTS}
        ),
        rounds=1, iterations=1,
    )
    for inst in sorted(FIG8_TRANSITIONS):
        analysis = {c: dict(FIG8_TRANSITIONS[inst][c])
                    for c in QUIZ_CONCEPTS}
        rates = pre_post_correct_rates(analysis)
        gains = improvement_summary(analysis)

        # "Scalability and Speedup demonstrated strong retention."
        assert analysis["scalability"]["retained"] >= 0.8
        assert analysis["speedup"]["retained"] >= 0.65
        # "Contention ... significant growth post-quiz."
        assert gains["contention"] > 0.1
    # "Pipelining ... the lowest initial understanding" — pooled across
    # the three institutions (HPU alone had contention lower, n=6).
    pooled_pre = {}
    for concept in QUIZ_CONCEPTS:
        num = sum(
            QUIZ_N[i] * (FIG8_TRANSITIONS[i][concept]["retained"]
                         + FIG8_TRANSITIONS[i][concept]["lost"])
            for i in FIG8_TRANSITIONS
        )
        pooled_pre[concept] = num / sum(QUIZ_N.values())
    assert pooled_pre["pipelining"] == min(pooled_pre.values())


def test_fig8_simulation_benchmark(benchmark):
    def run():
        rng = np.random.default_rng(3)
        sheets = simulate_cohort("TNTech", rng)
        return analyze_sheets(sheets)

    analysis = benchmark.pedantic(run, rounds=3, iterations=1)
    assert set(analysis) == set(QUIZ_CONCEPTS)
