#!/usr/bin/env python3
"""Execute every ``python`` code block in the given markdown files.

The doctest-style guard behind ``docs/``: a code example that drifts
from the library fails CI instead of misleading a reader.  Blocks in
one file share a namespace and execute in order (so a guide can build
on earlier snippets), and the runner chdirs into a scratch directory so
examples may write files (``trace.json``, ...) without polluting the
repo.

Rules:

- Only fenced blocks opened with exactly ```` ```python ```` run;
  ``bash``/``text``/plain fences are prose.
- A block preceded (immediately, modulo blank lines) by an HTML comment
  ``<!-- doclint: skip-example -->`` is skipped.

Usage::

    python tools/run_doc_examples.py docs/api.md docs/observability.md
"""

from __future__ import annotations

import os
import pathlib
import sys
import tempfile
import traceback
from typing import List, Tuple

SKIP_MARK = "<!-- doclint: skip-example -->"


def extract_blocks(text: str) -> List[Tuple[int, str, bool]]:
    """Pull ``(start line, code, skipped)`` for each python fence."""
    out: List[Tuple[int, str, bool]] = []
    lines = text.split("\n")
    i = 0
    pending_skip = False
    while i < len(lines):
        stripped = lines[i].strip()
        if stripped == SKIP_MARK:
            pending_skip = True
        elif stripped == "```python":
            start = i + 1
            code: List[str] = []
            i += 1
            while i < len(lines) and lines[i].strip() != "```":
                code.append(lines[i])
                i += 1
            out.append((start + 1, "\n".join(code), pending_skip))
            pending_skip = False
        elif stripped:
            pending_skip = False
        i += 1
    return out


def run_file(path: pathlib.Path) -> Tuple[int, int, List[str]]:
    """Execute one markdown file's blocks; returns (ran, skipped, errors)."""
    blocks = extract_blocks(path.read_text())
    namespace: dict = {"__name__": f"docs_example_{path.stem}"}
    ran = skipped = 0
    errors: List[str] = []
    for lineno, code, skip in blocks:
        if skip:
            skipped += 1
            continue
        try:
            exec(compile(code, f"{path}:{lineno}", "exec"), namespace)
            ran += 1
        except Exception:
            errors.append(
                f"{path}:{lineno}: block failed\n{traceback.format_exc()}")
    return ran, skipped, errors


def main(argv: List[str]) -> int:
    """Run every file given on the command line; 0 iff all blocks pass."""
    if not argv:
        print("usage: run_doc_examples.py FILE.md [FILE.md ...]",
              file=sys.stderr)
        return 2
    repo_root = pathlib.Path.cwd()
    files = [pathlib.Path(a).resolve() for a in argv]
    failures: List[str] = []
    with tempfile.TemporaryDirectory(prefix="doc_examples_") as scratch:
        os.chdir(scratch)
        try:
            for path in files:
                ran, skipped, errors = run_file(path)
                rel = os.path.relpath(path, repo_root)
                status = "FAIL" if errors else "ok"
                print(f"{rel}: {ran} block(s) ran, {skipped} skipped "
                      f"[{status}]")
                failures.extend(errors)
        finally:
            os.chdir(repo_root)
    for err in failures:
        print("\n" + err, file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
