#!/usr/bin/env python3
"""A dependency-free docstring linter (pydocstyle's D1xx family).

The container has no ``pydocstyle``/``ruff`` wheel, so this implements
the subset the repo enforces with ``ast`` alone:

- D100  missing docstring in public module
- D101  missing docstring in public class
- D102  missing docstring in public method
- D103  missing docstring in public function

"Public" follows pydocstyle: no leading underscore anywhere on the
dotted path (``__init__``-style dunders are exempt, as are
``@overload`` stubs and trivial ``...`` bodies inside Protocols).
Methods that override a documented base (detected textually is
impossible with ast alone, so no exemption) must carry their own
docstring — the same rule the tier-1 meta-test applies via
``inspect.getdoc`` at import time; this linter is the static twin that
CI can run without importing the package.

Usage::

    python tools/doclint.py src/repro/obs src/repro/sim/engine.py ...

Exit status 0 when clean, 1 with a per-violation report otherwise.
"""

from __future__ import annotations

import ast
import pathlib
import sys
from typing import Iterator, List, Tuple

Violation = Tuple[pathlib.Path, int, str, str]  # file, line, code, name


def _is_public(name: str) -> bool:
    """Public per the repo convention: no leading underscore.

    Dunders (``__init__``, ``__repr__``, ...) are *not* public here —
    the codebase documents constructor arguments in the class docstring
    (Google style), matching the import-time meta-test in
    ``tests/test_api_quality.py`` which also skips underscore names.
    """
    return not name.startswith("_")


def _has_docstring(node: ast.AST) -> bool:
    """Whether a module/class/function node opens with a docstring."""
    return ast.get_docstring(node, clean=False) is not None


def _iter_defs(body: List[ast.stmt], prefix: str, in_class: bool
               ) -> Iterator[Tuple[str, ast.AST, bool]]:
    """Yield (dotted name, node, is_method) for defs in a body."""
    for node in body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield f"{prefix}{node.name}", node, in_class
        elif isinstance(node, ast.ClassDef):
            yield f"{prefix}{node.name}", node, in_class


def check_file(path: pathlib.Path) -> List[Violation]:
    """Lint one Python file; returns its violations."""
    try:
        tree = ast.parse(path.read_text(), filename=str(path))
    except SyntaxError as exc:  # pragma: no cover - broken source
        return [(path, exc.lineno or 0, "E999", f"syntax error: {exc.msg}")]
    out: List[Violation] = []
    module_public = _is_public(path.stem) or path.stem == "__init__"
    if module_public and not _has_docstring(tree):
        out.append((path, 1, "D100", path.stem))

    def walk(body: List[ast.stmt], prefix: str, in_class: bool) -> None:
        for name, node, is_method in _iter_defs(body, prefix, in_class):
            leaf = name.rsplit(".", 1)[-1]
            if not _is_public(leaf):
                continue
            if isinstance(node, ast.ClassDef):
                if not _has_docstring(node):
                    out.append((path, node.lineno, "D101", name))
                walk(node.body, name + ".", True)
                continue
            # Skip ellipsis-only stubs (Protocol members, overloads).
            real = [s for s in node.body
                    if not (isinstance(s, ast.Expr)
                            and isinstance(s.value, ast.Constant)
                            and s.value.value is Ellipsis)]
            if not real:
                continue
            if not _has_docstring(node):
                code = "D102" if is_method else "D103"
                out.append((path, node.lineno, code, name))

    walk(tree.body, "", False)
    return out


def lint(paths: List[str]) -> List[Violation]:
    """Lint files and directories (recursively); returns all violations."""
    out: List[Violation] = []
    for raw in paths:
        p = pathlib.Path(raw)
        files = sorted(p.rglob("*.py")) if p.is_dir() else [p]
        for f in files:
            out.extend(check_file(f))
    return out


def main(argv: List[str]) -> int:
    """CLI entry point: lint the given paths, report, set exit status."""
    if not argv:
        print("usage: doclint.py PATH [PATH ...]", file=sys.stderr)
        return 2
    violations = lint(argv)
    for path, line, code, name in violations:
        print(f"{path}:{line}: {code} missing docstring: {name}")
    if violations:
        print(f"doclint: {len(violations)} violation(s)")
        return 1
    print(f"doclint: clean ({len(argv)} target(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
