#!/usr/bin/env python3
"""A rule-based AST linter for the simulator's house invariants.

``tools/doclint.py`` checks one property (docstrings) with one walk;
this is its generalization: a small engine that runs a set of *rule
classes* over every file, each rule scoped to the subtrees where its
invariant must hold.  The rules encode what the repo's determinism and
service layers promise:

DET — determinism (``repro`` sim/sweep/faults/schedule/agents paths):
  DET001  wall-clock reads (``time.time``/``perf_counter``/
          ``datetime.now`` ...) inside simulation/experiment code —
          results must be a function of the seed, never the host clock.
  DET002  global random state (stdlib ``random.*`` calls, legacy
          ``np.random.<dist>`` calls) — all randomness flows through
          injected ``numpy.random.Generator`` streams.
  DET003  unseeded RNG construction (``default_rng()`` with no seed,
          ``random.Random()``, ``np.random.RandomState()``) anywhere in
          ``src/repro`` except the one module whose job is seeding
          (``sweep/seeding.py``).

ASYNC — event-loop safety (``repro/serve`` and ``repro/stream``):
  ASYNC001  blocking ``time.sleep`` inside an ``async def`` body.
  ASYNC002  synchronous file I/O (``open``, ``Path.read_text`` ...)
            inside an ``async def`` body.
  ASYNC003  ``await <queue>.put(...)`` inside an ``async def`` body —
            an awaited put either blocks the coroutine (bounded queue)
            or hides unbounded growth (infinite queue); the streaming
            layer's contract is bounded per-subscriber buffers with
            explicit drop-oldest accounting instead.

LOCK — lock discipline (the threaded ``repro`` subsystems: stream,
store, fabric, serve — the deep analysis lives in
``repro.races.lockset``; these are the linter-grade twins):
  LOCK001  mixed guarded/unguarded mutation: within one class, some
           assignments to ``self._x`` sit inside ``with self._lock:``
           and some do not — the lock protects nothing.  ``__init__``
           and ``*_locked`` methods (caller holds the lock, by house
           convention) are exempt.
  LOCK002  ``threading.Thread(...)`` constructed without ``daemon=``
           and without a visible ``.join()`` on the assigned name —
           a leak-on-exit thread with no shutdown path.

DET rules also police ``benchmarks/``: benchmark *measurement* needs
the wall clock, so those timers are allowlisted by name; everything
else in a benchmark must stay seed-deterministic like the library.

Findings can be suppressed via an allowlist file (default
``tools/simlint_allow.txt``): one entry per line,
``CODE path::symbol -- justification``, justification mandatory.
Unused entries are reported to stderr (exit status unaffected) so the
allowlist cannot rot silently; with ``--strict-unused`` (the CI lint
job) a stale entry is a hard failure.

Usage::

    python tools/simlint.py src tools benchmarks
    python tools/simlint.py --strict-unused src tools benchmarks
    python tools/simlint.py --allowlist my_allow.txt src/repro/serve

Exit status 0 when clean (after allowlisting), 1 with a per-violation
report otherwise, 2 for usage/allowlist-format errors.
"""

from __future__ import annotations

import ast
import pathlib
import sys
from typing import Dict, Iterator, List, Optional, Set, Tuple

#: file, line, code, symbol, message
Violation = Tuple[pathlib.Path, int, str, str, str]

#: (node, dotted symbol of the innermost enclosing def/class chain or
#: "<module>", whether the innermost enclosing *function* is async)
ScopedNode = Tuple[ast.AST, str, bool]


def iter_scoped(tree: ast.Module) -> Iterator[ScopedNode]:
    """Walk a module yielding every node with its enclosing symbol.

    The symbol is the dotted def/class chain (``Class.method``), or
    ``<module>`` at top level — the same naming the allowlist keys use.
    ``in_async`` is True only when the *innermost* enclosing function
    is ``async def``: a synchronous helper nested inside a coroutine
    runs off the await chain, so ASYNC rules stop at its boundary.
    """

    def walk(node: ast.AST, symbol: str,
             in_async: bool) -> Iterator[ScopedNode]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                inner = (f"{symbol}.{child.name}"
                         if symbol != "<module>" else child.name)
                async_now = (isinstance(child, ast.AsyncFunctionDef)
                             if not isinstance(child, ast.ClassDef)
                             else False)
                yield child, inner, async_now
                yield from walk(child, inner, async_now)
            else:
                yield child, symbol, in_async
                yield from walk(child, symbol, in_async)

    yield from walk(tree, "<module>", False)


def dotted_name(node: ast.expr) -> Optional[str]:
    """Render a Name/Attribute chain as ``a.b.c``; None for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class Rule:
    """One lint invariant: a code, a path scope, and a check.

    Subclasses set ``code``/``description``, optionally narrow
    ``scopes`` (posix path fragments; empty = every file) and
    ``excludes``, and implement :meth:`check`.
    """

    code = "XXX000"
    description = ""
    scopes: Tuple[str, ...] = ()
    excludes: Tuple[str, ...] = ()

    def applies(self, relpath: str) -> bool:
        """Whether this rule is in force for a file."""
        if any(frag in relpath for frag in self.excludes):
            return False
        return not self.scopes or any(frag in relpath
                                      for frag in self.scopes)

    def check(self, path: pathlib.Path, tree: ast.Module,
              scoped: List[ScopedNode]) -> List[Violation]:
        """Return this rule's violations for one parsed file."""
        raise NotImplementedError

    def violation(self, path: pathlib.Path, node: ast.AST, symbol: str,
                  message: str) -> Violation:
        """Build one finding anchored at a node."""
        return (path, getattr(node, "lineno", 0), self.code, symbol,
                message)


_SIM_PATHS = ("src/repro/sim/", "src/repro/sweep/", "src/repro/faults/",
              "src/repro/schedule/", "src/repro/agents/",
              "src/repro/fabric/", "src/repro/stream/",
              "src/repro/races/", "benchmarks/")

#: The hand-locked threaded subsystems the LOCK rules police.
_THREADED_PATHS = ("src/repro/stream/", "src/repro/store/",
                   "src/repro/fabric/", "src/repro/serve/")

#: Legitimate np.random attributes that are *not* global-state draws.
_NP_RANDOM_OK = {"default_rng", "Generator", "SeedSequence",
                 "BitGenerator", "PCG64", "Philox", "RandomState"}

_WALL_CLOCK = {
    "time.time", "time.time_ns", "time.perf_counter",
    "time.perf_counter_ns", "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
    "datetime.now", "datetime.utcnow", "datetime.today", "date.today",
}


class WallClockRule(Rule):
    """DET001: no host-clock reads inside deterministic code."""

    code = "DET001"
    description = "wall-clock read in deterministic simulation code"
    scopes = _SIM_PATHS

    def check(self, path, tree, scoped):
        """Flag calls to time/datetime wall-clock functions."""
        out = []
        for node, symbol, _ in scoped:
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name in _WALL_CLOCK:
                    out.append(self.violation(
                        path, node, symbol,
                        f"{name}() reads the host clock; results must "
                        f"depend only on the seed"))
        return out


class GlobalRandomRule(Rule):
    """DET002: no global random state inside deterministic code."""

    code = "DET002"
    description = "global random state in deterministic simulation code"
    scopes = _SIM_PATHS

    def check(self, path, tree, scoped):
        """Flag stdlib ``random.*`` and legacy ``np.random.<dist>`` calls."""
        out = []
        for node, symbol, _ in scoped:
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            parts = name.split(".")
            if parts[0] == "random" and len(parts) == 2:
                out.append(self.violation(
                    path, node, symbol,
                    f"{name}() draws from the process-global stdlib "
                    f"stream; use an injected numpy Generator"))
            elif (len(parts) == 3 and parts[1] == "random"
                  and parts[0] in ("np", "numpy")
                  and parts[2] not in _NP_RANDOM_OK):
                out.append(self.violation(
                    path, node, symbol,
                    f"{name}() draws from numpy's legacy global stream; "
                    f"use an injected numpy Generator"))
        return out


class UnseededRngRule(Rule):
    """DET003: RNGs are constructed from explicit seeds, in one place."""

    code = "DET003"
    description = "unseeded RNG construction outside sweep/seeding.py"
    scopes = ("src/repro/", "benchmarks/")
    excludes = ("src/repro/sweep/seeding.py",)

    def check(self, path, tree, scoped):
        """Flag ``default_rng()``/``Random()``/``RandomState()`` with no seed."""
        out = []
        for node, symbol, _ in scoped:
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            unseeded = (not node.args and not node.keywords) or (
                len(node.args) == 1 and not node.keywords
                and isinstance(node.args[0], ast.Constant)
                and node.args[0].value is None)
            if not unseeded:
                continue
            if (name.split(".")[-1] == "default_rng"
                    or name in ("random.Random", "np.random.RandomState",
                                "numpy.random.RandomState")):
                out.append(self.violation(
                    path, node, symbol,
                    f"{name}() without a seed is nondeterministic; "
                    f"derive streams via repro.sweep.seeding"))
        return out


class AsyncSleepRule(Rule):
    """ASYNC001: coroutines must not block the event loop sleeping."""

    code = "ASYNC001"
    description = "blocking time.sleep inside async def"
    scopes = ("src/repro/serve/",)

    def check(self, path, tree, scoped):
        """Flag ``time.sleep`` where the innermost function is async."""
        out = []
        for node, symbol, in_async in scoped:
            if (in_async and isinstance(node, ast.Call)
                    and dotted_name(node.func) == "time.sleep"):
                out.append(self.violation(
                    path, node, symbol,
                    "time.sleep() blocks the event loop; use "
                    "asyncio.sleep()"))
        return out


_SYNC_IO_METHODS = {"read_text", "write_text", "read_bytes", "write_bytes"}


class AsyncFileIoRule(Rule):
    """ASYNC002: coroutines must not do synchronous file I/O inline."""

    code = "ASYNC002"
    description = "synchronous file I/O inside async def"
    scopes = ("src/repro/serve/",)

    def check(self, path, tree, scoped):
        """Flag ``open()`` and Path read/write calls in async bodies."""
        out = []
        for node, symbol, in_async in scoped:
            if not in_async or not isinstance(node, ast.Call):
                continue
            if (isinstance(node.func, ast.Name)
                    and node.func.id == "open"):
                out.append(self.violation(
                    path, node, symbol,
                    "open() blocks the event loop; use "
                    "run_in_executor or pre-read outside the coroutine"))
            elif (isinstance(node.func, ast.Attribute)
                    and node.func.attr in _SYNC_IO_METHODS):
                out.append(self.violation(
                    path, node, symbol,
                    f".{node.func.attr}() blocks the event loop; use "
                    f"run_in_executor or pre-read outside the coroutine"))
        return out


class AsyncQueuePutRule(Rule):
    """ASYNC003: no awaited queue puts in the serving/streaming layers.

    ``await q.put(...)`` is how an ``asyncio.Queue`` applies
    backpressure — which is exactly what the streaming contract rules
    out: a slow subscriber must *drop* (counted) rather than stall the
    publisher, and an unbounded queue just defers the failure to
    memory.  Fan-out buffers here are bounded deques with explicit
    drop-oldest accounting (``repro.stream.bus``); anything else is a
    design smell worth a loud flag.
    """

    code = "ASYNC003"
    description = "awaited Queue.put inside async def"
    scopes = ("src/repro/serve/", "src/repro/stream/")

    def check(self, path, tree, scoped):
        """Flag ``await <expr>.put(...)`` where the function is async."""
        out = []
        for node, symbol, in_async in scoped:
            if (in_async and isinstance(node, ast.Await)
                    and isinstance(node.value, ast.Call)
                    and isinstance(node.value.func, ast.Attribute)
                    and node.value.func.attr == "put"):
                out.append(self.violation(
                    path, node, symbol,
                    "await .put() stalls the publisher (bounded) or "
                    "grows without limit (unbounded); use a bounded "
                    "buffer with counted drop-oldest "
                    "(repro.stream.bus)"))
        return out


def _self_attr_chain(node: ast.expr) -> Optional[str]:
    """``self``-rooted attribute chain without the root, or None.

    ``self._stream._lock`` → ``"_stream._lock"``.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name) and node.id == "self" and parts:
        return ".".join(reversed(parts))
    return None


_LOCKISH_FRAGMENTS = ("lock", "mutex", "cond", "cv")


def _is_lockish_chain(chain: str) -> bool:
    """Whether a ``with self...:`` context expression names a lock."""
    last = chain.split(".")[-1].lower()
    return any(frag in last for frag in _LOCKISH_FRAGMENTS)


class MixedGuardRule(Rule):
    """LOCK001: an attribute is either always locked or never locked.

    Within one class, assignments to ``self._x`` that sometimes sit
    inside ``with self._lock:`` and sometimes do not mean the lock
    protects nothing — every unguarded writer can interleave with the
    guarded ones.  ``__init__`` (construction happens-before
    publication) and ``*_locked`` methods (the caller holds the lock,
    per the house naming convention) are exempt.  The full-depth
    version of this analysis — container mutators, read sites, guard
    inference — lives in ``repro.races.lockset``; this rule is the
    dependency-free linter twin covering binding-level writes.
    """

    code = "LOCK001"
    description = "mixed guarded/unguarded mutation of one attribute"
    scopes = _THREADED_PATHS

    def _method_writes(self, method: ast.AST
                       ) -> List[Tuple[str, bool, ast.AST]]:
        """``(attr, under_lock, node)`` for binding writes in a method."""
        out: List[Tuple[str, bool, ast.AST]] = []

        def visit(node: ast.AST, held: bool) -> None:
            if isinstance(node, (ast.With, ast.AsyncWith)):
                lockish = any(
                    (chain := _self_attr_chain(item.context_expr))
                    and _is_lockish_chain(chain)
                    for item in node.items)
                for stmt in node.body:
                    visit(stmt, held or lockish)
                return
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                return  # nested defs run later, with unknown locks
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                chain = _self_attr_chain(target)
                if chain and "." not in chain:
                    out.append((chain, held, node))
            for child in ast.iter_child_nodes(node):
                visit(child, held)

        for stmt in ast.iter_child_nodes(method):
            visit(stmt, False)
        return out

    def check(self, path, tree, scoped):
        """Flag attributes written both under a lock and bare."""
        out = []
        for node, symbol, _ in scoped:
            if not isinstance(node, ast.ClassDef):
                continue
            locked: Dict[str, ast.AST] = {}
            bare: Dict[str, ast.AST] = {}
            for item in node.body:
                if not isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                    continue
                if (item.name == "__init__"
                        or item.name.endswith("_locked")):
                    continue
                for attr, held, site in self._method_writes(item):
                    (locked if held else bare).setdefault(attr, site)
            for attr in sorted(set(locked) & set(bare)):
                out.append(self.violation(
                    path, bare[attr], f"{symbol}.{attr}",
                    f"self.{attr} is written under a lock (line "
                    f"{getattr(locked[attr], 'lineno', 0)}) and bare "
                    f"(line {getattr(bare[attr], 'lineno', 0)}); the "
                    f"lock protects nothing"))
        return out


class ThreadLifecycleRule(Rule):
    """LOCK002: every thread needs a shutdown story.

    A ``threading.Thread`` that is neither ``daemon=`` nor joined
    anywhere in its module outlives shutdown silently: interpreter
    exit blocks on it, or it keeps mutating state during teardown.
    Either mark the intent (``daemon=True`` plus whatever drain the
    design needs) or keep a handle and ``.join()`` it.
    """

    code = "LOCK002"
    description = "Thread without daemon= or a visible join path"
    scopes = _THREADED_PATHS

    @staticmethod
    def _is_thread_call(node: ast.AST) -> bool:
        return (isinstance(node, ast.Call)
                and dotted_name(node.func) in ("threading.Thread",
                                               "Thread"))

    def check(self, path, tree, scoped):
        """Flag un-daemoned Thread constructions with no join path."""
        joined: Set[str] = set()
        for node in ast.walk(tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "join"):
                base = dotted_name(node.func.value)
                if base:
                    joined.add(base.split(".")[-1])
        assigned: Dict[int, List[str]] = {}
        for node in ast.walk(tree):
            if (isinstance(node, ast.Assign)
                    and self._is_thread_call(node.value)):
                names = []
                for target in node.targets:
                    name = dotted_name(target)
                    if name:
                        names.append(name.split(".")[-1])
                assigned[id(node.value)] = names
        out = []
        for node, symbol, _ in scoped:
            if not self._is_thread_call(node):
                continue
            if any(kw.arg == "daemon" for kw in node.keywords):
                continue
            if any(name in joined
                   for name in assigned.get(id(node), [])):
                continue
            out.append(self.violation(
                path, node, symbol,
                "Thread() without daemon= or a .join() on its handle "
                "has no shutdown path; mark it daemon (plus a drain) "
                "or join it"))
        return out


class MutableDefaultRule(Rule):
    """HYG001: default argument values must be immutable."""

    code = "HYG001"
    description = "mutable default argument"

    def check(self, path, tree, scoped):
        """Flag list/dict/set literals (or constructors) as defaults."""
        out = []
        for node, symbol, _ in scoped:
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None]
            for default in defaults:
                mutable = isinstance(default,
                                     (ast.List, ast.Dict, ast.Set)) or (
                    isinstance(default, ast.Call)
                    and isinstance(default.func, ast.Name)
                    and default.func.id in ("list", "dict", "set"))
                if mutable:
                    out.append(self.violation(
                        path, default, symbol or node.name,
                        f"mutable default on {node.name}(); use None "
                        f"and create inside the body"))
        return out


class BareExceptRule(Rule):
    """HYG002: exception handlers must name what they catch."""

    code = "HYG002"
    description = "bare except clause"

    def check(self, path, tree, scoped):
        """Flag ``except:`` with no exception type."""
        out = []
        for node, symbol, _ in scoped:
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                out.append(self.violation(
                    path, node, symbol,
                    "bare except swallows KeyboardInterrupt/SystemExit; "
                    "catch Exception or something narrower"))
        return out


RULES: List[Rule] = [
    WallClockRule(),
    GlobalRandomRule(),
    UnseededRngRule(),
    AsyncSleepRule(),
    AsyncFileIoRule(),
    AsyncQueuePutRule(),
    MixedGuardRule(),
    ThreadLifecycleRule(),
    MutableDefaultRule(),
    BareExceptRule(),
]


def _relpath(path: pathlib.Path) -> str:
    """Posix path used in reports and allowlist keys (cwd-relative)."""
    try:
        return path.resolve().relative_to(
            pathlib.Path.cwd().resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def check_file(path: pathlib.Path,
               rules: List[Rule]) -> List[Violation]:
    """Run every applicable rule over one file."""
    relpath = _relpath(path)
    active = [r for r in rules if r.applies(relpath)]
    if not active:
        return []
    try:
        tree = ast.parse(path.read_text(), filename=str(path))
    except SyntaxError as exc:  # pragma: no cover - broken source
        return [(path, exc.lineno or 0, "E999", "<module>",
                 f"syntax error: {exc.msg}")]
    scoped = list(iter_scoped(tree))
    out: List[Violation] = []
    for rule in active:
        out.extend(rule.check(path, tree, scoped))
    out.sort(key=lambda v: (v[1], v[2]))
    return out


def lint(paths: List[str],
         rules: Optional[List[Rule]] = None) -> List[Violation]:
    """Lint files and directories (recursively); returns all violations."""
    rules = RULES if rules is None else rules
    out: List[Violation] = []
    for raw in paths:
        p = pathlib.Path(raw)
        files = sorted(p.rglob("*.py")) if p.is_dir() else [p]
        for f in files:
            out.extend(check_file(f, rules))
    return out


class AllowlistError(Exception):
    """Raised for malformed allowlist entries (missing justification)."""


def load_allowlist(path: pathlib.Path) -> Dict[str, str]:
    """Parse an allowlist file into {``CODE path::symbol``: justification}.

    Format, one entry per line (``#`` comments and blanks ignored)::

        DET001 src/repro/sweep/executor.py::run_sweep -- why it is fine

    Raises:
        AllowlistError: for entries without a ``--`` justification.
    """
    entries: Dict[str, str] = {}
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        if " -- " not in line:
            raise AllowlistError(
                f"{path}:{lineno}: allowlist entry needs a "
                f"' -- justification': {line!r}")
        key, justification = line.split(" -- ", 1)
        key = " ".join(key.split())
        if not justification.strip():
            raise AllowlistError(
                f"{path}:{lineno}: empty justification: {line!r}")
        entries[key] = justification.strip()
    return entries


def apply_allowlist(
    violations: List[Violation],
    allow: Dict[str, str],
) -> Tuple[List[Violation], List[str]]:
    """Drop allowlisted violations; report unused allowlist keys.

    Returns:
        ``(kept, unused_keys)`` — kept violations in input order, plus
        every allowlist key that suppressed nothing (stale entries).
    """
    used: Set[str] = set()
    kept: List[Violation] = []
    for v in violations:
        path, _, code, symbol, _ = v
        key = f"{code} {_relpath(path)}::{symbol}"
        if key in allow:
            used.add(key)
        else:
            kept.append(v)
    unused = sorted(set(allow) - used)
    return kept, unused


def main(argv: List[str]) -> int:
    """CLI entry point: lint the given paths, report, set exit status."""
    allow_path = pathlib.Path(__file__).parent / "simlint_allow.txt"
    strict_unused = False
    args: List[str] = []
    it = iter(argv)
    for arg in it:
        if arg == "--allowlist":
            raw = next(it, None)
            if raw is None:
                print("simlint: --allowlist needs a path", file=sys.stderr)
                return 2
            allow_path = pathlib.Path(raw)
        elif arg == "--strict-unused":
            strict_unused = True
        else:
            args.append(arg)
    if not args:
        print("usage: simlint.py [--allowlist FILE] [--strict-unused] "
              "PATH [PATH ...]", file=sys.stderr)
        return 2

    allow: Dict[str, str] = {}
    if allow_path.exists():
        try:
            allow = load_allowlist(allow_path)
        except AllowlistError as exc:
            print(f"simlint: {exc}", file=sys.stderr)
            return 2

    violations, unused = apply_allowlist(lint(args), allow)
    for path, line, code, symbol, message in violations:
        print(f"{_relpath(path)}:{line}: {code} [{symbol}] {message}")
    severity = "error" if strict_unused else "warning"
    for key in unused:
        print(f"simlint: {severity}: unused allowlist entry: {key}",
              file=sys.stderr)
    if violations:
        print(f"simlint: {len(violations)} violation(s)")
        return 1
    if strict_unused and unused:
        print(f"simlint: {len(unused)} stale allowlist entr"
              f"{'y' if len(unused) == 1 else 'ies'} "
              f"(--strict-unused)")
        return 1
    print(f"simlint: clean ({len(args)} target(s), "
          f"{len(allow)} allowlisted)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
